//! Index structures — the systems under test of the benchmark.
//!
//! §II of the paper surveys the learned components the benchmark must be
//! able to evaluate; learned indexes are its flagship example ("models …
//! arranged in a tree, with the prediction of a model being used to pick a
//! more specialized model recursively"). This crate implements, from
//! scratch, both the **traditional baselines** and the **learned indexes**
//! a credible evaluation needs:
//!
//! Traditional:
//! * [`btree::BPlusTree`] — a B+-tree with linked leaves (the classic
//!   baseline the paper's references compare against).
//! * [`hash::HashIndex`] — a chained hash index (point lookups only).
//! * [`sorted_array::SortedArray`] — binary search over a dense sorted
//!   array, the no-model lower bound on space.
//!
//! Learned:
//! * [`rmi::Rmi`] — a two-level Recursive Model Index (Kraska et al. \[8]).
//! * [`pgm::PgmIndex`] — an ε-bounded piecewise-geometric-model index.
//! * [`spline::RadixSpline`] — a radix-table-accelerated spline index.
//! * [`alex::AlexIndex`] — an updatable, adaptive gapped-array learned
//!   index in the spirit of ALEX \[33].
//! * [`delta::DeltaIndex`] — an updatable wrapper that pairs any read-only
//!   learned index with a delta buffer and explicit retraining, the
//!   mechanism the benchmark's adaptability metrics exercise.
//! * [`learned_sort::learned_sort`] — the CDF-model sort of \[31], included
//!   as the §II "query execution" example.
//!
//! Every structure reports its memory footprint and the *work units* spent
//! building/training, which the cost metrics (Fig. 1d) convert to dollars.

#![warn(missing_docs)]

pub mod alex;
pub mod btree;
pub mod cache;
pub mod delta;
pub mod hash;
pub mod learned_sort;
pub mod model;
pub mod pgm;
pub mod rmi;
pub mod search;
pub mod sorted_array;
pub mod spline;

pub use alex::AlexIndex;
pub use btree::BPlusTree;
pub use cache::{KeyCache, LearnedCache, LruCache};
pub use delta::DeltaIndex;
pub use hash::HashIndex;
pub use pgm::PgmIndex;
pub use rmi::Rmi;
pub use sorted_array::SortedArray;
pub use spline::RadixSpline;

/// Errors produced by index operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// The index does not support this operation (e.g. range scans on a
    /// hash index, inserts on a read-only learned index).
    Unsupported(&'static str),
    /// Bulk-load input was not sorted by key or contained duplicates.
    UnsortedInput,
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::Unsupported(op) => write!(f, "operation not supported: {op}"),
            IndexError::UnsortedInput => {
                write!(
                    f,
                    "bulk-load input must be sorted by key without duplicates"
                )
            }
        }
    }
}

impl std::error::Error for IndexError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, IndexError>;

/// Statistics every index reports for cost accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IndexStats {
    /// Approximate in-memory footprint in bytes.
    pub size_bytes: usize,
    /// Abstract work units spent building/training (key-model updates,
    /// node writes, …). The cost model converts these to time and dollars.
    pub build_work: u64,
    /// Number of learned model instances (0 for traditional structures).
    pub model_count: usize,
}

/// The common interface all indexes expose to the benchmark driver.
///
/// Keys and values are `u64`. Implementations must be deterministic.
pub trait Index: Send {
    /// A short stable name for reports (e.g. `"btree"`, `"rmi"`).
    fn name(&self) -> &'static str;

    /// Point lookup.
    fn get(&self, key: u64) -> Option<u64>;

    /// Range scan: up to `limit` pairs with `key >= start`, ascending.
    ///
    /// Returns [`IndexError::Unsupported`] for structures without order
    /// (hash indexes).
    fn range(&self, start: u64, limit: usize) -> Result<Vec<(u64, u64)>>;

    /// Inserts or overwrites; returns the previous value if the key existed.
    ///
    /// Read-only structures return [`IndexError::Unsupported`].
    fn insert(&mut self, key: u64, value: u64) -> Result<Option<u64>>;

    /// Deletes a key; returns the removed value if it existed.
    fn delete(&mut self, key: u64) -> Result<Option<u64>>;

    /// Number of live keys.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size/build-cost statistics.
    fn stats(&self) -> IndexStats;

    /// Deterministic estimate of the work (memory probes) a [`Index::get`]
    /// for `key` costs in this structure, *for this specific key*.
    ///
    /// Learned indexes return their model-evaluation cost plus the
    /// last-mile search of the key's local error window, so lookups in
    /// well-modeled regions are cheap and poorly-modeled regions expensive —
    /// the per-distribution variation the specialization metric (Fig. 1a)
    /// measures. The default is a plain binary search over the whole index.
    fn probe_cost(&self, _key: u64) -> u64 {
        (self.len() as u64 + 2).ilog2() as u64 + 1
    }

    /// Batched point lookups: appends `self.get(k)` for every `k` in
    /// `keys` to `out`, in order.
    ///
    /// The default is the plain loop, so every implementation gets the
    /// exact per-key semantics of [`Index::get`]. Structures whose probe
    /// chases pointers or lands in an unpredictable window override this
    /// with a group-prefetch implementation: the probes in a batch are
    /// independent, so issuing their cache misses together (memory-level
    /// parallelism) hides latency a one-key-at-a-time loop must eat
    /// serially.
    fn get_many(&self, keys: &[u64], out: &mut Vec<Option<u64>>) {
        out.reserve(keys.len());
        out.extend(keys.iter().map(|&k| self.get(k)));
    }
}

/// Hints the CPU to pull the cache line holding `*p` into L1.
///
/// No-op on non-x86_64 targets. Safe to call with any pointer value —
/// prefetch never faults — but callers should pass pointers derived from
/// live allocations so the hint is useful.
#[inline(always)]
pub fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch is a hint; it cannot fault even on invalid
    // addresses and has no architectural effect besides cache state.
    unsafe {
        std::arch::x86_64::_mm_prefetch(p as *const i8, std::arch::x86_64::_MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Indexes that are bulk-loaded from sorted `(key, value)` pairs.
pub trait BulkLoad: Sized {
    /// Builds the index from pairs sorted ascending by unique key.
    fn bulk_load(pairs: &[(u64, u64)]) -> Result<Self>;
}

/// Cost (probes) of a binary search over a window of `w` items.
pub(crate) fn bsearch_cost(w: u64) -> u64 {
    (w + 2).ilog2() as u64 + 1
}

/// Validates that `pairs` is sorted ascending by key with no duplicates.
pub(crate) fn check_sorted(pairs: &[(u64, u64)]) -> Result<()> {
    for w in pairs.windows(2) {
        if w[0].0 >= w[1].0 {
            return Err(IndexError::UnsortedInput);
        }
    }
    Ok(())
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared conformance tests run against every [`Index`] implementation.

    use super::*;

    /// Sorted test pairs `(k, 31 k)` for k in a deterministic pseudo-random set.
    pub fn test_pairs(n: usize) -> Vec<(u64, u64)> {
        let mut keys: Vec<u64> = (0..n as u64)
            .map(|i| i.wrapping_mul(2654435761) % (n as u64 * 10))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        keys.iter().map(|&k| (k, k.wrapping_mul(31))).collect()
    }

    /// Checks point lookups for every loaded key plus misses.
    pub fn check_point_lookups<I: Index>(idx: &I, pairs: &[(u64, u64)]) {
        for &(k, v) in pairs {
            assert_eq!(idx.get(k), Some(v), "{}: missing key {k}", idx.name());
        }
        // Keys guaranteed absent.
        let max = pairs.last().map(|&(k, _)| k).unwrap_or(0);
        assert_eq!(idx.get(max + 1), None);
        let present: std::collections::HashSet<u64> = pairs.iter().map(|p| p.0).collect();
        for k in 0..100u64 {
            if !present.contains(&k) {
                assert_eq!(idx.get(k), None, "{}: phantom key {k}", idx.name());
            }
        }
    }

    /// Checks range scans against a reference sorted vector.
    pub fn check_ranges<I: Index>(idx: &I, pairs: &[(u64, u64)]) {
        for &(start, limit) in &[(0u64, 10usize), (5, 3), (1_000, 100), (u64::MAX, 5)] {
            let expected: Vec<(u64, u64)> = pairs
                .iter()
                .copied()
                .filter(|&(k, _)| k >= start)
                .take(limit)
                .collect();
            let got = idx.range(start, limit).expect("range supported");
            assert_eq!(got, expected, "{}: range({start}, {limit})", idx.name());
        }
    }
}
