//! Models for learned indexes: linear regression and ε-bounded
//! piecewise-linear approximation (PLA).
//!
//! A learned index is "a model over the data to capture the distribution's
//! characteristics" (§II): concretely, a model of the CDF mapping key →
//! position. This module provides the two model families every learned
//! index in this crate builds on:
//!
//! * [`LinearModel`] — least-squares `pos ≈ slope · key + intercept`, the
//!   leaf model of the RMI and the spline segments.
//! * [`pla_segments`] — an optimal-in-size greedy ε-PLA using the
//!   shrinking-cone algorithm (as in the PGM-index and FITing-tree): each
//!   segment guarantees `|predicted − actual| ≤ ε`.

use serde::{Deserialize, Serialize};

/// A linear model `pos = slope * key + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearModel {
    /// Slope of the regression line.
    pub slope: f64,
    /// Intercept of the regression line.
    pub intercept: f64,
}

impl LinearModel {
    /// Identity-ish default: predicts position 0 for everything.
    pub const ZERO: LinearModel = LinearModel {
        slope: 0.0,
        intercept: 0.0,
    };

    /// Least-squares fit of positions `0..keys.len()` against `keys`.
    ///
    /// `keys` must be sorted ascending (every caller fits CDFs over sorted
    /// data). Returns [`LinearModel::ZERO`] for empty input and a constant
    /// model for a single key or all-equal keys.
    pub fn fit(keys: &[u64]) -> LinearModel {
        debug_assert!(
            keys.windows(2).all(|w| w[0] <= w[1]),
            "fit requires sorted keys"
        );
        let n = keys.len();
        if n == 0 {
            return LinearModel::ZERO;
        }
        if n == 1 {
            return LinearModel {
                slope: 0.0,
                intercept: 0.0,
            };
        }
        // Center on the first key *in integer domain* so closely spaced huge
        // keys (e.g. near u64::MAX) keep their spacing exactly; only the
        // centered offsets are converted to f64.
        let base = keys[0];
        let nf = n as f64;
        let mean_x = keys.iter().map(|&k| (k - base) as f64).sum::<f64>() / nf;
        let mean_y = (nf - 1.0) / 2.0;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        for (i, &k) in keys.iter().enumerate() {
            let dx = (k - base) as f64 - mean_x;
            let dy = i as f64 - mean_y;
            sxx += dx * dx;
            sxy += dx * dy;
        }
        if sxx == 0.0 {
            return LinearModel {
                slope: 0.0,
                intercept: mean_y,
            };
        }
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x - slope * base as f64;
        LinearModel { slope, intercept }
    }

    /// Fits a model through two `(key, pos)` points.
    pub fn through(k0: u64, p0: f64, k1: u64, p1: f64) -> LinearModel {
        if k1 == k0 {
            return LinearModel {
                slope: 0.0,
                intercept: p0,
            };
        }
        let slope = (p1 - p0) / (k1 as f64 - k0 as f64);
        LinearModel {
            slope,
            intercept: p0 - slope * k0 as f64,
        }
    }

    /// Predicted (real-valued) position of `key`.
    #[inline]
    pub fn predict(&self, key: u64) -> f64 {
        self.slope * key as f64 + self.intercept
    }

    /// Predicted position clamped into `[0, n)` as an index.
    #[inline]
    pub fn predict_clamped(&self, key: u64, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        let p = self.predict(key);
        if p <= 0.0 {
            0
        } else {
            (p as usize).min(n - 1)
        }
    }

    /// Maximum absolute prediction error over `keys` (positions `0..n`).
    pub fn max_error(&self, keys: &[u64]) -> f64 {
        keys.iter()
            .enumerate()
            .map(|(i, &k)| (self.predict(k) - i as f64).abs())
            .fold(0.0, f64::max)
    }
}

/// One ε-bounded PLA segment covering keys at positions
/// `[start_pos, start_pos + len)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// First key covered by this segment.
    pub first_key: u64,
    /// Position of `first_key` in the underlying array.
    pub start_pos: usize,
    /// Number of keys covered.
    pub len: usize,
    /// The segment's linear model (in absolute positions).
    pub model: LinearModel,
}

impl Segment {
    /// Predicted absolute position of `key`, clamped to the segment.
    #[inline]
    pub fn predict(&self, key: u64) -> usize {
        let p = self.model.predict(key);
        let lo = self.start_pos as f64;
        let hi = (self.start_pos + self.len - 1) as f64;
        p.clamp(lo, hi) as usize
    }
}

/// Greedy ε-PLA via the shrinking-cone method.
///
/// Produces segments such that for every key at position `i` within a
/// segment, `|model.predict(key) − i| ≤ epsilon`. `keys` must be sorted
/// ascending (duplicates allowed but degrade to per-key segments).
///
/// This is the segmentation used by the PGM-index; the greedy cone method
/// yields the minimal number of segments for a fixed starting point.
pub fn pla_segments(keys: &[u64], epsilon: f64) -> Vec<Segment> {
    assert!(epsilon >= 0.0, "epsilon must be non-negative");
    let n = keys.len();
    let mut segments = Vec::new();
    if n == 0 {
        return segments;
    }
    let mut start = 0usize;
    while start < n {
        let first_key = keys[start];
        // Cone of admissible slopes relative to (first_key, start).
        let mut lo_slope = f64::NEG_INFINITY;
        let mut hi_slope = f64::INFINITY;
        let mut end = start + 1;
        while end < n {
            let dx = keys[end] as f64 - first_key as f64;
            let dy = (end - start) as f64;
            if dx <= 0.0 {
                // Duplicate key cannot extend a monotone segment.
                break;
            }
            let new_lo = (dy - epsilon) / dx;
            let new_hi = (dy + epsilon) / dx;
            let cand_lo = lo_slope.max(new_lo);
            let cand_hi = hi_slope.min(new_hi);
            if cand_lo > cand_hi {
                break;
            }
            lo_slope = cand_lo;
            hi_slope = cand_hi;
            end += 1;
        }
        let len = end - start;
        let model = if len == 1 {
            LinearModel {
                slope: 0.0,
                intercept: start as f64,
            }
        } else {
            // Mid-cone slope keeps both bounds satisfied.
            let slope = if lo_slope.is_finite() && hi_slope.is_finite() {
                (lo_slope + hi_slope) / 2.0
            } else {
                0.0
            };
            LinearModel {
                slope,
                intercept: start as f64 - slope * first_key as f64,
            }
        };
        segments.push(Segment {
            first_key,
            start_pos: start,
            len,
            model,
        });
        start = end;
    }
    segments
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_perfect_line() {
        let keys: Vec<u64> = (0..100).map(|i| i * 10).collect();
        let m = LinearModel::fit(&keys);
        assert!((m.slope - 0.1).abs() < 1e-9);
        assert!(m.max_error(&keys) < 1e-6);
    }

    #[test]
    fn fit_empty_and_single() {
        assert_eq!(LinearModel::fit(&[]), LinearModel::ZERO);
        let m = LinearModel::fit(&[42]);
        assert_eq!(m.predict_clamped(42, 1), 0);
    }

    #[test]
    fn fit_constant_keys() {
        let m = LinearModel::fit(&[5, 5, 5, 5]);
        assert_eq!(m.slope, 0.0);
        assert!((m.predict(5) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn fit_large_keys_stable() {
        // Near u64::MAX, `slope * key` rounds at ~256 ulp; the fit must stay
        // within a few hundred positions (error bounds absorb the rest).
        let base = u64::MAX - 1000;
        let keys: Vec<u64> = (0..100).map(|i| base + i * 10).collect();
        let m = LinearModel::fit(&keys);
        assert!(m.max_error(&keys) < 500.0, "err = {}", m.max_error(&keys));
        // Sanity: slope is still the right magnitude.
        assert!((m.slope - 0.1).abs() < 1e-3);
    }

    #[test]
    fn through_two_points() {
        let m = LinearModel::through(10, 0.0, 20, 10.0);
        assert!((m.predict(15) - 5.0).abs() < 1e-9);
        let degenerate = LinearModel::through(10, 3.0, 10, 9.0);
        assert_eq!(degenerate.predict(10), 3.0);
    }

    #[test]
    fn predict_clamped_bounds() {
        let m = LinearModel {
            slope: 1.0,
            intercept: -100.0,
        };
        assert_eq!(m.predict_clamped(0, 10), 0);
        assert_eq!(m.predict_clamped(u64::MAX, 10), 9);
        assert_eq!(m.predict_clamped(5, 0), 0);
    }

    #[test]
    fn pla_respects_epsilon() {
        // A curve (quadratic-ish) forces multiple segments.
        let keys: Vec<u64> = (0..1000u64).map(|i| i * i / 10 + i).collect();
        for eps in [1.0, 4.0, 16.0, 64.0] {
            let segs = pla_segments(&keys, eps);
            for seg in &segs {
                let covered = keys.iter().enumerate().skip(seg.start_pos).take(seg.len);
                for (i, &key) in covered {
                    let err = (seg.model.predict(key) - i as f64).abs();
                    assert!(
                        err <= eps + 1e-6,
                        "eps={eps}: err {err} at pos {i} (segment {seg:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn pla_segment_count_decreases_with_epsilon() {
        let keys: Vec<u64> = (0..2000u64).map(|i| i * i / 7).collect();
        let tight = pla_segments(&keys, 1.0).len();
        let loose = pla_segments(&keys, 64.0).len();
        assert!(loose < tight, "loose={loose} tight={tight}");
        assert!(loose >= 1);
    }

    #[test]
    fn pla_linear_data_single_segment() {
        let keys: Vec<u64> = (0..1000).map(|i| i * 3).collect();
        let segs = pla_segments(&keys, 1.0);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].len, 1000);
    }

    #[test]
    fn pla_covers_all_positions() {
        let keys: Vec<u64> = (0..500u64).map(|i| i * i).collect();
        let segs = pla_segments(&keys, 8.0);
        let covered: usize = segs.iter().map(|s| s.len).sum();
        assert_eq!(covered, keys.len());
        // Contiguous coverage.
        let mut pos = 0;
        for s in &segs {
            assert_eq!(s.start_pos, pos);
            pos += s.len;
        }
    }

    #[test]
    fn pla_empty_and_singleton() {
        assert!(pla_segments(&[], 4.0).is_empty());
        let segs = pla_segments(&[7], 4.0);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].predict(7), 0);
    }

    #[test]
    fn pla_duplicates_dont_panic() {
        let keys = vec![1, 2, 2, 2, 3, 10];
        let segs = pla_segments(&keys, 2.0);
        let covered: usize = segs.iter().map(|s| s.len).sum();
        assert_eq!(covered, keys.len());
    }

    #[test]
    fn segment_predict_clamps_within_segment() {
        let seg = Segment {
            first_key: 100,
            start_pos: 10,
            len: 5,
            model: LinearModel {
                slope: 1.0,
                intercept: 0.0,
            },
        };
        assert_eq!(seg.predict(0), 10); // clamped low
        assert_eq!(seg.predict(u64::MAX), 14); // clamped high
        assert_eq!(seg.predict(12), 12);
    }
}
