//! PGM-index: a multi-level piecewise-geometric-model index.
//!
//! Builds ε-bounded PLA segments over the sorted keys (see
//! [`crate::model::pla_segments`]), then recursively indexes the segments'
//! first keys with further PLA levels until a single segment remains. Every
//! level guarantees `|prediction − position| ≤ ε`, so a lookup costs one
//! model evaluation plus a `O(log ε)` binary search per level.
//!
//! `epsilon` is the PGM's specialization knob: small ε → many segments,
//! more memory and build work, faster lookups; large ε → tiny index,
//! slower last-mile searches.

use crate::model::{pla_segments, Segment};
use crate::{check_sorted, BulkLoad, Index, IndexError, IndexStats, Result};

/// Default ε for bulk loads via the [`BulkLoad`] trait.
pub const DEFAULT_EPSILON: f64 = 32.0;

/// Multi-level ε-PLA learned index.
#[derive(Debug, Clone)]
pub struct PgmIndex {
    keys: Vec<u64>,
    values: Vec<u64>,
    /// `levels[0]` segments the data; `levels[i + 1]` segments the first
    /// keys of `levels[i]`. The last level has exactly one segment.
    levels: Vec<Vec<Segment>>,
    epsilon: f64,
    build_work: u64,
}

impl PgmIndex {
    /// Builds a PGM-index with the given ε (≥ 1 recommended).
    pub fn build(pairs: &[(u64, u64)], epsilon: f64) -> Result<Self> {
        if epsilon.is_nan() || epsilon < 0.0 {
            return Err(IndexError::Unsupported("epsilon must be non-negative"));
        }
        check_sorted(pairs)?;
        let keys: Vec<u64> = pairs.iter().map(|p| p.0).collect();
        let values: Vec<u64> = pairs.iter().map(|p| p.1).collect();
        let mut levels = Vec::new();
        let mut work = 0u64;
        if !keys.is_empty() {
            let mut current = pla_segments(&keys, epsilon);
            work += keys.len() as u64;
            loop {
                let seg_count = current.len();
                levels.push(current);
                if seg_count <= 1 {
                    break;
                }
                let level_keys: Vec<u64> = levels
                    .last()
                    .expect("just pushed")
                    .iter()
                    .map(|s| s.first_key)
                    .collect();
                work += level_keys.len() as u64;
                current = pla_segments(&level_keys, epsilon);
            }
        }
        Ok(PgmIndex {
            keys,
            values,
            levels,
            epsilon,
            build_work: work.max(1),
        })
    }

    /// The ε this index was built with.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Number of levels (1 for small datasets).
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Total segments across all levels.
    pub fn segment_count(&self) -> usize {
        self.levels.iter().map(|l| l.len()).sum()
    }

    /// Finds the index of the segment in `level` whose range covers `key`
    /// (the last segment with `first_key <= key`), given a predicted
    /// position from the level above.
    fn refine(&self, level: &[Segment], approx: usize, key: u64) -> usize {
        // The ε guarantee is relative to the level's own key list, so search
        // a ±(ε + 2) window around the prediction, then verify the result
        // and fall back to a full binary search if the window missed.
        let slack = self.epsilon as usize + 2;
        let lo = approx.saturating_sub(slack);
        let hi = (approx + slack + 1).min(level.len());
        // The ±ε window is a few cache lines at most, so the branchless
        // scan wins: no mispredicted comparisons on the way down.
        let idx = (lo + crate::search::partition_point_by(&level[lo..hi], |s| s.first_key <= key))
            .saturating_sub(1);
        let valid = (level[idx].first_key <= key || idx == 0)
            && (idx + 1 == level.len() || level[idx + 1].first_key > key);
        if valid {
            idx
        } else {
            level
                .partition_point(|s| s.first_key <= key)
                .saturating_sub(1)
        }
    }

    /// Position of the first data key `>= key`.
    pub fn lower_bound(&self, key: u64) -> usize {
        let n = self.keys.len();
        if n == 0 {
            return 0;
        }
        // Descend from the top level to level 0.
        let top = self.levels.len() - 1;
        let mut seg_idx = 0usize;
        for depth in (0..=top).rev() {
            let level = &self.levels[depth];
            let seg = &level[seg_idx.min(level.len() - 1)];
            if depth == 0 {
                // Final level: predict a data position and binary search the
                // ε window.
                let pred = seg.predict(key);
                let slack = self.epsilon as usize + 2;
                let mut lo = pred.saturating_sub(slack);
                let mut hi = (pred + slack + 1).min(n);
                if lo > 0 && self.keys[lo - 1] >= key {
                    lo = 0;
                }
                if hi < n && self.keys[hi - 1] < key {
                    hi = n;
                }
                lo = lo.min(hi);
                // Branchless last mile inside the ε window; if validation
                // widened the bracket to the whole array (a key the
                // segments never covered), the speculative stdlib search
                // handles the memory-bound case better.
                let w = &self.keys[lo..hi];
                return lo
                    + if w.len() <= 2 * slack + 1 {
                        crate::search::lower_bound(w, key)
                    } else {
                        w.partition_point(|&k| k < key)
                    };
            }
            // Predict the segment index in the level below.
            let below = &self.levels[depth - 1];
            let approx = seg.predict(key).min(below.len() - 1);
            seg_idx = self.refine(below, approx, key);
        }
        unreachable!("loop always returns at depth 0")
    }
}

impl BulkLoad for PgmIndex {
    fn bulk_load(pairs: &[(u64, u64)]) -> Result<Self> {
        PgmIndex::build(pairs, DEFAULT_EPSILON)
    }
}

impl Index for PgmIndex {
    fn name(&self) -> &'static str {
        "pgm"
    }

    fn get(&self, key: u64) -> Option<u64> {
        let pos = self.lower_bound(key);
        if pos < self.keys.len() && self.keys[pos] == key {
            Some(self.values[pos])
        } else {
            None
        }
    }

    fn range(&self, start: u64, limit: usize) -> Result<Vec<(u64, u64)>> {
        let from = self.lower_bound(start);
        let to = (from + limit).min(self.keys.len());
        Ok(self.keys[from..to]
            .iter()
            .copied()
            .zip(self.values[from..to].iter().copied())
            .collect())
    }

    fn insert(&mut self, _key: u64, _value: u64) -> Result<Option<u64>> {
        Err(IndexError::Unsupported(
            "PGM is read-only; wrap in DeltaIndex for updates",
        ))
    }

    fn delete(&mut self, _key: u64) -> Result<Option<u64>> {
        Err(IndexError::Unsupported(
            "PGM is read-only; wrap in DeltaIndex for updates",
        ))
    }

    fn len(&self) -> usize {
        self.keys.len()
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            size_bytes: self.keys.len() * 16 + self.segment_count() * 48,
            build_work: self.build_work,
            model_count: self.segment_count(),
        }
    }

    fn probe_cost(&self, _key: u64) -> u64 {
        // One model evaluation plus an ε-window search per level.
        let per_level = 1 + crate::bsearch_cost(self.epsilon as u64);
        (self.levels.len() as u64).max(1) * per_level
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{check_point_lookups, check_ranges, test_pairs};

    #[test]
    fn conformance_various_sizes() {
        for n in [1, 2, 10, 100, 1000, 20_000] {
            let pairs = test_pairs(n);
            let idx = PgmIndex::bulk_load(&pairs).unwrap();
            assert_eq!(idx.len(), pairs.len(), "n = {n}");
            check_point_lookups(&idx, &pairs);
            check_ranges(&idx, &pairs);
        }
    }

    #[test]
    fn empty_index() {
        let idx = PgmIndex::bulk_load(&[]).unwrap();
        assert_eq!(idx.get(1), None);
        assert_eq!(idx.level_count(), 0);
        assert!(idx.range(0, 5).unwrap().is_empty());
    }

    #[test]
    fn epsilon_trades_size_for_search() {
        let pairs: Vec<(u64, u64)> = (0..50_000u64).map(|i| (i * i / 3, i)).collect();
        let mut dedup = pairs.clone();
        dedup.dedup_by_key(|p| p.0);
        let tight = PgmIndex::build(&dedup, 4.0).unwrap();
        let loose = PgmIndex::build(&dedup, 256.0).unwrap();
        assert!(
            tight.segment_count() > loose.segment_count(),
            "tight {} vs loose {}",
            tight.segment_count(),
            loose.segment_count()
        );
        check_point_lookups(&tight, &dedup[..500]);
        check_point_lookups(&loose, &dedup[..500]);
    }

    #[test]
    fn multi_level_construction() {
        // Enough curvature to force multiple segments and levels with tiny ε.
        let pairs: Vec<(u64, u64)> = (0..30_000u64)
            .map(|i| (i * i + (i % 7) * 1000, i))
            .collect();
        let mut dedup = pairs;
        dedup.sort_by_key(|p| p.0);
        dedup.dedup_by_key(|p| p.0);
        let idx = PgmIndex::build(&dedup, 2.0).unwrap();
        assert!(idx.level_count() >= 2, "levels = {}", idx.level_count());
        check_point_lookups(&idx, &dedup[..300]);
    }

    #[test]
    fn lower_bound_semantics() {
        let pairs: Vec<(u64, u64)> = vec![(10, 1), (20, 2), (30, 3)];
        let idx = PgmIndex::bulk_load(&pairs).unwrap();
        assert_eq!(idx.lower_bound(0), 0);
        assert_eq!(idx.lower_bound(10), 0);
        assert_eq!(idx.lower_bound(15), 1);
        assert_eq!(idx.lower_bound(30), 2);
        assert_eq!(idx.lower_bound(1000), 3);
    }

    #[test]
    fn exponential_keys_correct() {
        let pairs: Vec<(u64, u64)> = (0..50u32).map(|i| (1u64 << i, i as u64)).collect();
        let idx = PgmIndex::build(&pairs, 2.0).unwrap();
        check_point_lookups(&idx, &pairs);
    }

    #[test]
    fn read_only_mutations_rejected() {
        let mut idx = PgmIndex::bulk_load(&[(1, 10)]).unwrap();
        assert!(matches!(idx.insert(2, 20), Err(IndexError::Unsupported(_))));
        assert!(matches!(idx.delete(1), Err(IndexError::Unsupported(_))));
    }

    #[test]
    fn stats_report_segments() {
        let pairs = test_pairs(10_000);
        let idx = PgmIndex::build(&pairs, 16.0).unwrap();
        assert_eq!(idx.stats().model_count, idx.segment_count());
        assert!(idx.stats().build_work >= 10_000u64 / 2);
    }
}
