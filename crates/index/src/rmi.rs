//! Two-level Recursive Model Index (RMI).
//!
//! The flagship learned index of Kraska et al. \[8]: "models … arranged in a
//! tree, with the prediction of a model being used to pick a more
//! specialized model recursively until the leaf model makes a final
//! prediction" (§II). This implementation uses a linear root model routing
//! to a configurable number of linear leaf models, each with exact error
//! bounds, and a bounded binary search for the last mile.
//!
//! Two knobs expose the paper's *training-cost* trade-off (Fig. 1d):
//!
//! * `leaf_count` — more leaf models cost more training work and memory but
//!   shrink error bounds (faster lookups);
//! * `sample_every` — fitting on a subsample cuts training work but loosens
//!   the fit (error bounds are still computed exactly, so lookups remain
//!   correct, just slower).

use crate::model::LinearModel;
use crate::{check_sorted, BulkLoad, Index, IndexError, IndexStats, Result};
use serde::{Deserialize, Serialize};

/// Configuration for RMI construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RmiConfig {
    /// Number of second-level (leaf) models.
    pub leaf_count: usize,
    /// Train each leaf on every `sample_every`-th key (1 = all keys).
    pub sample_every: usize,
}

impl Default for RmiConfig {
    fn default() -> Self {
        RmiConfig {
            leaf_count: 1024,
            sample_every: 1,
        }
    }
}

/// A leaf model with its exact error bounds.
#[derive(Debug, Clone, Copy)]
struct Leaf {
    model: LinearModel,
    /// Smallest signed error `actual - predicted` over the leaf's keys.
    err_lo: i64,
    /// Largest signed error over the leaf's keys.
    err_hi: i64,
}

/// Two-level recursive model index over sorted `u64` pairs.
#[derive(Debug, Clone)]
pub struct Rmi {
    keys: Vec<u64>,
    values: Vec<u64>,
    root: LinearModel,
    leaves: Vec<Leaf>,
    config: RmiConfig,
    build_work: u64,
}

impl Rmi {
    /// Builds an RMI with an explicit configuration.
    pub fn build(pairs: &[(u64, u64)], config: RmiConfig) -> Result<Self> {
        if config.leaf_count == 0 || config.sample_every == 0 {
            return Err(IndexError::Unsupported(
                "leaf_count and sample_every must be positive",
            ));
        }
        check_sorted(pairs)?;
        let keys: Vec<u64> = pairs.iter().map(|p| p.0).collect();
        let values: Vec<u64> = pairs.iter().map(|p| p.1).collect();
        let n = keys.len();
        let mut work = 0u64;

        // Root model: fit key -> position over a subsample, then scale to
        // leaf indices during routing.
        let root_sample: Vec<u64> = keys.iter().copied().step_by(config.sample_every).collect();
        let root = LinearModel::fit(&root_sample);
        work += root_sample.len() as u64;

        let leaf_count = config.leaf_count.min(n.max(1));
        // Partition keys by root routing (routing is monotone in key, so
        // each leaf covers a contiguous range).
        let route = |key: u64| -> usize {
            if n == 0 {
                return 0;
            }
            let pos = root.predict(key).clamp(0.0, (n - 1) as f64);
            ((pos / n as f64) * leaf_count as f64) as usize % leaf_count
        };
        let mut leaf_bounds = vec![(usize::MAX, 0usize); leaf_count]; // (start, end)
        for (i, &k) in keys.iter().enumerate() {
            let l = route(k);
            let b = &mut leaf_bounds[l];
            if b.0 == usize::MAX {
                b.0 = i;
            }
            b.1 = i + 1;
        }
        work += n as u64;

        let mut leaves = Vec::with_capacity(leaf_count);
        for &(start, end) in &leaf_bounds {
            if start == usize::MAX {
                leaves.push(Leaf {
                    model: LinearModel::ZERO,
                    err_lo: 0,
                    err_hi: 0,
                });
                continue;
            }
            let slice = &keys[start..end];
            // Fit on a subsample (training cost knob).
            let sampled: Vec<u64> = slice.iter().copied().step_by(config.sample_every).collect();
            let local = LinearModel::fit(&sampled);
            work += sampled.len() as u64;
            // Lift local positions (0..sample len) to absolute positions: the
            // model was fit against subsampled local indices, so rescale.
            let scale = if sampled.len() > 1 {
                (slice.len() as f64 - 1.0) / (sampled.len() as f64 - 1.0).max(1.0)
            } else {
                1.0
            };
            let model = LinearModel {
                slope: local.slope * scale,
                intercept: local.intercept * scale + start as f64,
            };
            // Exact error bounds over all covered keys (single cheap pass).
            let mut err_lo = i64::MAX;
            let mut err_hi = i64::MIN;
            for (off, &k) in slice.iter().enumerate() {
                let actual = (start + off) as f64;
                let err = (actual - model.predict(k)).round() as i64;
                err_lo = err_lo.min(err);
                err_hi = err_hi.max(err);
            }
            work += slice.len() as u64 / 4; // bounds pass is cheaper than fitting
            leaves.push(Leaf {
                model,
                err_lo,
                err_hi,
            });
        }

        Ok(Rmi {
            keys,
            values,
            root,
            leaves,
            config,
            build_work: work.max(1),
        })
    }

    /// The configuration used to build this index.
    pub fn config(&self) -> RmiConfig {
        self.config
    }

    /// Average error-window width across non-empty leaves (diagnostic).
    pub fn mean_error_window(&self) -> f64 {
        let widths: Vec<f64> = self
            .leaves
            .iter()
            .filter(|l| l.err_hi >= l.err_lo)
            .map(|l| (l.err_hi - l.err_lo) as f64)
            .collect();
        if widths.is_empty() {
            0.0
        } else {
            widths.iter().sum::<f64>() / widths.len() as f64
        }
    }

    #[inline]
    fn leaf_of(&self, key: u64) -> &Leaf {
        let n = self.keys.len();
        debug_assert!(n > 0);
        let pos = self.root.predict(key).clamp(0.0, (n - 1) as f64);
        let idx = ((pos / n as f64) * self.leaves.len() as f64) as usize % self.leaves.len();
        &self.leaves[idx]
    }

    /// The `[lo, hi)` slice of `keys` guaranteed to bracket `key`'s lower
    /// bound: the leaf model's prediction widened by its error bounds.
    ///
    /// The window provably brackets the boundary for keys the leaf was
    /// trained on; for other keys it may be off, so it is widened whenever
    /// the bracket is not demonstrably valid: after the fixups,
    /// `keys[lo-1] < key` (or `lo == 0`) and `keys[hi-1] >= key`
    /// (or `hi == n`).
    #[inline]
    fn window(&self, key: u64) -> (usize, usize) {
        let (lo, hi) = self.raw_window(key);
        self.fixup_window(lo, hi, key)
    }

    /// The model's predicted `[lo, hi)` bracket, before validation. Only
    /// evaluates models — never touches the key array.
    #[inline]
    fn raw_window(&self, key: u64) -> (usize, usize) {
        let n = self.keys.len();
        let leaf = self.leaf_of(key);
        let pred = leaf.model.predict(key);
        let lo = (pred + leaf.err_lo as f64).floor().max(0.0) as usize;
        let hi = ((pred + leaf.err_hi as f64).ceil().max(0.0) as usize + 1).min(n);
        (lo.min(hi), hi)
    }

    /// Validates a raw bracket against the key array (two boundary
    /// reads), widening when the model's bracket does not provably hold.
    #[inline]
    fn fixup_window(&self, mut lo: usize, mut hi: usize, key: u64) -> (usize, usize) {
        let n = self.keys.len();
        if lo > 0 && self.keys[lo - 1] >= key {
            lo = 0;
        }
        if hi < n && self.keys[hi - 1] < key {
            hi = n;
        }
        (lo.min(hi), hi)
    }

    /// Position of the first key `>= key` (lower bound), using the model
    /// plus a bounded binary search.
    pub fn lower_bound(&self, key: u64) -> usize {
        if self.keys.is_empty() {
            return 0;
        }
        let (lo, hi) = self.window(key);
        lo + self.keys[lo..hi].partition_point(|&k| k < key)
    }
}

impl BulkLoad for Rmi {
    fn bulk_load(pairs: &[(u64, u64)]) -> Result<Self> {
        Rmi::build(pairs, RmiConfig::default())
    }
}

impl Index for Rmi {
    fn name(&self) -> &'static str {
        "rmi"
    }

    fn get(&self, key: u64) -> Option<u64> {
        let pos = self.lower_bound(key);
        if pos < self.keys.len() && self.keys[pos] == key {
            Some(self.values[pos])
        } else {
            None
        }
    }

    fn range(&self, start: u64, limit: usize) -> Result<Vec<(u64, u64)>> {
        let from = self.lower_bound(start);
        let to = (from + limit).min(self.keys.len());
        Ok(self.keys[from..to]
            .iter()
            .copied()
            .zip(self.values[from..to].iter().copied())
            .collect())
    }

    fn insert(&mut self, _key: u64, _value: u64) -> Result<Option<u64>> {
        Err(IndexError::Unsupported(
            "RMI is read-only; wrap in DeltaIndex for updates",
        ))
    }

    fn delete(&mut self, _key: u64) -> Result<Option<u64>> {
        Err(IndexError::Unsupported(
            "RMI is read-only; wrap in DeltaIndex for updates",
        ))
    }

    fn len(&self) -> usize {
        self.keys.len()
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            // Models only; the sorted data arrays are the dataset itself,
            // but an index owns copies here, so count them.
            size_bytes: self.keys.len() * 16 + self.leaves.len() * 32 + 32,
            build_work: self.build_work,
            model_count: self.leaves.len() + 1,
        }
    }

    fn probe_cost(&self, key: u64) -> u64 {
        if self.keys.is_empty() {
            return 1;
        }
        let leaf = self.leaf_of(key);
        let window = (leaf.err_hi - leaf.err_lo).max(0) as u64;
        // Root model + leaf model + last-mile search of this leaf's window.
        2 + crate::bsearch_cost(window)
    }

    /// Batched probes in two passes: evaluate every model in the group
    /// first (the models are hot — only the key-array windows miss
    /// cache), then resolve all the last-mile searches in lockstep with
    /// [`crate::search::lower_bound_group`], which advances each search
    /// one halving step per round and prefetches its next probe. A lone
    /// [`Index::get`] must eat its window misses serially; the group's
    /// are independent and overlap.
    fn get_many(&self, keys: &[u64], out: &mut Vec<Option<u64>>) {
        use crate::search::{lower_bound_group, GROUP};
        out.reserve(keys.len());
        if self.keys.is_empty() {
            out.extend(keys.iter().map(|_| None));
            return;
        }
        let n = self.keys.len();
        let mut windows = [(0usize, 0usize); GROUP];
        let mut pos = [0usize; GROUP];
        for chunk in keys.chunks(GROUP) {
            let g = chunk.len();
            // Model pass: predict every bracket and start the loads of
            // the boundary lines the validation pass is about to read.
            for (w, &key) in windows[..g].iter_mut().zip(chunk) {
                let (lo, hi) = self.raw_window(key);
                *w = (lo, hi);
                if lo > 0 {
                    crate::prefetch_read(&self.keys[lo - 1]);
                }
                if hi < n && hi > 0 {
                    crate::prefetch_read(&self.keys[hi - 1]);
                }
            }
            // Validation pass: the boundary reads land on lines already
            // in flight.
            for (w, &key) in windows[..g].iter_mut().zip(chunk) {
                *w = self.fixup_window(w.0, w.1, key);
            }
            lower_bound_group(&self.keys, chunk, &windows[..g], &mut pos[..g]);
            // The values array is a separate allocation — overlap the
            // hits' value misses before reading any of them.
            for &p in &pos[..g] {
                if p < n {
                    crate::prefetch_read(&self.values[p]);
                }
            }
            for (&p, &key) in pos[..g].iter().zip(chunk) {
                out.push(if p < n && self.keys[p] == key {
                    Some(self.values[p])
                } else {
                    None
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{check_point_lookups, check_ranges, test_pairs};

    #[test]
    fn conformance_various_sizes() {
        for n in [1, 2, 100, 1000, 10_000] {
            let pairs = test_pairs(n);
            let idx = Rmi::bulk_load(&pairs).unwrap();
            assert_eq!(idx.len(), pairs.len(), "n = {n}");
            check_point_lookups(&idx, &pairs);
            check_ranges(&idx, &pairs);
        }
    }

    #[test]
    fn empty_index() {
        let idx = Rmi::bulk_load(&[]).unwrap();
        assert_eq!(idx.get(5), None);
        assert!(idx.range(0, 10).unwrap().is_empty());
        assert_eq!(idx.lower_bound(9), 0);
    }

    #[test]
    fn lower_bound_semantics() {
        let pairs: Vec<(u64, u64)> = vec![(10, 1), (20, 2), (30, 3)];
        let idx = Rmi::bulk_load(&pairs).unwrap();
        assert_eq!(idx.lower_bound(5), 0);
        assert_eq!(idx.lower_bound(10), 0);
        assert_eq!(idx.lower_bound(11), 1);
        assert_eq!(idx.lower_bound(30), 2);
        assert_eq!(idx.lower_bound(31), 3);
    }

    #[test]
    fn skewed_keys_still_correct() {
        // Exponentially spaced keys defeat a single linear model; leaves must
        // compensate via error bounds.
        let pairs: Vec<(u64, u64)> = (0..40u32).map(|i| (1u64 << i, i as u64)).collect();
        let idx = Rmi::build(
            &pairs,
            RmiConfig {
                leaf_count: 8,
                sample_every: 1,
            },
        )
        .unwrap();
        check_point_lookups(&idx, &pairs);
    }

    #[test]
    fn more_leaves_tighter_errors() {
        let pairs: Vec<(u64, u64)> = (0..20_000u64).map(|i| (i * i, i)).collect();
        let coarse = Rmi::build(
            &pairs,
            RmiConfig {
                leaf_count: 4,
                sample_every: 1,
            },
        )
        .unwrap();
        let fine = Rmi::build(
            &pairs,
            RmiConfig {
                leaf_count: 2048,
                sample_every: 1,
            },
        )
        .unwrap();
        assert!(
            fine.mean_error_window() < coarse.mean_error_window(),
            "fine {} vs coarse {}",
            fine.mean_error_window(),
            coarse.mean_error_window()
        );
        check_point_lookups(&fine, &pairs[..1000]);
        check_point_lookups(&coarse, &pairs[..1000]);
    }

    #[test]
    fn sampling_reduces_work_keeps_correctness() {
        let pairs = test_pairs(20_000);
        let full = Rmi::build(
            &pairs,
            RmiConfig {
                leaf_count: 256,
                sample_every: 1,
            },
        )
        .unwrap();
        let sampled = Rmi::build(
            &pairs,
            RmiConfig {
                leaf_count: 256,
                sample_every: 16,
            },
        )
        .unwrap();
        assert!(
            sampled.stats().build_work < full.stats().build_work,
            "sampled {} vs full {}",
            sampled.stats().build_work,
            full.stats().build_work
        );
        check_point_lookups(&sampled, &pairs);
        check_ranges(&sampled, &pairs);
    }

    #[test]
    fn read_only_mutations_rejected() {
        let mut idx = Rmi::bulk_load(&[(1, 10)]).unwrap();
        assert!(matches!(idx.insert(2, 20), Err(IndexError::Unsupported(_))));
        assert!(matches!(idx.delete(1), Err(IndexError::Unsupported(_))));
    }

    #[test]
    fn invalid_config_rejected() {
        assert!(Rmi::build(
            &[(1, 1)],
            RmiConfig {
                leaf_count: 0,
                sample_every: 1
            }
        )
        .is_err());
        assert!(Rmi::build(
            &[(1, 1)],
            RmiConfig {
                leaf_count: 4,
                sample_every: 0
            }
        )
        .is_err());
    }

    #[test]
    fn stats_report_models() {
        let pairs = test_pairs(5000);
        let idx = Rmi::build(
            &pairs,
            RmiConfig {
                leaf_count: 64,
                sample_every: 1,
            },
        )
        .unwrap();
        let s = idx.stats();
        assert_eq!(s.model_count, 65);
        assert!(s.build_work > 0);
    }
}
