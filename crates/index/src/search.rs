//! Branchless last-mile search.
//!
//! Every learned index in this crate ends its probe with a short sorted
//! scan: the RMI error window, the PGM/spline predicted window. The
//! loops here keep the classic "halve the size, conditionally move the
//! base" shape (Alexandrescu-style branchless lower bound) which LLVM
//! lowers to a conditional move instead of a data-dependent branch.
//!
//! The trade-off, measured in `benches/hotpath.rs`: on *resident* data
//! the cmov loop beats `slice::partition_point` (no mispredict flushes
//! on random probe keys), but on a memory-bound search the cmov makes
//! every load's address depend on the previous load, while a branchy
//! search lets the CPU speculate ahead and overlap the misses. So the
//! scalar functions serve small ε-bounded windows (PGM), and the real
//! payoff is [`lower_bound_group`]: the explicit `(base, size)` state —
//! impossible to express with `partition_point`'s callback — lets up to
//! [`GROUP`] independent searches advance in lockstep with prefetch,
//! turning the dependent-load problem into memory-level parallelism.
//! The RMI and RadixSpline `get_many` paths build on it.
//!
//! Semantics are pinned to the standard library: [`lower_bound`] equals
//! `slice::partition_point(|&k| k < key)`, [`upper_bound`] equals
//! `slice::partition_point(|&k| k <= key)`, and [`binary_search`]
//! matches `slice::binary_search` on `Ok`/`Err` (on slices with
//! duplicates the stdlib may return *any* matching index; this one
//! always returns the first — both are valid `Ok` answers).
//! `tests/properties.rs` holds the property tests.

/// First index `i` such that `keys[i] >= key` (i.e. the insertion point
/// keeping the slice sorted, before any run of equal keys).
///
/// Equivalent to `keys.partition_point(|&k| k < key)`.
#[inline]
pub fn lower_bound(keys: &[u64], key: u64) -> usize {
    let mut size = keys.len();
    if size == 0 {
        return 0;
    }
    let mut base = 0usize;
    while size > 1 {
        let half = size / 2;
        let mid = base + half;
        // SAFETY: `base + size <= keys.len()` is a loop invariant (it
        // holds on entry and both updates preserve it), and `size >= 2`
        // here, so `mid - 1 = base + half - 1 < base + size <= len`.
        // Unchecked access keeps the panic path out of the loop so the
        // comparison compiles to a conditional move, not a branch.
        let probe = unsafe { *keys.get_unchecked(mid - 1) };
        base = if probe < key { mid } else { base };
        size -= half;
    }
    // SAFETY: `base < keys.len()` — `base` only ever takes values
    // `mid <= len - 1` and started at 0 on a non-empty slice.
    base + usize::from(unsafe { *keys.get_unchecked(base) } < key)
}

/// First index `i` such that `keys[i] > key` (insertion point after any
/// run of equal keys).
///
/// Equivalent to `keys.partition_point(|&k| k <= key)`.
#[inline]
pub fn upper_bound(keys: &[u64], key: u64) -> usize {
    let mut size = keys.len();
    if size == 0 {
        return 0;
    }
    let mut base = 0usize;
    while size > 1 {
        let half = size / 2;
        let mid = base + half;
        // SAFETY: same invariant as `lower_bound` — `mid - 1` is in
        // bounds while `size >= 2` and `base + size <= keys.len()`.
        let probe = unsafe { *keys.get_unchecked(mid - 1) };
        base = if probe <= key { mid } else { base };
        size -= half;
    }
    // SAFETY: `base < keys.len()`, as in `lower_bound`.
    base + usize::from(unsafe { *keys.get_unchecked(base) } <= key)
}

/// Branchless generalization of `slice::partition_point`: first index at
/// which `pred` turns false, assuming the slice is partitioned (all
/// `true` items precede all `false` items).
///
/// Used where the probed element is not a bare key — PGM segment
/// directories (`s.first_key <= key`) and spline knot arrays
/// (`sp.key <= key`).
#[inline]
pub fn partition_point_by<T>(items: &[T], mut pred: impl FnMut(&T) -> bool) -> usize {
    let mut size = items.len();
    if size == 0 {
        return 0;
    }
    let mut base = 0usize;
    while size > 1 {
        let half = size / 2;
        let mid = base + half;
        // SAFETY: same invariant as `lower_bound` — `mid - 1` is in
        // bounds while `size >= 2` and `base + size <= items.len()`.
        base = if pred(unsafe { items.get_unchecked(mid - 1) }) {
            mid
        } else {
            base
        };
        size -= half;
    }
    // SAFETY: `base < items.len()`, as in `lower_bound`.
    base + usize::from(pred(unsafe { items.get_unchecked(base) }))
}

/// Maximum group size [`lower_bound_group`] accepts per call.
pub const GROUP: usize = 16;

/// Lockstep batch of lower bounds: `out[i]` becomes the first index in
/// `windows[i] = [lo, hi)` (absolute into `keys`) at which
/// `keys[out[i]] >= queries[i]`, i.e. exactly
/// `lo + keys[lo..hi].partition_point(|&k| k < queries[i])`.
///
/// This is the payoff of the branchless formulation: because each search
/// carries explicit `(base, size)` state instead of hiding it in a call
/// stack, up to [`GROUP`] independent searches advance one halving step
/// per round, and each step prefetches its next probe address. One
/// search's probe loads are serially dependent; across the group the
/// round's loads are independent, so their cache misses overlap
/// (memory-level parallelism) instead of queueing one at a time.
///
/// All slices must share a length `g <= GROUP`; windows must satisfy
/// `lo <= hi <= keys.len()`.
pub fn lower_bound_group(
    keys: &[u64],
    queries: &[u64],
    windows: &[(usize, usize)],
    out: &mut [usize],
) {
    let g = queries.len();
    assert!(g <= GROUP, "group too large: {g} > {GROUP}");
    assert!(
        windows.len() == g && out.len() == g,
        "slice length mismatch"
    );
    let mut base = [0usize; GROUP];
    let mut size = [0usize; GROUP];
    let mut pending = 0usize;
    for i in 0..g {
        let (lo, hi) = windows[i];
        assert!(lo <= hi && hi <= keys.len(), "window out of bounds");
        base[i] = lo;
        size[i] = hi - lo;
        if size[i] > 1 {
            pending += 1;
            crate::prefetch_read(&keys[lo + size[i] / 2 - 1]);
        }
    }
    while pending > 0 {
        for i in 0..g {
            if size[i] > 1 {
                let half = size[i] / 2;
                let mid = base[i] + half;
                // SAFETY: the `base + size <= hi <= keys.len()` invariant
                // from `lower_bound` holds per lane (asserted on entry,
                // preserved by both updates), and `size >= 2` here.
                let probe = unsafe { *keys.get_unchecked(mid - 1) };
                base[i] = if probe < queries[i] { mid } else { base[i] };
                size[i] -= half;
                if size[i] > 1 {
                    // SAFETY: same invariant; `base + size/2 - 1 < keys.len()`.
                    crate::prefetch_read(unsafe { keys.get_unchecked(base[i] + size[i] / 2 - 1) });
                } else {
                    pending -= 1;
                }
            }
        }
    }
    for i in 0..g {
        // Empty windows resolve to `lo`; the short-circuit keeps the
        // `keys[base]` read guarded.
        out[i] = base[i] + usize::from(size[i] == 1 && keys[base[i]] < queries[i]);
    }
}

/// Branchless `slice::binary_search`: `Ok(i)` with `keys[i] == key`
/// (first match) or `Err(i)` with the insertion point.
#[inline]
pub fn binary_search(keys: &[u64], key: u64) -> Result<usize, usize> {
    let i = lower_bound(keys, key);
    if i < keys.len() && keys[i] == key {
        Ok(i)
    } else {
        Err(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_slice() {
        assert_eq!(lower_bound(&[], 5), 0);
        assert_eq!(upper_bound(&[], 5), 0);
        assert_eq!(binary_search(&[], 5), Err(0));
        assert_eq!(partition_point_by::<u64>(&[], |_| true), 0);
    }

    #[test]
    fn single_element() {
        assert_eq!(lower_bound(&[7], 6), 0);
        assert_eq!(lower_bound(&[7], 7), 0);
        assert_eq!(lower_bound(&[7], 8), 1);
        assert_eq!(upper_bound(&[7], 6), 0);
        assert_eq!(upper_bound(&[7], 7), 1);
        assert_eq!(upper_bound(&[7], 8), 1);
        assert_eq!(binary_search(&[7], 7), Ok(0));
        assert_eq!(binary_search(&[7], 8), Err(1));
    }

    #[test]
    fn matches_partition_point_on_duplicates() {
        let keys = [1u64, 3, 3, 3, 9, 9, 12];
        for key in 0..15u64 {
            assert_eq!(
                lower_bound(&keys, key),
                keys.partition_point(|&k| k < key),
                "lower_bound({key})"
            );
            assert_eq!(
                upper_bound(&keys, key),
                keys.partition_point(|&k| k <= key),
                "upper_bound({key})"
            );
        }
    }

    #[test]
    fn binary_search_err_matches_std() {
        let keys = [2u64, 4, 8, 16, 32];
        for key in 0..40u64 {
            match (binary_search(&keys, key), keys.binary_search(&key)) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a, b, "unique keys must agree on Ok index for {key}")
                }
                (Err(a), Err(b)) => assert_eq!(a, b, "Err index for {key}"),
                (a, b) => panic!("Ok/Err disagreement for {key}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn partition_point_by_on_structs() {
        let items = [(1u64, 'a'), (5, 'b'), (9, 'c')];
        assert_eq!(partition_point_by(&items, |p| p.0 <= 5), 2);
        assert_eq!(partition_point_by(&items, |p| p.0 < 1), 0);
        assert_eq!(partition_point_by(&items, |p| p.0 <= 99), 3);
    }
}
