//! Dense sorted array with binary search — the minimal baseline.
//!
//! Lowest possible space overhead and a `O(log n)` lookup with no model:
//! the floor every learned index must beat. Inserts shift elements, so it
//! also serves as the worst-case "naive updatable" baseline.

use crate::{check_sorted, BulkLoad, Index, IndexError, IndexStats, Result};

/// Sorted parallel arrays of keys and values.
#[derive(Debug, Clone, Default)]
pub struct SortedArray {
    keys: Vec<u64>,
    values: Vec<u64>,
}

impl SortedArray {
    /// Creates an empty array.
    pub fn new() -> Self {
        SortedArray::default()
    }

    /// Position of the first key `>= key`.
    fn lower_bound(&self, key: u64) -> usize {
        self.keys.partition_point(|&k| k < key)
    }

    /// The sorted keys (used by learned indexes built on top).
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    /// The values aligned with [`SortedArray::keys`].
    pub fn values(&self) -> &[u64] {
        &self.values
    }
}

impl BulkLoad for SortedArray {
    fn bulk_load(pairs: &[(u64, u64)]) -> Result<Self> {
        check_sorted(pairs)?;
        Ok(SortedArray {
            keys: pairs.iter().map(|p| p.0).collect(),
            values: pairs.iter().map(|p| p.1).collect(),
        })
    }
}

impl Index for SortedArray {
    fn name(&self) -> &'static str {
        "sorted-array"
    }

    fn get(&self, key: u64) -> Option<u64> {
        self.keys
            .binary_search(&key)
            .ok()
            .map(|idx| self.values[idx])
    }

    fn range(&self, start: u64, limit: usize) -> Result<Vec<(u64, u64)>> {
        let from = self.lower_bound(start);
        let to = (from + limit).min(self.keys.len());
        Ok(self.keys[from..to]
            .iter()
            .copied()
            .zip(self.values[from..to].iter().copied())
            .collect())
    }

    fn insert(&mut self, key: u64, value: u64) -> Result<Option<u64>> {
        match self.keys.binary_search(&key) {
            Ok(idx) => Ok(Some(std::mem::replace(&mut self.values[idx], value))),
            Err(idx) => {
                self.keys.insert(idx, key);
                self.values.insert(idx, value);
                Ok(None)
            }
        }
    }

    fn delete(&mut self, key: u64) -> Result<Option<u64>> {
        match self.keys.binary_search(&key) {
            Ok(idx) => {
                self.keys.remove(idx);
                Ok(Some(self.values.remove(idx)))
            }
            Err(_) => Ok(None),
        }
    }

    fn len(&self) -> usize {
        self.keys.len()
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            size_bytes: self.keys.len() * 16,
            build_work: self.keys.len() as u64,
            model_count: 0,
        }
    }
}

/// A degenerate read-only view used in tests for unsupported-op behaviour.
#[derive(Debug, Clone, Default)]
pub struct FrozenArray(SortedArray);

impl BulkLoad for FrozenArray {
    fn bulk_load(pairs: &[(u64, u64)]) -> Result<Self> {
        Ok(FrozenArray(SortedArray::bulk_load(pairs)?))
    }
}

impl Index for FrozenArray {
    fn name(&self) -> &'static str {
        "frozen-array"
    }
    fn get(&self, key: u64) -> Option<u64> {
        self.0.get(key)
    }
    fn range(&self, start: u64, limit: usize) -> Result<Vec<(u64, u64)>> {
        self.0.range(start, limit)
    }
    fn insert(&mut self, _key: u64, _value: u64) -> Result<Option<u64>> {
        Err(IndexError::Unsupported("insert on frozen array"))
    }
    fn delete(&mut self, _key: u64) -> Result<Option<u64>> {
        Err(IndexError::Unsupported("delete on frozen array"))
    }
    fn len(&self) -> usize {
        self.0.len()
    }
    fn stats(&self) -> IndexStats {
        self.0.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{check_point_lookups, check_ranges, test_pairs};

    #[test]
    fn conformance() {
        let pairs = test_pairs(1000);
        let idx = SortedArray::bulk_load(&pairs).unwrap();
        assert_eq!(idx.len(), pairs.len());
        check_point_lookups(&idx, &pairs);
        check_ranges(&idx, &pairs);
    }

    #[test]
    fn bulk_load_rejects_unsorted() {
        assert_eq!(
            SortedArray::bulk_load(&[(2, 0), (1, 0)]).unwrap_err(),
            IndexError::UnsortedInput
        );
        assert_eq!(
            SortedArray::bulk_load(&[(1, 0), (1, 0)]).unwrap_err(),
            IndexError::UnsortedInput
        );
    }

    #[test]
    fn insert_and_overwrite() {
        let mut idx = SortedArray::new();
        assert_eq!(idx.insert(5, 50).unwrap(), None);
        assert_eq!(idx.insert(3, 30).unwrap(), None);
        assert_eq!(idx.insert(5, 55).unwrap(), Some(50));
        assert_eq!(idx.get(5), Some(55));
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.keys(), &[3, 5]);
    }

    #[test]
    fn delete() {
        let mut idx = SortedArray::bulk_load(&[(1, 10), (2, 20)]).unwrap();
        assert_eq!(idx.delete(1).unwrap(), Some(10));
        assert_eq!(idx.delete(1).unwrap(), None);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.get(2), Some(20));
    }

    #[test]
    fn empty_behaviour() {
        let idx = SortedArray::new();
        assert!(idx.is_empty());
        assert_eq!(idx.get(1), None);
        assert!(idx.range(0, 10).unwrap().is_empty());
    }

    #[test]
    fn frozen_rejects_mutation() {
        let mut idx = FrozenArray::bulk_load(&[(1, 10)]).unwrap();
        assert!(matches!(idx.insert(2, 20), Err(IndexError::Unsupported(_))));
        assert!(matches!(idx.delete(1), Err(IndexError::Unsupported(_))));
        assert_eq!(idx.get(1), Some(10));
    }
}
