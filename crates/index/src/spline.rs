//! RadixSpline: a spline-based learned index with a radix lookup table.
//!
//! Following Kipf et al. (one of the SOSD baselines \[34]), the index keeps a
//! sequence of *spline points* over the key→position CDF such that linear
//! interpolation between consecutive points errs by at most `max_error`
//! positions, plus a radix table over the top `radix_bits` of the key that
//! maps a key prefix to the range of candidate spline points. Lookups are:
//! radix hop → binary search among few spline points → interpolate →
//! bounded last-mile search.

use crate::{check_sorted, BulkLoad, Index, IndexError, IndexStats, Result};

/// Default maximum interpolation error in positions.
pub const DEFAULT_MAX_ERROR: usize = 32;

/// Default number of radix bits.
pub const DEFAULT_RADIX_BITS: u32 = 18;

/// A spline point: a key and its position in the data array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SplinePoint {
    key: u64,
    pos: usize,
}

/// Radix-accelerated spline index.
#[derive(Debug, Clone)]
pub struct RadixSpline {
    keys: Vec<u64>,
    values: Vec<u64>,
    spline: Vec<SplinePoint>,
    /// `radix[prefix]` = index of the first spline point whose key has a
    /// prefix `>= prefix`. Length `2^radix_bits + 1`.
    radix: Vec<u32>,
    radix_bits: u32,
    /// Bits to shift a key right to obtain its prefix.
    shift: u32,
    max_error: usize,
    build_work: u64,
}

impl RadixSpline {
    /// Builds a radix spline with explicit parameters.
    pub fn build(pairs: &[(u64, u64)], max_error: usize, radix_bits: u32) -> Result<Self> {
        if max_error == 0 || radix_bits == 0 || radix_bits > 28 {
            return Err(IndexError::Unsupported(
                "max_error must be > 0 and radix_bits in 1..=28",
            ));
        }
        check_sorted(pairs)?;
        let keys: Vec<u64> = pairs.iter().map(|p| p.0).collect();
        let values: Vec<u64> = pairs.iter().map(|p| p.1).collect();
        let mut work = 0u64;

        // Greedy spline construction with an error corridor, one pass.
        let mut spline: Vec<SplinePoint> = Vec::new();
        if !keys.is_empty() {
            spline.push(SplinePoint {
                key: keys[0],
                pos: 0,
            });
            if keys.len() > 1 {
                let eps = max_error as f64;
                let mut base = spline[0];
                // Slope corridor from the base point.
                let mut lo_slope = f64::NEG_INFINITY;
                let mut hi_slope = f64::INFINITY;
                let mut prev = base;
                for (i, &k) in keys.iter().enumerate().skip(1) {
                    work += 1;
                    let dx = k as f64 - base.key as f64;
                    let dy = i as f64 - base.pos as f64;
                    if dx <= 0.0 {
                        // Shouldn't happen with sorted unique keys.
                        continue;
                    }
                    let new_lo = (dy - eps) / dx;
                    let new_hi = (dy + eps) / dx;
                    let cand_lo = lo_slope.max(new_lo);
                    let cand_hi = hi_slope.min(new_hi);
                    if cand_lo > cand_hi {
                        // Corridor collapsed: finalize a spline point at the
                        // previous key and restart the corridor from it.
                        spline.push(SplinePoint {
                            key: prev.key,
                            pos: prev.pos,
                        });
                        base = SplinePoint {
                            key: prev.key,
                            pos: prev.pos,
                        };
                        let dx = k as f64 - base.key as f64;
                        let dy = i as f64 - base.pos as f64;
                        lo_slope = (dy - eps) / dx;
                        hi_slope = (dy + eps) / dx;
                    } else {
                        lo_slope = cand_lo;
                        hi_slope = cand_hi;
                    }
                    prev = SplinePoint { key: k, pos: i };
                }
                // Terminal point.
                let last = SplinePoint {
                    key: keys[keys.len() - 1],
                    pos: keys.len() - 1,
                };
                if spline.last() != Some(&last) {
                    spline.push(last);
                }
            }
        }

        // Radix table over key prefixes.
        let shift = 64 - radix_bits;
        let table_size = (1usize << radix_bits) + 1;
        let mut radix = vec![u32::MAX; table_size];
        for (i, sp) in spline.iter().enumerate() {
            let prefix = (sp.key >> shift) as usize;
            if radix[prefix] == u32::MAX {
                radix[prefix] = i as u32;
            }
        }
        // Back-fill: entry p = first spline index with prefix >= p.
        let mut next = spline.len() as u32;
        for slot in radix.iter_mut().rev() {
            if *slot == u32::MAX {
                *slot = next;
            } else {
                next = *slot;
            }
        }
        work += table_size as u64 / 8;

        Ok(RadixSpline {
            keys,
            values,
            spline,
            radix,
            radix_bits,
            shift,
            max_error,
            build_work: work.max(1),
        })
    }

    /// Number of spline points.
    pub fn spline_points(&self) -> usize {
        self.spline.len()
    }

    /// The error bound used at construction.
    pub fn max_error(&self) -> usize {
        self.max_error
    }

    /// The number of radix bits used by the prefix table.
    pub fn radix_bits(&self) -> u32 {
        self.radix_bits
    }

    /// Position of the first key `>= key`.
    pub fn lower_bound(&self, key: u64) -> usize {
        let n = self.keys.len();
        if n == 0 {
            return 0;
        }
        if key <= self.keys[0] {
            return 0;
        }
        if key > self.keys[n - 1] {
            return n;
        }
        let (lo, hi) = {
            let span = self.knot_span(key);
            let (lo, hi) = self.raw_window(span, key);
            self.fixup_window(lo, hi, key)
        };
        lo + self.keys[lo..hi].partition_point(|&k| k < key)
    }

    /// Radix hop: the `[lo, hi)` span of spline points whose segment
    /// brackets `key`. `begin` points at the first spline point with
    /// `key`'s prefix, whose key may exceed `key`, so the span starts one
    /// left of it.
    ///
    /// Requires `keys[0] < key <= keys[n-1]`.
    #[inline]
    fn knot_span(&self, key: u64) -> (usize, usize) {
        let prefix = (key >> self.shift) as usize;
        let begin = self.radix[prefix] as usize;
        let end = (self.radix[prefix + 1] as usize).min(self.spline.len());
        (begin.saturating_sub(1), (end + 1).min(self.spline.len()))
    }

    /// Finds the bracketing segment within a knot span, interpolates, and
    /// returns the `[lo, hi)` data window the prediction plus error slack
    /// allows — before validation against the key array.
    #[inline]
    fn raw_window(&self, span: (usize, usize), key: u64) -> (usize, usize) {
        let (lo, hi) = span;
        // We need the segment [p_i, p_{i+1}] with p_i.key <= key <= p_{i+1}.key.
        let seg = lo
            + self.spline[lo..hi]
                .partition_point(|sp| sp.key <= key)
                .saturating_sub(1);
        let a = self.spline[seg];
        let b = self.spline[(seg + 1).min(self.spline.len() - 1)];
        let pred = if b.key > a.key {
            let frac = (key - a.key) as f64 / (b.key - a.key) as f64;
            a.pos as f64 + frac * (b.pos - a.pos) as f64
        } else {
            a.pos as f64
        };
        let slack = self.max_error + 2;
        let lo = (pred as usize).saturating_sub(slack);
        let hi = (pred as usize + slack + 1).min(self.keys.len());
        (lo, hi)
    }

    /// Validates a raw window against the key array (two boundary reads),
    /// widening when the spline's bracket does not provably hold.
    #[inline]
    fn fixup_window(&self, mut lo: usize, mut hi: usize, key: u64) -> (usize, usize) {
        let n = self.keys.len();
        if lo > 0 && self.keys[lo - 1] >= key {
            lo = 0;
        }
        if hi < n && self.keys[hi - 1] < key {
            hi = n;
        }
        (lo.min(hi), hi)
    }
}

impl BulkLoad for RadixSpline {
    fn bulk_load(pairs: &[(u64, u64)]) -> Result<Self> {
        RadixSpline::build(pairs, DEFAULT_MAX_ERROR, DEFAULT_RADIX_BITS)
    }
}

impl Index for RadixSpline {
    fn name(&self) -> &'static str {
        "radix-spline"
    }

    fn get(&self, key: u64) -> Option<u64> {
        let pos = self.lower_bound(key);
        if pos < self.keys.len() && self.keys[pos] == key {
            Some(self.values[pos])
        } else {
            None
        }
    }

    fn range(&self, start: u64, limit: usize) -> Result<Vec<(u64, u64)>> {
        let from = self.lower_bound(start);
        let to = (from + limit).min(self.keys.len());
        Ok(self.keys[from..to]
            .iter()
            .copied()
            .zip(self.values[from..to].iter().copied())
            .collect())
    }

    fn insert(&mut self, _key: u64, _value: u64) -> Result<Option<u64>> {
        Err(IndexError::Unsupported(
            "RadixSpline is read-only; wrap in DeltaIndex for updates",
        ))
    }

    fn delete(&mut self, _key: u64) -> Result<Option<u64>> {
        Err(IndexError::Unsupported(
            "RadixSpline is read-only; wrap in DeltaIndex for updates",
        ))
    }

    fn len(&self) -> usize {
        self.keys.len()
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            size_bytes: self.keys.len() * 16 + self.spline.len() * 16 + self.radix.len() * 4,
            build_work: self.build_work,
            model_count: self.spline.len().saturating_sub(1),
        }
    }

    fn probe_cost(&self, key: u64) -> u64 {
        if self.keys.is_empty() {
            return 1;
        }
        // Radix hop + binary search among this prefix's spline points +
        // error-window search.
        let prefix = ((key >> self.shift) as usize).min(self.radix.len() - 2);
        let candidates = (self.radix[prefix + 1].saturating_sub(self.radix[prefix])) as u64;
        1 + crate::bsearch_cost(candidates) + crate::bsearch_cost(self.max_error as u64)
    }

    /// Pipelined batch probe. A single spline lookup chains four
    /// dependent memory regions — radix table, knot span, data window,
    /// value — and each one's address depends on the previous read, so a
    /// lone [`Index::get`] serializes its misses. Across a batch the
    /// probes are independent: each pass issues the whole group's loads
    /// for one stage (prefetch), then the next pass consumes them while
    /// the following stage's lines are in flight, finishing with the
    /// lockstep branchless last mile of
    /// [`crate::search::lower_bound_group`].
    fn get_many(&self, keys: &[u64], out: &mut Vec<Option<u64>>) {
        use crate::search::{lower_bound_group, GROUP};
        out.reserve(keys.len());
        let n = self.keys.len();
        if n == 0 {
            out.extend(keys.iter().map(|_| None));
            return;
        }
        let mut spans = [(0usize, 0usize); GROUP];
        let mut windows = [(0usize, 0usize); GROUP];
        let mut pos = [0usize; GROUP];
        for chunk in keys.chunks(GROUP) {
            let g = chunk.len();
            // Pass 1: the radix entries scatter over a megabyte-scale
            // table — issue every lane's load before any is consumed.
            for &key in chunk {
                crate::prefetch_read(&self.radix[(key >> self.shift) as usize]);
            }
            // Pass 2: radix hop; start each knot span's load. Keys
            // outside the indexed range resolve immediately to an empty
            // window at their final position (matching `lower_bound`'s
            // early outs).
            for (s, &key) in spans[..g].iter_mut().zip(chunk) {
                *s = if key <= self.keys[0] || key > self.keys[n - 1] {
                    (usize::MAX, usize::MAX)
                } else {
                    let span = self.knot_span(key);
                    crate::prefetch_read(&self.spline[span.0]);
                    span
                };
            }
            // Pass 3: segment search + interpolation → raw data window;
            // start the boundary loads the validation pass reads.
            for i in 0..g {
                windows[i] = if spans[i].0 == usize::MAX {
                    let p = if chunk[i] <= self.keys[0] { 0 } else { n };
                    (p, p)
                } else {
                    let (lo, hi) = self.raw_window(spans[i], chunk[i]);
                    if lo > 0 {
                        crate::prefetch_read(&self.keys[lo - 1]);
                    }
                    if hi > 0 && hi < n {
                        crate::prefetch_read(&self.keys[hi - 1]);
                    }
                    (lo, hi)
                };
            }
            // Pass 4: validate on in-flight lines. Raw windows are never
            // empty, so an empty window is exactly a resolved early-out.
            for (w, &key) in windows[..g].iter_mut().zip(chunk) {
                if w.0 != w.1 {
                    *w = self.fixup_window(w.0, w.1, key);
                }
            }
            lower_bound_group(&self.keys, chunk, &windows[..g], &mut pos[..g]);
            // The values array is its own allocation — overlap the hits'
            // value misses before reading any of them.
            for &p in &pos[..g] {
                if p < n {
                    crate::prefetch_read(&self.values[p]);
                }
            }
            for (&p, &key) in pos[..g].iter().zip(chunk) {
                out.push(if p < n && self.keys[p] == key {
                    Some(self.values[p])
                } else {
                    None
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{check_point_lookups, check_ranges, test_pairs};

    #[test]
    fn conformance_various_sizes() {
        for n in [1, 2, 10, 1000, 20_000] {
            let pairs = test_pairs(n);
            let idx = RadixSpline::bulk_load(&pairs).unwrap();
            assert_eq!(idx.len(), pairs.len(), "n = {n}");
            check_point_lookups(&idx, &pairs);
            check_ranges(&idx, &pairs);
        }
    }

    #[test]
    fn empty_index() {
        let idx = RadixSpline::bulk_load(&[]).unwrap();
        assert_eq!(idx.get(1), None);
        assert_eq!(idx.lower_bound(0), 0);
    }

    #[test]
    fn interpolation_error_bounded_on_linear_data() {
        let pairs: Vec<(u64, u64)> = (0..10_000u64).map(|i| (i * 7, i)).collect();
        let idx = RadixSpline::build(&pairs, 8, 16).unwrap();
        // Linear data needs almost no spline points.
        assert!(idx.spline_points() < 10, "points = {}", idx.spline_points());
        check_point_lookups(&idx, &pairs[..500]);
    }

    #[test]
    fn error_knob_trades_points() {
        let pairs: Vec<(u64, u64)> = (0..50_000u64).map(|i| (i * i / 5, i)).collect();
        let mut dedup = pairs;
        dedup.dedup_by_key(|p| p.0);
        let tight = RadixSpline::build(&dedup, 4, 16).unwrap();
        let loose = RadixSpline::build(&dedup, 128, 16).unwrap();
        assert!(
            tight.spline_points() > loose.spline_points(),
            "tight {} loose {}",
            tight.spline_points(),
            loose.spline_points()
        );
        check_point_lookups(&tight, &dedup[..500]);
        check_point_lookups(&loose, &dedup[..500]);
    }

    #[test]
    fn clustered_keys_correct() {
        // Keys concentrated in two far-apart clusters stress the radix table.
        let mut pairs: Vec<(u64, u64)> = (0..1000u64).map(|i| (i, i)).collect();
        pairs.extend((0..1000u64).map(|i| (u64::MAX / 2 + i * 3, i)));
        let idx = RadixSpline::bulk_load(&pairs).unwrap();
        check_point_lookups(&idx, &pairs);
        check_ranges(&idx, &pairs);
    }

    #[test]
    fn high_bits_keys() {
        let pairs: Vec<(u64, u64)> = (0..1000u64)
            .map(|i| (u64::MAX - 10_000 + i * 10, i))
            .collect();
        let idx = RadixSpline::bulk_load(&pairs).unwrap();
        check_point_lookups(&idx, &pairs);
    }

    #[test]
    fn lower_bound_semantics() {
        let pairs: Vec<(u64, u64)> = vec![(10, 1), (20, 2), (30, 3)];
        let idx = RadixSpline::bulk_load(&pairs).unwrap();
        assert_eq!(idx.lower_bound(0), 0);
        assert_eq!(idx.lower_bound(10), 0);
        assert_eq!(idx.lower_bound(19), 1);
        assert_eq!(idx.lower_bound(30), 2);
        assert_eq!(idx.lower_bound(31), 3);
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(RadixSpline::build(&[(1, 1)], 0, 16).is_err());
        assert!(RadixSpline::build(&[(1, 1)], 8, 0).is_err());
        assert!(RadixSpline::build(&[(1, 1)], 8, 40).is_err());
    }

    #[test]
    fn read_only_mutations_rejected() {
        let mut idx = RadixSpline::bulk_load(&[(1, 10)]).unwrap();
        assert!(matches!(idx.insert(2, 20), Err(IndexError::Unsupported(_))));
        assert!(matches!(idx.delete(1), Err(IndexError::Unsupported(_))));
    }
}
