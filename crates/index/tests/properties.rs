//! Property tests: every index implementation must agree with a reference
//! `BTreeMap` model, and learned-model invariants must hold for arbitrary
//! key sets.

use lsbench_index::alex::AlexIndex;
use lsbench_index::btree::BPlusTree;
use lsbench_index::delta::DeltaIndex;
use lsbench_index::hash::HashIndex;
use lsbench_index::model::{pla_segments, LinearModel};
use lsbench_index::pgm::PgmIndex;
use lsbench_index::rmi::Rmi;
use lsbench_index::sorted_array::SortedArray;
use lsbench_index::spline::RadixSpline;
use lsbench_index::{BulkLoad, Index};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Sorted unique pairs from an arbitrary key set.
fn arb_pairs() -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::btree_set(any::<u64>(), 0..400)
        .prop_map(|set| set.into_iter().map(|k| (k, k.wrapping_mul(31))).collect())
}

fn check_against_model<I: Index>(idx: &I, model: &BTreeMap<u64, u64>, probes: &[u64]) {
    assert_eq!(idx.len(), model.len(), "{} len", idx.name());
    for &k in probes {
        assert_eq!(
            idx.get(k),
            model.get(&k).copied(),
            "{} get({k})",
            idx.name()
        );
    }
    for (&k, &v) in model.iter().take(50) {
        assert_eq!(idx.get(k), Some(v), "{} get(existing {k})", idx.name());
    }
}

fn check_range_against_model<I: Index>(idx: &I, model: &BTreeMap<u64, u64>, starts: &[u64]) {
    for &s in starts {
        let expected: Vec<(u64, u64)> = model.range(s..).take(20).map(|(&k, &v)| (k, v)).collect();
        assert_eq!(
            idx.range(s, 20).unwrap(),
            expected,
            "{} range({s})",
            idx.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn read_only_indexes_agree(pairs in arb_pairs(), probes in prop::collection::vec(any::<u64>(), 20)) {
        let model: BTreeMap<u64, u64> = pairs.iter().copied().collect();
        let starts: Vec<u64> = probes.iter().take(5).copied().collect();

        let rmi = Rmi::bulk_load(&pairs).unwrap();
        check_against_model(&rmi, &model, &probes);
        check_range_against_model(&rmi, &model, &starts);

        let pgm = PgmIndex::bulk_load(&pairs).unwrap();
        check_against_model(&pgm, &model, &probes);
        check_range_against_model(&pgm, &model, &starts);

        let rs = RadixSpline::bulk_load(&pairs).unwrap();
        check_against_model(&rs, &model, &probes);
        check_range_against_model(&rs, &model, &starts);

        let bt = BPlusTree::bulk_load(&pairs).unwrap();
        check_against_model(&bt, &model, &probes);
        check_range_against_model(&bt, &model, &starts);

        let sa = SortedArray::bulk_load(&pairs).unwrap();
        check_against_model(&sa, &model, &probes);
        check_range_against_model(&sa, &model, &starts);

        let al = AlexIndex::bulk_load(&pairs).unwrap();
        check_against_model(&al, &model, &probes);
        check_range_against_model(&al, &model, &starts);

        let h = HashIndex::bulk_load(&pairs).unwrap();
        check_against_model(&h, &model, &probes);
    }

    #[test]
    fn mutable_indexes_follow_op_sequence(
        ops in prop::collection::vec((any::<u8>(), 0u64..2000, any::<u64>()), 1..600),
    ) {
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut bt = BPlusTree::with_fanout(6);
        let mut al = AlexIndex::new();
        let mut sa = SortedArray::new();
        let mut h = HashIndex::new();
        for &(op, key, value) in &ops {
            match op % 3 {
                0 => {
                    let expect = model.insert(key, value);
                    prop_assert_eq!(bt.insert(key, value).unwrap(), expect, "btree insert");
                    prop_assert_eq!(al.insert(key, value).unwrap(), expect, "alex insert");
                    prop_assert_eq!(sa.insert(key, value).unwrap(), expect, "sorted insert");
                    prop_assert_eq!(h.insert(key, value).unwrap(), expect, "hash insert");
                }
                1 => {
                    let expect = model.remove(&key);
                    prop_assert_eq!(bt.delete(key).unwrap(), expect, "btree delete");
                    prop_assert_eq!(al.delete(key).unwrap(), expect, "alex delete");
                    prop_assert_eq!(sa.delete(key).unwrap(), expect, "sorted delete");
                    prop_assert_eq!(h.delete(key).unwrap(), expect, "hash delete");
                }
                _ => {
                    let expect = model.get(&key).copied();
                    prop_assert_eq!(bt.get(key), expect, "btree get");
                    prop_assert_eq!(al.get(key), expect, "alex get");
                    prop_assert_eq!(sa.get(key), expect, "sorted get");
                    prop_assert_eq!(h.get(key), expect, "hash get");
                }
            }
        }
        prop_assert_eq!(bt.len(), model.len());
        prop_assert_eq!(al.len(), model.len());
        // Full scans agree.
        let all: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(bt.range(0, usize::MAX >> 1).unwrap(), all.clone());
        prop_assert_eq!(al.range(0, usize::MAX >> 1).unwrap(), all);
    }

    #[test]
    fn delta_index_follows_op_sequence(
        base in arb_pairs(),
        ops in prop::collection::vec((any::<u8>(), 0u64..3000, any::<u64>()), 0..200),
        retrain_at in 0usize..200,
    ) {
        let mut model: BTreeMap<u64, u64> = base.iter().copied().collect();
        let mut idx: DeltaIndex<Rmi> = DeltaIndex::build(&base).unwrap();
        for (i, &(op, key, value)) in ops.iter().enumerate() {
            if i == retrain_at {
                idx.retrain().unwrap();
            }
            match op % 3 {
                0 => {
                    prop_assert_eq!(idx.insert(key, value).unwrap(), model.insert(key, value));
                }
                1 => {
                    prop_assert_eq!(idx.delete(key).unwrap(), model.remove(&key));
                }
                _ => {
                    prop_assert_eq!(idx.get(key), model.get(&key).copied());
                }
            }
        }
        prop_assert_eq!(idx.len(), model.len());
        idx.retrain().unwrap();
        prop_assert_eq!(idx.len(), model.len());
        for (&k, &v) in model.iter().take(100) {
            prop_assert_eq!(idx.get(k), Some(v));
        }
    }

    #[test]
    fn pla_epsilon_invariant(keys in prop::collection::btree_set(any::<u64>(), 1..500), eps in 0.5f64..128.0) {
        let keys: Vec<u64> = keys.into_iter().collect();
        let segs = pla_segments(&keys, eps);
        let covered: usize = segs.iter().map(|s| s.len).sum();
        prop_assert_eq!(covered, keys.len());
        for seg in &segs {
            let covered = keys.iter().enumerate().skip(seg.start_pos).take(seg.len);
            for (i, &key) in covered {
                let err = (seg.model.predict(key) - i as f64).abs();
                prop_assert!(err <= eps + 1e-6, "err {err} > eps {eps}");
            }
        }
    }

    #[test]
    fn linear_fit_bounded_by_worst_case(keys in prop::collection::btree_set(0u64..1_000_000_000, 2..300)) {
        let keys: Vec<u64> = keys.into_iter().collect();
        let m = LinearModel::fit(&keys);
        // A least-squares fit can never err by more than n positions.
        prop_assert!(m.max_error(&keys) <= keys.len() as f64);
        // Predictions are monotone for sorted keys (slope >= 0 on CDFs).
        prop_assert!(m.slope >= 0.0, "negative slope {}", m.slope);
    }

    #[test]
    fn lower_bound_agrees_across_learned_indexes(pairs in arb_pairs(), probes in prop::collection::vec(any::<u64>(), 30)) {
        prop_assume!(!pairs.is_empty());
        let keys: Vec<u64> = pairs.iter().map(|p| p.0).collect();
        let rmi = Rmi::bulk_load(&pairs).unwrap();
        let pgm = PgmIndex::bulk_load(&pairs).unwrap();
        let rs = RadixSpline::bulk_load(&pairs).unwrap();
        for &p in &probes {
            let expected = keys.partition_point(|&k| k < p);
            prop_assert_eq!(rmi.lower_bound(p), expected, "rmi lb({})", p);
            prop_assert_eq!(pgm.lower_bound(p), expected, "pgm lb({})", p);
            prop_assert_eq!(rs.lower_bound(p), expected, "spline lb({})", p);
        }
    }
}
