//! Bao-style plan steering with an ε-greedy bandit.
//!
//! Bao \[14] "learn\[s] to steer query optimizers": instead of replacing the
//! optimizer it chooses among *hint sets* (optimizer configurations) per
//! query, learning from observed runtimes. [`PlanSteerer`] implements the
//! same loop with an ε-greedy contextual bandit keyed by query shape: the
//! context is the query's structural hash, the arms are hint sets, the
//! reward is (negative) execution cost.
//!
//! The benchmark drives this component through workload shifts: when a new
//! query shape family arrives, the steerer must re-explore — the
//! exploration cost shows up as the adaptability dip of Fig. 1b/1c.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// EMA smoothing of observed costs.
const COST_ALPHA: f64 = 0.3;

/// Per-(shape, arm) cost statistics.
#[derive(Debug, Clone, Copy)]
struct ArmStats {
    mean_cost: f64,
    pulls: u64,
}

/// ε-greedy plan steerer over a fixed set of hint arms.
#[derive(Debug)]
pub struct PlanSteerer {
    arm_names: Vec<String>,
    epsilon: f64,
    rng: StdRng,
    stats: HashMap<(u64, usize), ArmStats>,
    total_pulls: u64,
    exploration_pulls: u64,
}

impl PlanSteerer {
    /// Creates a steerer over `arm_names` with exploration rate `epsilon`.
    ///
    /// # Panics
    /// Panics if `arm_names` is empty or `epsilon` outside `[0, 1]`.
    pub fn new(arm_names: Vec<String>, epsilon: f64, seed: u64) -> Self {
        assert!(!arm_names.is_empty(), "at least one arm required");
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0, 1]");
        PlanSteerer {
            arm_names,
            epsilon,
            rng: StdRng::seed_from_u64(seed),
            stats: HashMap::new(),
            total_pulls: 0,
            exploration_pulls: 0,
        }
    }

    /// Number of arms.
    pub fn arm_count(&self) -> usize {
        self.arm_names.len()
    }

    /// Arm names.
    pub fn arm_names(&self) -> &[String] {
        &self.arm_names
    }

    /// Chooses an arm for a query shape.
    ///
    /// Unexplored arms for a known shape are tried first (optimistic
    /// initialization); otherwise ε-greedy over observed mean costs.
    pub fn choose(&mut self, shape: u64) -> usize {
        self.total_pulls += 1;
        // Prefer any arm never tried for this shape.
        for arm in 0..self.arm_names.len() {
            if !self.stats.contains_key(&(shape, arm)) {
                self.exploration_pulls += 1;
                return arm;
            }
        }
        if self.rng.gen::<f64>() < self.epsilon {
            self.exploration_pulls += 1;
            return self.rng.gen_range(0..self.arm_names.len());
        }
        (0..self.arm_names.len())
            .min_by(|&a, &b| {
                let ca = self.stats[&(shape, a)].mean_cost;
                let cb = self.stats[&(shape, b)].mean_cost;
                ca.partial_cmp(&cb).expect("costs are finite")
            })
            .expect("non-empty arms")
    }

    /// Reports the observed execution cost of `arm` on `shape`.
    pub fn observe(&mut self, shape: u64, arm: usize, cost: f64) {
        assert!(arm < self.arm_names.len(), "arm out of range");
        let entry = self.stats.entry((shape, arm)).or_insert(ArmStats {
            mean_cost: cost,
            pulls: 0,
        });
        entry.mean_cost += COST_ALPHA * (cost - entry.mean_cost);
        entry.pulls += 1;
    }

    /// The currently-best arm for `shape`, if any observation exists.
    pub fn best_arm(&self, shape: u64) -> Option<usize> {
        (0..self.arm_names.len())
            .filter(|&a| self.stats.contains_key(&(shape, a)))
            .min_by(|&a, &b| {
                self.stats[&(shape, a)]
                    .mean_cost
                    .partial_cmp(&self.stats[&(shape, b)].mean_cost)
                    .expect("costs are finite")
            })
    }

    /// Fraction of choices that were exploratory so far.
    pub fn exploration_fraction(&self) -> f64 {
        if self.total_pulls == 0 {
            0.0
        } else {
            self.exploration_pulls as f64 / self.total_pulls as f64
        }
    }

    /// Number of distinct query shapes seen.
    pub fn shapes_seen(&self) -> usize {
        let mut shapes: Vec<u64> = self.stats.keys().map(|&(s, _)| s).collect();
        shapes.sort_unstable();
        shapes.dedup();
        shapes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn steerer(eps: f64) -> PlanSteerer {
        PlanSteerer::new(
            vec!["hash".into(), "nested-loop".into(), "merge".into()],
            eps,
            7,
        )
    }

    /// Simulated environment: arm costs differ per shape.
    fn env_cost(shape: u64, arm: usize) -> f64 {
        match (shape, arm) {
            (1, 0) => 10.0,
            (1, 1) => 100.0,
            (1, 2) => 50.0,
            (2, 0) => 80.0,
            (2, 1) => 5.0,
            (2, 2) => 40.0,
            _ => 60.0,
        }
    }

    #[test]
    fn explores_each_arm_once_first() {
        let mut s = steerer(0.0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..3 {
            let arm = s.choose(1);
            assert!(seen.insert(arm), "arm {arm} repeated during bootstrap");
            s.observe(1, arm, env_cost(1, arm));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn converges_to_best_arm_per_shape() {
        let mut s = steerer(0.1);
        for _ in 0..300 {
            for shape in [1u64, 2] {
                let arm = s.choose(shape);
                s.observe(shape, arm, env_cost(shape, arm));
            }
        }
        assert_eq!(s.best_arm(1), Some(0));
        assert_eq!(s.best_arm(2), Some(1));
        // With eps = 0.1 the greedy choice dominates.
        let mut greedy_hits = 0;
        for _ in 0..100 {
            if s.choose(1) == 0 {
                greedy_hits += 1;
            }
        }
        assert!(greedy_hits > 80, "greedy_hits = {greedy_hits}");
        assert_eq!(s.shapes_seen(), 2);
    }

    #[test]
    fn new_shape_triggers_exploration() {
        let mut s = steerer(0.05);
        for _ in 0..100 {
            let arm = s.choose(1);
            s.observe(1, arm, env_cost(1, arm));
        }
        let before = s.exploration_fraction();
        // A brand-new shape forces three bootstrap pulls.
        for _ in 0..3 {
            let arm = s.choose(99);
            s.observe(99, arm, env_cost(99, arm));
        }
        assert!(s.exploration_fraction() > before * 0.9);
        assert_eq!(s.shapes_seen(), 2);
    }

    #[test]
    fn adapts_when_environment_shifts() {
        let mut s = steerer(0.15);
        // Phase 1: arm 0 is best.
        for _ in 0..200 {
            let arm = s.choose(1);
            s.observe(1, arm, env_cost(1, arm));
        }
        assert_eq!(s.best_arm(1), Some(0));
        // Phase 2: arm 0 becomes terrible; arm 2 best. EMA forgets.
        for _ in 0..400 {
            let arm = s.choose(1);
            let cost = match arm {
                0 => 500.0,
                1 => 100.0,
                _ => 20.0,
            };
            s.observe(1, arm, cost);
        }
        assert_eq!(s.best_arm(1), Some(2));
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed: u64| {
            let mut s = PlanSteerer::new(vec!["a".into(), "b".into()], 0.3, seed);
            let mut choices = Vec::new();
            for i in 0..50 {
                let arm = s.choose(i % 3);
                choices.push(arm);
                s.observe(i % 3, arm, (arm + 1) as f64 * 10.0);
            }
            choices
        };
        assert_eq!(run(1), run(1));
    }

    #[test]
    #[should_panic(expected = "at least one arm")]
    fn rejects_empty_arms() {
        let _ = PlanSteerer::new(vec![], 0.1, 1);
    }

    #[test]
    #[should_panic(expected = "arm out of range")]
    fn rejects_bad_observation() {
        let mut s = steerer(0.1);
        s.observe(1, 99, 1.0);
    }
}
