//! Cardinality estimation: histogram baseline vs. feedback-driven learned.
//!
//! The paper's §II lists learned cardinality estimation \[25]–\[29] as a core
//! learned component, and §IV highlights the cost of "collecting the real
//! cardinalities to build a regression model". We implement both sides of
//! the comparison:
//!
//! * [`HistogramEstimator`] — the traditional baseline: per-column
//!   equi-depth histograms combined under the independence assumption
//!   (filters) and the uniform-containment assumption (joins).
//! * [`LearnedEstimator`] — a query-driven model: it memorizes observed
//!   true cardinalities per query *shape* (structural hash) with an EMA,
//!   falling back to the histogram estimate for unseen shapes. Feeding it
//!   labels costs work, which the SUT layer charges as training cost.

use crate::plan::{CmpOp, QueryNode};
use crate::table::Catalog;
use crate::Result;
use lsbench_stats::histogram::EquiDepthHistogram;
use std::collections::HashMap;

/// Estimates output cardinalities of query subtrees.
pub trait CardinalityEstimator {
    /// Estimated output rows of `node`.
    fn estimate(&self, node: &QueryNode) -> f64;

    /// Feeds one observed (subtree, true cardinality) label. Default: ignore.
    fn observe(&mut self, _subtree_hash: u64, _true_card: u64) {}

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// Number of buckets per column histogram.
const HIST_BUCKETS: usize = 64;

/// Traditional estimator: equi-depth histograms + independence assumption.
#[derive(Debug, Clone)]
pub struct HistogramEstimator {
    /// Per (table, column) histograms.
    histograms: HashMap<(String, usize), EquiDepthHistogram>,
    /// Per (table, column) distinct-value counts (for join estimates).
    distinct: HashMap<(String, usize), usize>,
    /// Base table row counts.
    row_counts: HashMap<String, usize>,
    /// Work spent building statistics (rows scanned).
    pub build_work: u64,
}

impl HistogramEstimator {
    /// Builds statistics for every column of every table in `catalog`.
    pub fn build(catalog: &Catalog) -> Result<Self> {
        let mut histograms = HashMap::new();
        let mut distinct = HashMap::new();
        let mut row_counts = HashMap::new();
        let mut work = 0u64;
        let mut names: Vec<String> = catalog.table_names().map(|s| s.to_string()).collect();
        names.sort();
        for name in names {
            let t = catalog.get(&name)?;
            row_counts.insert(name.clone(), t.row_count());
            for c in 0..t.column_count() {
                let col = t.column(c)?;
                work += col.len() as u64;
                if col.is_empty() {
                    continue;
                }
                let data: Vec<f64> = col.iter().map(|&v| v as f64).collect();
                if let Ok(h) = EquiDepthHistogram::from_data(&data, HIST_BUCKETS) {
                    histograms.insert((name.clone(), c), h);
                }
                let mut unique: Vec<i64> = col.to_vec();
                unique.sort_unstable();
                unique.dedup();
                distinct.insert((name.clone(), c), unique.len());
            }
        }
        Ok(HistogramEstimator {
            histograms,
            distinct,
            row_counts,
            build_work: work,
        })
    }

    /// Selectivity of `op value` on (table, column); 0.5 when unknown.
    fn selectivity(&self, table: &str, column: usize, op: CmpOp, value: i64) -> f64 {
        let key = (table.to_string(), column);
        let Some(h) = self.histograms.get(&key) else {
            return 0.5;
        };
        let v = value as f64;
        let sel = match op {
            CmpOp::Lt => h.estimate_cdf(v),
            CmpOp::Le => h.estimate_cdf(v + 1.0),
            CmpOp::Gt => 1.0 - h.estimate_cdf(v + 1.0),
            CmpOp::Ge => 1.0 - h.estimate_cdf(v),
            CmpOp::Eq => {
                let d = self.distinct.get(&key).copied().unwrap_or(1).max(1);
                1.0 / d as f64
            }
        };
        sel.clamp(0.0, 1.0)
    }

    /// Estimates `node`, tracking which base table each column position in
    /// the node's output schema belongs to. Returns `(rows, column → (table,
    /// base column))`.
    fn estimate_with_schema(&self, node: &QueryNode) -> (f64, Vec<(String, usize)>) {
        match node {
            QueryNode::Scan { table } => {
                let rows = self.row_counts.get(table).copied().unwrap_or(0) as f64;
                let cols = self
                    .histograms
                    .keys()
                    .filter(|(t, _)| t == table)
                    .count()
                    .max(self.distinct.keys().filter(|(t, _)| t == table).count());
                let schema = (0..cols).map(|c| (table.clone(), c)).collect();
                (rows, schema)
            }
            QueryNode::Filter { pred, input } => {
                let (rows, schema) = self.estimate_with_schema(input);
                let sel = schema
                    .get(pred.column)
                    .map(|(t, c)| self.selectivity(t, *c, pred.op, pred.value))
                    .unwrap_or(0.5);
                (rows * sel, schema)
            }
            QueryNode::Join {
                left,
                right,
                left_col,
                right_col,
            } => {
                let (lr, ls) = self.estimate_with_schema(left);
                let (rr, rs) = self.estimate_with_schema(right);
                // |L ⋈ R| ≈ |L| · |R| / max(d(L.a), d(R.b))
                let dl = ls
                    .get(*left_col)
                    .and_then(|k| self.distinct.get(k))
                    .copied()
                    .unwrap_or(1)
                    .max(1);
                let dr = rs
                    .get(*right_col)
                    .and_then(|k| self.distinct.get(k))
                    .copied()
                    .unwrap_or(1)
                    .max(1);
                let rows = lr * rr / dl.max(dr) as f64;
                let mut schema = ls;
                schema.extend(rs);
                (rows, schema)
            }
            QueryNode::Count { input } => self.estimate_with_schema(input),
        }
    }
}

impl CardinalityEstimator for HistogramEstimator {
    fn estimate(&self, node: &QueryNode) -> f64 {
        self.estimate_with_schema(node).0
    }

    fn name(&self) -> &'static str {
        "histogram"
    }
}

/// EMA smoothing for observed cardinalities.
const OBS_ALPHA: f64 = 0.5;

/// Learned estimator: memorizes observed cardinalities per query shape.
///
/// This is the simplest member of the query-driven learned-estimator family
/// (cf. \[36]): exact recall on seen shapes, graceful fallback to the
/// histogram baseline on unseen ones. The benchmark's out-of-sample
/// (hold-out) metric exists precisely to expose the gap between those two
/// regimes.
#[derive(Debug)]
pub struct LearnedEstimator {
    fallback: HistogramEstimator,
    observed: HashMap<u64, f64>,
    observations: u64,
}

impl LearnedEstimator {
    /// Creates a learned estimator over a histogram fallback.
    pub fn new(fallback: HistogramEstimator) -> Self {
        LearnedEstimator {
            fallback,
            observed: HashMap::new(),
            observations: 0,
        }
    }

    /// Number of labels observed so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Number of distinct query shapes memorized.
    pub fn shapes_known(&self) -> usize {
        self.observed.len()
    }

    /// Whether this shape has been seen.
    pub fn knows(&self, node: &QueryNode) -> bool {
        self.observed.contains_key(&node.structural_hash())
    }
}

impl CardinalityEstimator for LearnedEstimator {
    fn estimate(&self, node: &QueryNode) -> f64 {
        self.observed
            .get(&node.structural_hash())
            .copied()
            .unwrap_or_else(|| self.fallback.estimate(node))
    }

    fn observe(&mut self, subtree_hash: u64, true_card: u64) {
        self.observations += 1;
        let entry = self
            .observed
            .entry(subtree_hash)
            .or_insert(true_card as f64);
        *entry += OBS_ALPHA * (true_card as f64 - *entry);
    }

    fn name(&self) -> &'static str {
        "learned"
    }
}

/// Q-error between an estimate and the truth: `max(est/true, true/est)`,
/// with zero-handling. The standard accuracy metric for cardinality
/// estimators; 1.0 is perfect.
pub fn q_error(estimate: f64, truth: f64) -> f64 {
    let est = estimate.max(1.0);
    let tru = truth.max(1.0);
    (est / tru).max(tru / est)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::table::Table;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add(Table::generate("facts", 10_000, 3, 42));
        cat.add(Table::generate("dims", 1000, 2, 43));
        cat
    }

    #[test]
    fn scan_estimate_exact() {
        let cat = catalog();
        let est = HistogramEstimator::build(&cat).unwrap();
        assert_eq!(est.estimate(&QueryNode::scan("facts")), 10_000.0);
        assert_eq!(est.estimate(&QueryNode::scan("missing")), 0.0);
    }

    #[test]
    fn filter_estimate_close_on_uniform() {
        let cat = catalog();
        let est = HistogramEstimator::build(&cat).unwrap();
        // Column 2 is uniform 0..1000: selectivity of < 250 is ~25%.
        let q = QueryNode::scan("facts").filter(2, CmpOp::Lt, 250);
        let guess = est.estimate(&q);
        let truth = execute(&q, &cat).unwrap().count as f64;
        assert!(q_error(guess, truth) < 1.3, "guess {guess} truth {truth}");
    }

    #[test]
    fn filter_estimate_close_on_skewed() {
        let cat = catalog();
        let est = HistogramEstimator::build(&cat).unwrap();
        // Column 1 is skewed: equi-depth histograms handle it.
        let q = QueryNode::scan("facts").filter(1, CmpOp::Lt, 100);
        let guess = est.estimate(&q);
        let truth = execute(&q, &cat).unwrap().count as f64;
        assert!(q_error(guess, truth) < 1.5, "guess {guess} truth {truth}");
    }

    #[test]
    fn independence_assumption_compounds_error() {
        // Two filters on correlated columns: independence underestimates.
        let mut cat = Catalog::new();
        // Column 1 == column 2 exactly (perfect correlation).
        let col: Vec<i64> = (0..1000).map(|i| i % 100).collect();
        cat.add(
            Table::new(
                "corr",
                vec!["id".into(), "a".into(), "b".into()],
                vec![(0..1000).collect(), col.clone(), col],
            )
            .unwrap(),
        );
        let est = HistogramEstimator::build(&cat).unwrap();
        let q = QueryNode::scan("corr")
            .filter(1, CmpOp::Lt, 10)
            .filter(2, CmpOp::Lt, 10);
        let truth = execute(&q, &cat).unwrap().count as f64; // 100
        let guess = est.estimate(&q); // ~0.1 * 0.1 * 1000 = 10
        assert!(
            q_error(guess, truth) > 5.0,
            "expected big q-error, got {} (guess {guess} truth {truth})",
            q_error(guess, truth)
        );
    }

    #[test]
    fn learned_estimator_fixes_correlation_after_feedback() {
        let mut cat = Catalog::new();
        let col: Vec<i64> = (0..1000).map(|i| i % 100).collect();
        cat.add(
            Table::new(
                "corr",
                vec!["id".into(), "a".into(), "b".into()],
                vec![(0..1000).collect(), col.clone(), col],
            )
            .unwrap(),
        );
        let hist = HistogramEstimator::build(&cat).unwrap();
        let mut learned = LearnedEstimator::new(hist);
        let q = QueryNode::scan("corr")
            .filter(1, CmpOp::Lt, 10)
            .filter(2, CmpOp::Lt, 10);
        let truth = execute(&q, &cat).unwrap();
        let before = q_error(learned.estimate(&q), truth.count as f64);
        // Feed the observed labels (what a real system collects during
        // execution, per §IV).
        for (&h, &c) in &truth.true_cardinalities {
            learned.observe(h, c);
        }
        let after = q_error(learned.estimate(&q), truth.count as f64);
        assert!(after <= 1.01, "after = {after}");
        assert!(before > after * 5.0, "before {before} after {after}");
        assert!(learned.knows(&q));
        assert!(learned.observations() > 0);
    }

    #[test]
    fn learned_falls_back_when_unseen() {
        let cat = catalog();
        let hist = HistogramEstimator::build(&cat).unwrap();
        let hist_guess = hist.estimate(&QueryNode::scan("facts"));
        let learned = LearnedEstimator::new(hist);
        assert_eq!(learned.estimate(&QueryNode::scan("facts")), hist_guess);
        assert_eq!(learned.shapes_known(), 0);
    }

    #[test]
    fn join_estimate_right_order_of_magnitude() {
        let cat = catalog();
        let est = HistogramEstimator::build(&cat).unwrap();
        // facts.c0 (0..10000) join dims.c0 (0..1000): 1000 matches.
        let q = QueryNode::scan("facts").join(QueryNode::scan("dims"), 0, 0);
        let truth = execute(&q, &cat).unwrap().count as f64;
        let guess = est.estimate(&q);
        assert!(q_error(guess, truth) < 3.0, "guess {guess} truth {truth}");
    }

    #[test]
    fn ema_observation_smoothing() {
        let cat = catalog();
        let mut learned = LearnedEstimator::new(HistogramEstimator::build(&cat).unwrap());
        learned.observe(7, 100);
        learned.observe(7, 200);
        let est = learned.observed[&7];
        assert!(est > 100.0 && est < 200.0, "est = {est}");
    }

    #[test]
    fn q_error_properties() {
        assert_eq!(q_error(10.0, 10.0), 1.0);
        assert_eq!(q_error(100.0, 10.0), 10.0);
        assert_eq!(q_error(10.0, 100.0), 10.0);
        assert_eq!(q_error(0.0, 0.0), 1.0);
    }
}
