//! Query execution with true-cardinality collection and work accounting.
//!
//! The executor is deliberately simple (materializing, single-threaded) but
//! *instrumented*: it reports the true output cardinality of every operator
//! (the ground-truth labels §IV says learned components must collect, at a
//! measurable cost) and a deterministic work counter (rows touched), which
//! the SUT layer converts to simulated latency.

use crate::plan::QueryNode;
use crate::table::Catalog;
use crate::Result;
use std::collections::HashMap;

/// Result of executing a query.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecResult {
    /// Materialized output rows (empty for `Count`, which reports via
    /// [`ExecResult::count`]).
    pub rows: Vec<Vec<i64>>,
    /// Output row count of the root operator (for `Count`, the counted value).
    pub count: u64,
    /// True output cardinality per subtree, keyed by structural hash — the
    /// training labels for learned cardinality estimation.
    pub true_cardinalities: HashMap<u64, u64>,
    /// Deterministic work units: rows processed across all operators.
    pub work: u64,
}

/// Executes `query` against `catalog`.
pub fn execute(query: &QueryNode, catalog: &Catalog) -> Result<ExecResult> {
    let mut cards = HashMap::new();
    let mut work = 0u64;
    let rows = run(query, catalog, &mut cards, &mut work)?;
    let count = match query {
        QueryNode::Count { .. } => {
            // run() returns a single row [count] for Count nodes.
            rows.first().and_then(|r| r.first()).copied().unwrap_or(0) as u64
        }
        _ => rows.len() as u64,
    };
    Ok(ExecResult {
        count,
        true_cardinalities: cards,
        work,
        rows: match query {
            QueryNode::Count { .. } => Vec::new(),
            _ => rows,
        },
    })
}

fn run(
    node: &QueryNode,
    catalog: &Catalog,
    cards: &mut HashMap<u64, u64>,
    work: &mut u64,
) -> Result<Vec<Vec<i64>>> {
    let rows = match node {
        QueryNode::Scan { table } => {
            let t = catalog.get(table)?;
            let n = t.row_count();
            *work += n as u64;
            (0..n).map(|r| t.row(r)).collect()
        }
        QueryNode::Filter { pred, input } => {
            let input_rows = run(input, catalog, cards, work)?;
            *work += input_rows.len() as u64;
            if let Some(first) = input_rows.first() {
                if pred.column >= first.len() {
                    return Err(crate::QueryError::InvalidQuery(format!(
                        "filter column {} out of range (arity {})",
                        pred.column,
                        first.len()
                    )));
                }
            }
            input_rows.into_iter().filter(|r| pred.eval(r)).collect()
        }
        QueryNode::Join {
            left,
            right,
            left_col,
            right_col,
        } => {
            let left_rows = run(left, catalog, cards, work)?;
            let right_rows = run(right, catalog, cards, work)?;
            validate_col(&left_rows, *left_col, "join left")?;
            validate_col(&right_rows, *right_col, "join right")?;
            // Hash join: build on the smaller side.
            let (build, probe, build_col, probe_col, build_is_left) =
                if left_rows.len() <= right_rows.len() {
                    (&left_rows, &right_rows, *left_col, *right_col, true)
                } else {
                    (&right_rows, &left_rows, *right_col, *left_col, false)
                };
            let mut ht: HashMap<i64, Vec<usize>> = HashMap::with_capacity(build.len());
            for (i, row) in build.iter().enumerate() {
                ht.entry(row[build_col]).or_default().push(i);
            }
            *work += build.len() as u64;
            let mut out = Vec::new();
            for probe_row in probe {
                *work += 1;
                if let Some(matches) = ht.get(&probe_row[probe_col]) {
                    for &bi in matches {
                        let build_row = &build[bi];
                        // Output schema: left columns then right columns.
                        let mut joined = Vec::with_capacity(build_row.len() + probe_row.len());
                        if build_is_left {
                            joined.extend_from_slice(build_row);
                            joined.extend_from_slice(probe_row);
                        } else {
                            joined.extend_from_slice(probe_row);
                            joined.extend_from_slice(build_row);
                        }
                        out.push(joined);
                    }
                }
            }
            *work += out.len() as u64;
            out
        }
        QueryNode::Count { input } => {
            let input_rows = run(input, catalog, cards, work)?;
            *work += 1;
            vec![vec![input_rows.len() as i64]]
        }
    };
    let card = match node {
        // Count's "cardinality" is its counted input, more useful as a label.
        QueryNode::Count { .. } => {
            rows.first().and_then(|r| r.first()).copied().unwrap_or(0) as u64
        }
        _ => rows.len() as u64,
    };
    cards.insert(node.structural_hash(), card);
    Ok(rows)
}

fn validate_col(rows: &[Vec<i64>], col: usize, what: &str) -> Result<()> {
    if let Some(first) = rows.first() {
        if col >= first.len() {
            return Err(crate::QueryError::InvalidQuery(format!(
                "{what} column {col} out of range (arity {})",
                first.len()
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::CmpOp;
    use crate::table::Table;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add(
            Table::new(
                "users",
                vec!["id".into(), "age".into()],
                vec![vec![1, 2, 3, 4], vec![20, 30, 40, 50]],
            )
            .unwrap(),
        );
        cat.add(
            Table::new(
                "orders",
                vec!["user_id".into(), "amount".into()],
                vec![vec![1, 1, 2, 9], vec![100, 200, 300, 400]],
            )
            .unwrap(),
        );
        cat
    }

    #[test]
    fn scan_returns_all_rows() {
        let r = execute(&QueryNode::scan("users"), &catalog()).unwrap();
        assert_eq!(r.count, 4);
        assert_eq!(r.rows.len(), 4);
        assert_eq!(r.rows[0], vec![1, 20]);
    }

    #[test]
    fn filter_selects() {
        let q = QueryNode::scan("users").filter(1, CmpOp::Gt, 30);
        let r = execute(&q, &catalog()).unwrap();
        assert_eq!(r.count, 2);
        assert!(r.rows.iter().all(|row| row[1] > 30));
    }

    #[test]
    fn join_matches_pairs() {
        // users join orders on users.id = orders.user_id.
        let q = QueryNode::scan("users").join(QueryNode::scan("orders"), 0, 0);
        let r = execute(&q, &catalog()).unwrap();
        // user 1 matches two orders, user 2 one, users 3/4 none, order 9 none.
        assert_eq!(r.count, 3);
        for row in &r.rows {
            assert_eq!(row.len(), 4);
            assert_eq!(row[0], row[2], "join key mismatch in {row:?}");
        }
    }

    #[test]
    fn join_schema_order_is_left_then_right() {
        let q = QueryNode::scan("orders").join(QueryNode::scan("users"), 0, 0);
        let r = execute(&q, &catalog()).unwrap();
        // orders columns first: [user_id, amount, id, age]
        let row = &r.rows[0];
        assert_eq!(row[0], row[2]);
        assert!(row[1] >= 100, "amount column misplaced: {row:?}");
    }

    #[test]
    fn count_terminal() {
        let q = QueryNode::scan("orders").filter(1, CmpOp::Ge, 200).count();
        let r = execute(&q, &catalog()).unwrap();
        assert_eq!(r.count, 3);
        assert!(r.rows.is_empty());
    }

    #[test]
    fn true_cardinalities_per_subtree() {
        let scan = QueryNode::scan("users");
        let filtered = scan.clone().filter(1, CmpOp::Gt, 30);
        let r = execute(&filtered, &catalog()).unwrap();
        assert_eq!(r.true_cardinalities[&scan.structural_hash()], 4);
        assert_eq!(r.true_cardinalities[&filtered.structural_hash()], 2);
    }

    #[test]
    fn work_accumulates() {
        let scan = execute(&QueryNode::scan("users"), &catalog()).unwrap();
        let join = execute(
            &QueryNode::scan("users").join(QueryNode::scan("orders"), 0, 0),
            &catalog(),
        )
        .unwrap();
        assert!(join.work > scan.work);
    }

    #[test]
    fn errors_surface() {
        assert!(matches!(
            execute(&QueryNode::scan("nope"), &catalog()),
            Err(crate::QueryError::UnknownTable(_))
        ));
        let bad_filter = QueryNode::scan("users").filter(9, CmpOp::Eq, 1);
        assert!(matches!(
            execute(&bad_filter, &catalog()),
            Err(crate::QueryError::InvalidQuery(_))
        ));
        let bad_join = QueryNode::scan("users").join(QueryNode::scan("orders"), 7, 0);
        assert!(execute(&bad_join, &catalog()).is_err());
    }

    #[test]
    fn empty_filter_result() {
        let q = QueryNode::scan("users").filter(1, CmpOp::Gt, 1000);
        let r = execute(&q, &catalog()).unwrap();
        assert_eq!(r.count, 0);
        // Chained operators on empty inputs stay valid.
        let q2 = QueryNode::scan("users")
            .filter(1, CmpOp::Gt, 1000)
            .join(QueryNode::scan("orders"), 0, 0)
            .count();
        let r2 = execute(&q2, &catalog()).unwrap();
        assert_eq!(r2.count, 0);
    }
}
