//! Parametric query-workload generation.
//!
//! Generates families of queries over a catalog with controllable *shape
//! bias*: which tables are queried, which columns are filtered, and how
//! selective filters are. Two generator profiles with different biases
//! produce workloads whose Jaccard subtree similarity (§V-D.1) is low —
//! the knob the benchmark turns to build its Φ axis.

use crate::plan::{CmpOp, QueryNode};
use crate::table::Catalog;
use crate::{QueryError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Profile controlling the distribution of generated query shapes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryProfile {
    /// Tables eligible for the driving (first) relation.
    pub tables: Vec<String>,
    /// Probability of adding a join to a second table (per query).
    pub join_probability: f64,
    /// Candidate filter columns (index into the driving table's schema).
    pub filter_columns: Vec<usize>,
    /// Range of filter literals.
    pub literal_range: (i64, i64),
    /// Probability that a query carries a filter.
    pub filter_probability: f64,
}

impl QueryProfile {
    /// Validates the profile.
    pub fn validate(&self) -> Result<()> {
        if self.tables.is_empty() {
            return Err(QueryError::InvalidQuery(
                "profile needs at least one table".to_string(),
            ));
        }
        if !(0.0..=1.0).contains(&self.join_probability)
            || !(0.0..=1.0).contains(&self.filter_probability)
        {
            return Err(QueryError::InvalidQuery(
                "probabilities must be in [0, 1]".to_string(),
            ));
        }
        if self.literal_range.0 > self.literal_range.1 {
            return Err(QueryError::InvalidQuery(
                "literal range inverted".to_string(),
            ));
        }
        Ok(())
    }
}

/// Seeded query generator for a profile.
#[derive(Debug)]
pub struct QueryGenerator {
    profile: QueryProfile,
    rng: StdRng,
}

impl QueryGenerator {
    /// Creates a generator; validates the profile against the catalog.
    pub fn new(profile: QueryProfile, catalog: &Catalog, seed: u64) -> Result<Self> {
        profile.validate()?;
        for t in &profile.tables {
            let table = catalog.get(t)?;
            for &c in &profile.filter_columns {
                if c >= table.column_count() {
                    return Err(QueryError::UnknownColumn {
                        table: t.clone(),
                        column: c,
                    });
                }
            }
        }
        Ok(QueryGenerator {
            profile,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// Generates the next query.
    pub fn next_query(&mut self) -> QueryNode {
        let t = &self.profile.tables[self.rng.gen_range(0..self.profile.tables.len())];
        let mut q = QueryNode::scan(t.clone());
        if !self.profile.filter_columns.is_empty()
            && self.rng.gen::<f64>() < self.profile.filter_probability
        {
            let col = self.profile.filter_columns
                [self.rng.gen_range(0..self.profile.filter_columns.len())];
            let op = match self.rng.gen_range(0..4u8) {
                0 => CmpOp::Lt,
                1 => CmpOp::Le,
                2 => CmpOp::Gt,
                _ => CmpOp::Ge,
            };
            let (lo, hi) = self.profile.literal_range;
            let value = self.rng.gen_range(lo..=hi);
            q = q.filter(col, op, value);
        }
        if self.profile.tables.len() > 1 && self.rng.gen::<f64>() < self.profile.join_probability {
            let other = &self.profile.tables[self.rng.gen_range(0..self.profile.tables.len())];
            if other != t {
                // Key-key join on column 0 (generated tables use c0 as key).
                q = q.join(QueryNode::scan(other.clone()), 0, 0);
            }
        }
        q.count()
    }

    /// Generates `n` queries.
    pub fn take(&mut self, n: usize) -> Vec<QueryNode> {
        (0..n).map(|_| self.next_query()).collect()
    }
}

/// Generates multiway [`JoinQuery`](crate::optimizer::JoinQuery) instances over a star schema, for the
/// optimizer SUTs (a fact table joined to a varying subset of dimensions,
/// each relation optionally filtered).
#[derive(Debug)]
pub struct JoinQueryGenerator {
    /// Fact table name (relation 0 of every query).
    fact: String,
    fact_arity: usize,
    /// Dimension table names and arities.
    dims: Vec<(String, usize)>,
    /// Filter literal range applied to fact filters.
    literal_range: (i64, i64),
    rng: StdRng,
}

impl JoinQueryGenerator {
    /// Creates a generator; `fact` joins each chosen dimension on column 0.
    pub fn new(
        catalog: &Catalog,
        fact: impl Into<String>,
        dims: Vec<String>,
        literal_range: (i64, i64),
        seed: u64,
    ) -> Result<Self> {
        let fact = fact.into();
        let fact_arity = catalog.get(&fact)?.column_count();
        let mut dim_info = Vec::with_capacity(dims.len());
        for d in dims {
            let arity = catalog.get(&d)?.column_count();
            dim_info.push((d, arity));
        }
        if dim_info.is_empty() {
            return Err(QueryError::InvalidQuery(
                "join generator needs at least one dimension".to_string(),
            ));
        }
        Ok(JoinQueryGenerator {
            fact,
            fact_arity,
            dims: dim_info,
            literal_range,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// Generates the next join query (fact + 1..=all dimensions).
    pub fn next_query(&mut self) -> crate::optimizer::JoinQuery {
        use crate::optimizer::{JoinEdge, JoinQuery};
        let k = self.rng.gen_range(1..=self.dims.len());
        let mut fact_node = QueryNode::scan(self.fact.clone());
        if self.fact_arity > 1 && self.rng.gen::<f64>() < 0.7 {
            let col = self.rng.gen_range(1..self.fact_arity);
            let (lo, hi) = self.literal_range;
            fact_node = fact_node.filter(col, CmpOp::Lt, self.rng.gen_range(lo..=hi));
        }
        let mut relations = vec![fact_node];
        let mut arities = vec![self.fact_arity];
        let mut edges = Vec::new();
        // Choose k distinct dimensions deterministically via partial shuffle.
        let mut order: Vec<usize> = (0..self.dims.len()).collect();
        for i in 0..k {
            let j = self.rng.gen_range(i..order.len());
            order.swap(i, j);
        }
        for &d in order.iter().take(k) {
            let (name, arity) = &self.dims[d];
            relations.push(QueryNode::scan(name.clone()));
            arities.push(*arity);
            edges.push(JoinEdge {
                left_rel: 0,
                left_col: 0,
                right_rel: relations.len() - 1,
                right_col: 0,
            });
        }
        JoinQuery {
            relations,
            arities,
            edges,
        }
    }

    /// Generates `n` join queries.
    pub fn take(&mut self, n: usize) -> Vec<crate::optimizer::JoinQuery> {
        (0..n).map(|_| self.next_query()).collect()
    }
}

/// All subtree hashes of a workload, as a set — the input to Jaccard
/// workload similarity.
pub fn workload_subtree_set(queries: &[QueryNode]) -> std::collections::HashSet<u64> {
    queries.iter().flat_map(|q| q.subtree_hashes()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;
    use lsbench_stats::jaccard::jaccard_similarity;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add(Table::generate("a", 1000, 4, 1));
        cat.add(Table::generate("b", 500, 4, 2));
        cat
    }

    fn profile(tables: Vec<&str>, cols: Vec<usize>, range: (i64, i64)) -> QueryProfile {
        QueryProfile {
            tables: tables.into_iter().map(String::from).collect(),
            join_probability: 0.3,
            filter_columns: cols,
            literal_range: range,
            filter_probability: 0.9,
        }
    }

    #[test]
    fn generates_valid_queries() {
        let cat = catalog();
        let mut g =
            QueryGenerator::new(profile(vec!["a", "b"], vec![1, 2], (0, 500)), &cat, 3).unwrap();
        for q in g.take(100) {
            // Every generated query executes without error.
            crate::exec::execute(&q, &cat).unwrap();
            assert!(q.size() >= 2); // at least scan + count
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cat = catalog();
        let p = profile(vec!["a"], vec![1], (0, 100));
        let mut g1 = QueryGenerator::new(p.clone(), &cat, 9).unwrap();
        let mut g2 = QueryGenerator::new(p, &cat, 9).unwrap();
        assert_eq!(g1.take(50), g2.take(50));
    }

    #[test]
    fn validation_errors() {
        let cat = catalog();
        assert!(QueryGenerator::new(profile(vec!["nope"], vec![], (0, 1)), &cat, 1).is_err());
        assert!(QueryGenerator::new(profile(vec!["a"], vec![99], (0, 1)), &cat, 1).is_err());
        let mut p = profile(vec!["a"], vec![1], (0, 1));
        p.join_probability = 2.0;
        assert!(QueryGenerator::new(p, &cat, 1).is_err());
        let mut p = profile(vec!["a"], vec![1], (5, 1));
        assert!(p.validate().is_err());
        p.literal_range = (1, 5);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn join_generator_produces_valid_queries() {
        let mut cat = Catalog::new();
        cat.add(Table::generate("fact", 2000, 3, 1));
        cat.add(Table::generate("d1", 100, 2, 2));
        cat.add(Table::generate("d2", 200, 2, 3));
        let mut g =
            JoinQueryGenerator::new(&cat, "fact", vec!["d1".into(), "d2".into()], (0, 500), 7)
                .unwrap();
        let mut saw_multi = false;
        for q in g.take(30) {
            q.validate().unwrap();
            assert!(q.relations.len() >= 2);
            if q.relations.len() == 3 {
                saw_multi = true;
            }
            // The produced query optimizes and executes.
            let est = crate::card::HistogramEstimator::build(&cat).unwrap();
            let plan = crate::optimizer::optimize_join_order(&q, &est).unwrap();
            crate::exec::execute(&plan.plan, &cat).unwrap();
        }
        assert!(saw_multi, "never produced a 3-relation query");
    }

    #[test]
    fn join_generator_validates_inputs() {
        let mut cat = Catalog::new();
        cat.add(Table::generate("fact", 100, 3, 1));
        assert!(JoinQueryGenerator::new(&cat, "fact", vec![], (0, 1), 1).is_err());
        assert!(JoinQueryGenerator::new(&cat, "missing", vec!["fact".into()], (0, 1), 1).is_err());
    }

    #[test]
    fn similar_profiles_high_jaccard() {
        let cat = catalog();
        let p = profile(vec!["a"], vec![1], (0, 100));
        let w1 = QueryGenerator::new(p.clone(), &cat, 1).unwrap().take(200);
        let w2 = QueryGenerator::new(p, &cat, 2).unwrap().take(200);
        let sim = jaccard_similarity(&workload_subtree_set(&w1), &workload_subtree_set(&w2));
        assert!(sim > 0.6, "sim = {sim}");
    }

    #[test]
    fn different_profiles_low_jaccard() {
        let cat = catalog();
        let p1 = profile(vec!["a"], vec![1], (0, 100));
        let p2 = profile(vec!["b"], vec![3], (10_000, 20_000));
        let w1 = QueryGenerator::new(p1, &cat, 1).unwrap().take(200);
        let w2 = QueryGenerator::new(p2, &cat, 1).unwrap().take(200);
        let sim = jaccard_similarity(&workload_subtree_set(&w1), &workload_subtree_set(&w2));
        assert!(sim < 0.1, "sim = {sim}");
    }

    #[test]
    fn jaccard_orders_workload_distance() {
        // Same table, shifted literal ranges: closer ranges → higher sim.
        let cat = catalog();
        let base = profile(vec!["a"], vec![1], (0, 100));
        let near = profile(vec!["a"], vec![1], (50, 200));
        let far = profile(vec!["a"], vec![2, 3], (100_000, 500_000));
        let wb = QueryGenerator::new(base, &cat, 1).unwrap().take(300);
        let wn = QueryGenerator::new(near, &cat, 1).unwrap().take(300);
        let wf = QueryGenerator::new(far, &cat, 1).unwrap().take(300);
        let sb = workload_subtree_set(&wb);
        let sim_near = jaccard_similarity(&sb, &workload_subtree_set(&wn));
        let sim_far = jaccard_similarity(&sb, &workload_subtree_set(&wf));
        assert!(sim_near > sim_far, "near {sim_near} far {sim_far}");
    }
}
