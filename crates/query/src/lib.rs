//! A miniature relational query engine with traditional and learned
//! components.
//!
//! §II of the paper names query optimization "an excellent candidate for
//! learned approaches": learned cardinality estimation \[25]–\[29], learned
//! optimizer steering (Bao \[14]), and fully learned optimizers (Neo \[15]).
//! The benchmark must be able to drive such systems, and §V-D.1 measures
//! workload similarity as "the Jaccard similarity between the sets of all
//! subtrees of the query tree for all queries in the workload" — which
//! requires an actual query-tree representation.
//!
//! This crate provides the minimal but real engine those metrics need:
//!
//! * [`table`] — columnar in-memory tables and a catalog.
//! * [`plan`] — query trees (scan / filter / join / aggregate) with stable
//!   subtree hashing for Jaccard workload similarity.
//! * [`exec`] — a Volcano-style executor that also reports *true*
//!   cardinalities per operator (the ground-truth labels §IV says learned
//!   estimators must collect) and deterministic work counters.
//! * [`card`] — cardinality estimation: an equi-depth-histogram baseline
//!   with the independence assumption, and a feedback-driven learned
//!   estimator that memorizes observed cardinalities.
//! * [`optimizer`] — a dynamic-programming join-order optimizer
//!   parameterized by the estimator.
//! * [`bandit`] — a Bao-style ε-greedy plan steerer choosing among hint
//!   sets using observed execution costs, improving online.
//! * [`generator`] — parametric query-workload generation.

#![warn(missing_docs)]

pub mod bandit;
pub mod card;
pub mod exec;
pub mod generator;
pub mod optimizer;
pub mod plan;
pub mod table;

pub use bandit::PlanSteerer;
pub use card::{CardinalityEstimator, HistogramEstimator, LearnedEstimator};
pub use exec::{execute, ExecResult};
pub use generator::{JoinQueryGenerator, QueryGenerator};
pub use optimizer::{optimize_join_order, JoinQuery};
pub use plan::{CmpOp, Predicate, QueryNode};
pub use table::{Catalog, Table};

/// Errors produced by the query engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A referenced table does not exist in the catalog.
    UnknownTable(String),
    /// A referenced column index is out of range for its table.
    UnknownColumn {
        /// The table involved.
        table: String,
        /// The requested column index.
        column: usize,
    },
    /// Query construction was invalid (e.g. join on mismatched arity).
    InvalidQuery(String),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            QueryError::UnknownColumn { table, column } => {
                write!(f, "unknown column {column} in table {table}")
            }
            QueryError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, QueryError>;
