//! Dynamic-programming join-order optimization.
//!
//! A classic Selinger-style left-deep enumerator parameterized by a
//! [`CardinalityEstimator`]: the optimizer's plan quality is exactly as
//! good as its estimates, which is what makes learned cardinalities improve
//! query performance (§II). The benchmark's learned-optimizer SUT runs this
//! optimizer with a [`crate::LearnedEstimator`] that improves online.

use crate::card::CardinalityEstimator;
use crate::plan::QueryNode;
use crate::{QueryError, Result};
use std::collections::HashMap;

/// An equi-join edge between two relations of a [`JoinQuery`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinEdge {
    /// Index of the first relation.
    pub left_rel: usize,
    /// Join column within the first relation's schema.
    pub left_col: usize,
    /// Index of the second relation.
    pub right_rel: usize,
    /// Join column within the second relation's schema.
    pub right_col: usize,
}

/// A multiway join query: relation subtrees plus equi-join edges.
#[derive(Debug, Clone)]
pub struct JoinQuery {
    /// Relation subplans (scans, possibly with filters on top).
    pub relations: Vec<QueryNode>,
    /// Output arity of each relation (columns it produces).
    pub arities: Vec<usize>,
    /// Join edges; the graph must be connected.
    pub edges: Vec<JoinEdge>,
}

impl JoinQuery {
    /// Validates relation/edge consistency and graph connectivity.
    pub fn validate(&self) -> Result<()> {
        let n = self.relations.len();
        if n == 0 {
            return Err(QueryError::InvalidQuery("no relations".to_string()));
        }
        if self.arities.len() != n {
            return Err(QueryError::InvalidQuery(
                "arities length mismatch".to_string(),
            ));
        }
        if n > 20 {
            return Err(QueryError::InvalidQuery(
                "too many relations for exhaustive DP (max 20)".to_string(),
            ));
        }
        for e in &self.edges {
            if e.left_rel >= n || e.right_rel >= n {
                return Err(QueryError::InvalidQuery(format!(
                    "edge references relation out of range: {e:?}"
                )));
            }
            if e.left_col >= self.arities[e.left_rel] || e.right_col >= self.arities[e.right_rel] {
                return Err(QueryError::InvalidQuery(format!(
                    "edge references column out of range: {e:?}"
                )));
            }
        }
        // Connectivity via union-find.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        for e in &self.edges {
            let (a, b) = (
                find(&mut parent, e.left_rel),
                find(&mut parent, e.right_rel),
            );
            parent[a] = b;
        }
        let root = find(&mut parent, 0);
        for i in 1..n {
            if find(&mut parent, i) != root {
                return Err(QueryError::InvalidQuery(
                    "join graph is not connected".to_string(),
                ));
            }
        }
        Ok(())
    }
}

/// A chosen plan with its estimated cost.
#[derive(Debug, Clone)]
pub struct OptimizedPlan {
    /// The full join tree.
    pub plan: QueryNode,
    /// Estimated total cost (rows touched by all hash joins).
    pub estimated_cost: f64,
    /// Join order as relation indices (left-deep, first = leftmost).
    pub order: Vec<usize>,
}

/// State per DP subset: best cost, plan, and relation order.
#[derive(Debug, Clone)]
struct SubPlan {
    cost: f64,
    plan: QueryNode,
    order: Vec<usize>,
}

/// Enumerates left-deep join orders by DP over relation subsets, picking
/// the cheapest under `estimator`'s cardinalities.
///
/// Cost model: each hash join costs `|build| + |probe| + |output|` estimated
/// rows; relation subplans cost their estimated cardinality once (the scan).
pub fn optimize_join_order(
    query: &JoinQuery,
    estimator: &dyn CardinalityEstimator,
) -> Result<OptimizedPlan> {
    query.validate()?;
    let n = query.relations.len();
    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    let mut dp: HashMap<u32, SubPlan> = HashMap::new();
    for (i, rel) in query.relations.iter().enumerate() {
        dp.insert(
            1 << i,
            SubPlan {
                cost: estimator.estimate(rel),
                plan: rel.clone(),
                order: vec![i],
            },
        );
    }
    // Iterate subsets in increasing popcount order.
    let mut subsets: Vec<u32> = (1..=full).collect();
    subsets.sort_by_key(|s| s.count_ones());
    for s in subsets {
        if s.count_ones() < 1 || !dp.contains_key(&s) {
            continue;
        }
        let base = dp.get(&s).expect("checked").clone();
        for r in 0..n {
            let bit = 1u32 << r;
            if s & bit != 0 {
                continue;
            }
            // Find an edge connecting r to the subset.
            let Some((left_abs, right_col)) = connecting_edge(query, s, r, &base.order) else {
                continue;
            };
            let joined = base
                .plan
                .clone()
                .join(query.relations[r].clone(), left_abs, right_col);
            let left_rows = estimator.estimate(&base.plan);
            let right_rows = estimator.estimate(&query.relations[r]);
            let out_rows = estimator.estimate(&joined);
            let cost = base.cost + left_rows + right_rows + out_rows;
            let key = s | bit;
            let better = dp.get(&key).is_none_or(|existing| cost < existing.cost);
            if better {
                let mut order = base.order.clone();
                order.push(r);
                dp.insert(
                    key,
                    SubPlan {
                        cost,
                        plan: joined,
                        order,
                    },
                );
            }
        }
    }
    let best = dp
        .remove(&full)
        .ok_or_else(|| QueryError::InvalidQuery("no connected join order found".to_string()))?;
    Ok(OptimizedPlan {
        plan: best.plan,
        estimated_cost: best.cost,
        order: best.order,
    })
}

/// Finds an edge connecting relation `r` to subset `s`, returning the join
/// column as an absolute position in the subset plan's output schema plus
/// the column in `r`.
fn connecting_edge(query: &JoinQuery, s: u32, r: usize, order: &[usize]) -> Option<(usize, usize)> {
    // Offsets of each relation within the left-deep plan's schema.
    let mut offsets = HashMap::new();
    let mut acc = 0usize;
    for &rel in order {
        offsets.insert(rel, acc);
        acc += query.arities[rel];
    }
    for e in &query.edges {
        if e.left_rel == r && (s & (1 << e.right_rel)) != 0 {
            return Some((offsets[&e.right_rel] + e.right_col, e.left_col));
        }
        if e.right_rel == r && (s & (1 << e.left_rel)) != 0 {
            return Some((offsets[&e.left_rel] + e.left_col, e.right_col));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::card::{HistogramEstimator, LearnedEstimator};
    use crate::exec::execute;
    use crate::plan::CmpOp;
    use crate::table::{Catalog, Table};

    /// Star schema: one big fact table, two small dimensions.
    fn star_catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add(Table::generate("fact", 20_000, 3, 1));
        cat.add(Table::generate("dim_a", 500, 2, 2));
        cat.add(Table::generate("dim_b", 50, 2, 3));
        cat
    }

    fn star_query() -> JoinQuery {
        // fact.c0 = dim_a.c0, fact.c0 = dim_b.c0 (key joins).
        JoinQuery {
            relations: vec![
                QueryNode::scan("fact"),
                QueryNode::scan("dim_a"),
                QueryNode::scan("dim_b"),
            ],
            arities: vec![3, 2, 2],
            edges: vec![
                JoinEdge {
                    left_rel: 0,
                    left_col: 0,
                    right_rel: 1,
                    right_col: 0,
                },
                JoinEdge {
                    left_rel: 0,
                    left_col: 0,
                    right_rel: 2,
                    right_col: 0,
                },
            ],
        }
    }

    #[test]
    fn validate_catches_errors() {
        let mut q = star_query();
        q.edges.clear();
        assert!(q.validate().is_err()); // disconnected
        let mut q = star_query();
        q.edges[0].left_col = 99;
        assert!(q.validate().is_err());
        let q = JoinQuery {
            relations: vec![],
            arities: vec![],
            edges: vec![],
        };
        assert!(q.validate().is_err());
    }

    #[test]
    fn single_relation_plan() {
        let cat = star_catalog();
        let est = HistogramEstimator::build(&cat).unwrap();
        let q = JoinQuery {
            relations: vec![QueryNode::scan("fact")],
            arities: vec![3],
            edges: vec![],
        };
        let plan = optimize_join_order(&q, &est).unwrap();
        assert_eq!(plan.order, vec![0]);
    }

    #[test]
    fn dp_joins_small_relations_first() {
        let cat = star_catalog();
        let est = HistogramEstimator::build(&cat).unwrap();
        let plan = optimize_join_order(&star_query(), &est).unwrap();
        // The cheap order starts from a dimension (or joins the small dim
        // early); the fact table should never be joined *last* against a
        // huge accumulated intermediate here, and the chosen cost must beat
        // the naive fact-first-then-dims order... compute both and compare.
        assert_eq!(plan.order.len(), 3);
        // Plan executes correctly end-to-end.
        let result = execute(&plan.plan, &cat).unwrap();
        assert!(result.count > 0);
    }

    #[test]
    fn chosen_plan_is_cheapest_under_estimator() {
        let cat = star_catalog();
        let est = HistogramEstimator::build(&cat).unwrap();
        let best = optimize_join_order(&star_query(), &est).unwrap();
        // Enumerate all left-deep orders manually and confirm none beats it.
        let q = star_query();
        let orders: Vec<Vec<usize>> =
            vec![vec![0, 1, 2], vec![0, 2, 1], vec![1, 0, 2], vec![2, 0, 1]];
        for order in orders {
            let cost = cost_of_order(&q, &est, &order);
            assert!(
                best.estimated_cost <= cost + 1e-6,
                "order {order:?} cost {cost} beats DP {}",
                best.estimated_cost
            );
        }
    }

    /// Manual cost computation for a specific left-deep order (panics on
    /// disconnected steps, fine for the orders used in tests).
    fn cost_of_order(q: &JoinQuery, est: &dyn CardinalityEstimator, order: &[usize]) -> f64 {
        let mut plan = q.relations[order[0]].clone();
        let mut cost = est.estimate(&plan);
        let mut done = vec![order[0]];
        for &r in &order[1..] {
            let s: u32 = done.iter().map(|&i| 1u32 << i).sum();
            let (labs, rcol) = connecting_edge(q, s, r, &done).expect("connected order");
            let joined = plan.clone().join(q.relations[r].clone(), labs, rcol);
            cost += est.estimate(&plan) + est.estimate(&q.relations[r]) + est.estimate(&joined);
            plan = joined;
            done.push(r);
        }
        cost
    }

    #[test]
    fn better_estimates_can_change_the_plan() {
        // Build a case where histogram misestimates a filtered relation but
        // feedback teaches the learned estimator the truth.
        let mut cat = Catalog::new();
        // Correlated columns make the histogram underestimate the filter.
        let col: Vec<i64> = (0..5000).map(|i| i % 50).collect();
        cat.add(
            Table::new(
                "corr",
                vec!["id".into(), "a".into(), "b".into()],
                vec![(0..5000).collect(), col.clone(), col],
            )
            .unwrap(),
        );
        cat.add(Table::generate("other", 2000, 2, 9));
        let filtered = QueryNode::scan("corr")
            .filter(1, CmpOp::Lt, 5)
            .filter(2, CmpOp::Lt, 5);
        let hist = HistogramEstimator::build(&cat).unwrap();
        let hist_guess = hist.estimate(&filtered);
        let truth = execute(&filtered, &cat).unwrap();
        let mut learned = LearnedEstimator::new(HistogramEstimator::build(&cat).unwrap());
        for (&h, &c) in &truth.true_cardinalities {
            learned.observe(h, c);
        }
        let learned_guess = learned.estimate(&filtered);
        assert!(
            (learned_guess - truth.count as f64).abs() < 1.0,
            "learned {learned_guess} truth {}",
            truth.count
        );
        assert!(
            (hist_guess - truth.count as f64).abs() > (learned_guess - truth.count as f64).abs(),
            "histogram should be worse: hist {hist_guess} truth {}",
            truth.count
        );
    }

    #[test]
    fn four_way_chain_join() {
        let mut cat = Catalog::new();
        for (i, name) in ["t1", "t2", "t3", "t4"].iter().enumerate() {
            cat.add(Table::generate(*name, 100 * (i + 1), 2, i as u64));
        }
        let q = JoinQuery {
            relations: vec![
                QueryNode::scan("t1"),
                QueryNode::scan("t2"),
                QueryNode::scan("t3"),
                QueryNode::scan("t4"),
            ],
            arities: vec![2, 2, 2, 2],
            edges: vec![
                JoinEdge {
                    left_rel: 0,
                    left_col: 0,
                    right_rel: 1,
                    right_col: 0,
                },
                JoinEdge {
                    left_rel: 1,
                    left_col: 0,
                    right_rel: 2,
                    right_col: 0,
                },
                JoinEdge {
                    left_rel: 2,
                    left_col: 0,
                    right_rel: 3,
                    right_col: 0,
                },
            ],
        };
        let est = HistogramEstimator::build(&cat).unwrap();
        let plan = optimize_join_order(&q, &est).unwrap();
        assert_eq!(plan.order.len(), 4);
        let result = execute(&plan.plan, &cat).unwrap();
        // All tables share dense keys 0..100k, so t1's keys appear in all.
        assert_eq!(result.count, 100);
    }
}
