//! Query trees and stable subtree hashing.
//!
//! §V-D.1 of the paper: workload similarity "can be estimated, for example,
//! using the Jaccard similarity between the sets of all subtrees of the
//! query tree for all queries in the workload". [`QueryNode::subtree_hashes`]
//! produces exactly those sets (as stable 64-bit structural hashes), which
//! `lsbench-core` feeds to [`lsbench_stats::jaccard`].

use serde::{Deserialize, Serialize};

/// Comparison operators for predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equality.
    Eq,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// Applies the operator.
    #[inline]
    pub fn eval(&self, lhs: i64, rhs: i64) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }

    fn tag(&self) -> u64 {
        match self {
            CmpOp::Eq => 1,
            CmpOp::Lt => 2,
            CmpOp::Le => 3,
            CmpOp::Gt => 4,
            CmpOp::Ge => 5,
        }
    }
}

/// A single-column comparison predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Predicate {
    /// Column index within the operator's input schema.
    pub column: usize,
    /// Comparison operator.
    pub op: CmpOp,
    /// Literal right-hand side.
    pub value: i64,
}

impl Predicate {
    /// Evaluates the predicate against a row.
    #[inline]
    pub fn eval(&self, row: &[i64]) -> bool {
        self.op.eval(row[self.column], self.value)
    }
}

/// A logical query tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QueryNode {
    /// Full scan of a base table.
    Scan {
        /// Table name.
        table: String,
    },
    /// Filter rows by a predicate.
    Filter {
        /// The predicate to apply.
        pred: Predicate,
        /// Input operator.
        input: Box<QueryNode>,
    },
    /// Equi-join two inputs on one column each. Output schema is the left
    /// schema followed by the right schema.
    Join {
        /// Left input.
        left: Box<QueryNode>,
        /// Right input.
        right: Box<QueryNode>,
        /// Join column in the left schema.
        left_col: usize,
        /// Join column in the right schema.
        right_col: usize,
    },
    /// Count the input rows (terminal aggregate).
    Count {
        /// Input operator.
        input: Box<QueryNode>,
    },
}

/// FNV-1a step.
#[inline]
fn fnv(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x0000_0100_0000_01B3)
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

impl QueryNode {
    /// Convenience: scan of `table`.
    pub fn scan(table: impl Into<String>) -> QueryNode {
        QueryNode::Scan {
            table: table.into(),
        }
    }

    /// Convenience: filter on top of `self`.
    pub fn filter(self, column: usize, op: CmpOp, value: i64) -> QueryNode {
        QueryNode::Filter {
            pred: Predicate { column, op, value },
            input: Box::new(self),
        }
    }

    /// Convenience: join with `right`.
    pub fn join(self, right: QueryNode, left_col: usize, right_col: usize) -> QueryNode {
        QueryNode::Join {
            left: Box::new(self),
            right: Box::new(right),
            left_col,
            right_col,
        }
    }

    /// Convenience: count on top of `self`.
    pub fn count(self) -> QueryNode {
        QueryNode::Count {
            input: Box::new(self),
        }
    }

    /// Stable structural hash of this node (including its subtree).
    ///
    /// Literal values are *bucketed* (by order of magnitude) rather than
    /// hashed exactly, so two range queries with nearby constants share a
    /// shape — matching the intent of workload similarity: the *shape* of
    /// the workload, not its exact constants.
    pub fn structural_hash(&self) -> u64 {
        match self {
            QueryNode::Scan { table } => {
                let mut h = fnv(FNV_OFFSET, 0x5CAB);
                for b in table.bytes() {
                    h = fnv(h, b as u64);
                }
                h
            }
            QueryNode::Filter { pred, input } => {
                let mut h = fnv(FNV_OFFSET, 0xF117);
                h = fnv(h, pred.column as u64);
                h = fnv(h, pred.op.tag());
                h = fnv(h, magnitude_bucket(pred.value));
                fnv(h, input.structural_hash())
            }
            QueryNode::Join {
                left,
                right,
                left_col,
                right_col,
            } => {
                let mut h = fnv(FNV_OFFSET, 0x301E);
                h = fnv(h, *left_col as u64);
                h = fnv(h, *right_col as u64);
                h = fnv(h, left.structural_hash());
                fnv(h, right.structural_hash())
            }
            QueryNode::Count { input } => fnv(fnv(FNV_OFFSET, 0xC0DE), input.structural_hash()),
        }
    }

    /// Hashes of *all* subtrees of this query, for Jaccard workload
    /// similarity (§V-D.1).
    pub fn subtree_hashes(&self) -> Vec<u64> {
        let mut out = Vec::new();
        self.collect_hashes(&mut out);
        out
    }

    fn collect_hashes(&self, out: &mut Vec<u64>) {
        out.push(self.structural_hash());
        match self {
            QueryNode::Scan { .. } => {}
            QueryNode::Filter { input, .. } | QueryNode::Count { input } => {
                input.collect_hashes(out);
            }
            QueryNode::Join { left, right, .. } => {
                left.collect_hashes(out);
                right.collect_hashes(out);
            }
        }
    }

    /// Number of operators in the tree.
    pub fn size(&self) -> usize {
        match self {
            QueryNode::Scan { .. } => 1,
            QueryNode::Filter { input, .. } | QueryNode::Count { input } => 1 + input.size(),
            QueryNode::Join { left, right, .. } => 1 + left.size() + right.size(),
        }
    }

    /// Names of all base tables referenced by the tree.
    pub fn tables(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_tables(&mut out);
        out
    }

    fn collect_tables<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            QueryNode::Scan { table } => out.push(table),
            QueryNode::Filter { input, .. } | QueryNode::Count { input } => {
                input.collect_tables(out)
            }
            QueryNode::Join { left, right, .. } => {
                left.collect_tables(out);
                right.collect_tables(out);
            }
        }
    }
}

/// Buckets a literal by sign and order of magnitude.
fn magnitude_bucket(v: i64) -> u64 {
    let sign = if v < 0 { 1u64 } else { 0 };
    let mag = v.unsigned_abs();
    let bucket = 64 - mag.leading_zeros() as u64; // 0 for 0, else floor(log2)+1
    sign * 100 + bucket
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_query() -> QueryNode {
        QueryNode::scan("orders")
            .filter(1, CmpOp::Lt, 100)
            .join(QueryNode::scan("users"), 0, 0)
            .count()
    }

    #[test]
    fn cmp_ops() {
        assert!(CmpOp::Eq.eval(1, 1));
        assert!(CmpOp::Lt.eval(1, 2));
        assert!(CmpOp::Le.eval(2, 2));
        assert!(CmpOp::Gt.eval(3, 2));
        assert!(CmpOp::Ge.eval(2, 2));
        assert!(!CmpOp::Lt.eval(2, 2));
    }

    #[test]
    fn predicate_eval() {
        let p = Predicate {
            column: 1,
            op: CmpOp::Ge,
            value: 5,
        };
        assert!(p.eval(&[0, 5]));
        assert!(!p.eval(&[0, 4]));
    }

    #[test]
    fn subtree_count_matches_size() {
        let q = sample_query();
        // count(join(filter(scan orders), scan users)) = 5 operators.
        assert_eq!(q.size(), 5);
        assert_eq!(q.subtree_hashes().len(), 5);
    }

    #[test]
    fn hash_is_stable_and_structural() {
        let a = sample_query();
        let b = sample_query();
        assert_eq!(a.structural_hash(), b.structural_hash());
        let different = QueryNode::scan("orders")
            .filter(2, CmpOp::Lt, 100)
            .join(QueryNode::scan("users"), 0, 0)
            .count();
        assert_ne!(a.structural_hash(), different.structural_hash());
    }

    #[test]
    fn nearby_constants_share_shape() {
        let a = QueryNode::scan("t").filter(0, CmpOp::Lt, 100);
        let b = QueryNode::scan("t").filter(0, CmpOp::Lt, 120); // same 2^7 bucket
        let c = QueryNode::scan("t").filter(0, CmpOp::Lt, 100_000);
        assert_eq!(a.structural_hash(), b.structural_hash());
        assert_ne!(a.structural_hash(), c.structural_hash());
    }

    #[test]
    fn join_order_distinguished() {
        let ab = QueryNode::scan("a").join(QueryNode::scan("b"), 0, 0);
        let ba = QueryNode::scan("b").join(QueryNode::scan("a"), 0, 0);
        assert_ne!(ab.structural_hash(), ba.structural_hash());
    }

    #[test]
    fn tables_collected_in_order() {
        let q = sample_query();
        assert_eq!(q.tables(), vec!["orders", "users"]);
    }

    #[test]
    fn serde_round_trip() {
        let q = sample_query();
        let json = serde_json::to_string(&q).unwrap();
        let back: QueryNode = serde_json::from_str(&json).unwrap();
        assert_eq!(q, back);
    }

    #[test]
    fn magnitude_buckets() {
        assert_eq!(magnitude_bucket(0), 0);
        assert_eq!(magnitude_bucket(1), 1);
        assert_eq!(magnitude_bucket(100), magnitude_bucket(127));
        assert_ne!(magnitude_bucket(127), magnitude_bucket(128));
        assert_ne!(magnitude_bucket(5), magnitude_bucket(-5));
    }
}
