//! Columnar in-memory tables and the catalog.

use crate::{QueryError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// A columnar table of `i64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    name: String,
    column_names: Vec<String>,
    /// Column-major storage: `columns[c][r]`.
    columns: Vec<Vec<i64>>,
}

impl Table {
    /// Creates a table from named columns; all columns must share a length.
    pub fn new(
        name: impl Into<String>,
        column_names: Vec<String>,
        columns: Vec<Vec<i64>>,
    ) -> Result<Self> {
        let name = name.into();
        if column_names.len() != columns.len() {
            return Err(QueryError::InvalidQuery(format!(
                "table {name}: {} names for {} columns",
                column_names.len(),
                columns.len()
            )));
        }
        if let Some(first) = columns.first() {
            if columns.iter().any(|c| c.len() != first.len()) {
                return Err(QueryError::InvalidQuery(format!(
                    "table {name}: ragged columns"
                )));
            }
        }
        Ok(Table {
            name,
            column_names,
            columns,
        })
    }

    /// Generates a table with `rows` rows; column `c` is drawn from a
    /// deterministic per-column distribution: column 0 is a dense key,
    /// odd columns are zipf-ish skewed, even columns uniform.
    pub fn generate(name: impl Into<String>, rows: usize, cols: usize, seed: u64) -> Self {
        let name = name.into();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut columns = Vec::with_capacity(cols);
        let mut column_names = Vec::with_capacity(cols);
        for c in 0..cols {
            column_names.push(format!("c{c}"));
            let col: Vec<i64> = match c {
                0 => (0..rows as i64).collect(),
                _ if c % 2 == 1 => (0..rows)
                    .map(|_| {
                        // Skewed: squared uniform concentrates near zero.
                        let u: f64 = rng.gen();
                        (u * u * 1000.0) as i64
                    })
                    .collect(),
                _ => (0..rows).map(|_| rng.gen_range(0..1000)).collect(),
            };
            columns.push(col);
        }
        Table {
            name,
            column_names,
            columns,
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.columns.first().map_or(0, |c| c.len())
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Column names.
    pub fn column_names(&self) -> &[String] {
        &self.column_names
    }

    /// Column `c`, if present.
    pub fn column(&self, c: usize) -> Result<&[i64]> {
        self.columns
            .get(c)
            .map(|v| v.as_slice())
            .ok_or_else(|| QueryError::UnknownColumn {
                table: self.name.clone(),
                column: c,
            })
    }

    /// Materializes row `r` (test/debug helper).
    pub fn row(&self, r: usize) -> Vec<i64> {
        self.columns.iter().map(|c| c[r]).collect()
    }
}

/// A named collection of tables.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: HashMap<String, Table>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Adds (or replaces) a table.
    pub fn add(&mut self, table: Table) {
        self.tables.insert(table.name.clone(), table);
    }

    /// Fetches a table by name.
    pub fn get(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| QueryError::UnknownTable(name.to_string()))
    }

    /// Names of all tables (unordered).
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(|s| s.as_str())
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(Table::new("t", vec!["a".into()], vec![vec![1, 2]]).is_ok());
        assert!(Table::new("t", vec!["a".into()], vec![vec![1], vec![2]]).is_err());
        assert!(Table::new("t", vec!["a".into(), "b".into()], vec![vec![1, 2], vec![3]]).is_err());
    }

    #[test]
    fn accessors() {
        let t = Table::new(
            "t",
            vec!["a".into(), "b".into()],
            vec![vec![1, 2, 3], vec![4, 5, 6]],
        )
        .unwrap();
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.column_count(), 2);
        assert_eq!(t.column(1).unwrap(), &[4, 5, 6]);
        assert!(t.column(2).is_err());
        assert_eq!(t.row(1), vec![2, 5]);
    }

    #[test]
    fn generate_shapes() {
        let t = Table::generate("g", 1000, 4, 7);
        assert_eq!(t.row_count(), 1000);
        assert_eq!(t.column_count(), 4);
        // Column 0 is a dense key.
        assert_eq!(t.column(0).unwrap()[999], 999);
        // Odd columns are skewed toward zero.
        let skewed = t.column(1).unwrap();
        let small = skewed.iter().filter(|&&v| v < 250).count();
        assert!(small > 400, "small = {small}");
        // Even non-key columns are roughly uniform.
        let uniform = t.column(2).unwrap();
        let small_u = uniform.iter().filter(|&&v| v < 250).count();
        assert!((small_u as i64 - 250).abs() < 80, "small_u = {small_u}");
    }

    #[test]
    fn generate_deterministic() {
        let a = Table::generate("a", 100, 3, 5);
        let b = Table::generate("a", 100, 3, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn catalog_round_trip() {
        let mut cat = Catalog::new();
        assert!(cat.is_empty());
        cat.add(Table::generate("orders", 10, 2, 1));
        cat.add(Table::generate("users", 10, 2, 2));
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.get("orders").unwrap().name(), "orders");
        assert!(matches!(cat.get("nope"), Err(QueryError::UnknownTable(_))));
    }
}
