//! Property tests for the query engine: executor correctness against a
//! naive reference, estimator sanity, and subtree-hash invariants.

use lsbench_query::card::{q_error, CardinalityEstimator, HistogramEstimator};
use lsbench_query::exec::execute;
use lsbench_query::plan::{CmpOp, QueryNode};
use lsbench_query::table::{Catalog, Table};
use proptest::prelude::*;

fn arb_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn small_catalog(rows_a: usize, rows_b: usize, seed: u64) -> Catalog {
    let mut cat = Catalog::new();
    cat.add(Table::generate("a", rows_a, 3, seed));
    cat.add(Table::generate("b", rows_b, 3, seed + 1));
    cat
}

/// Naive reference: filter by scanning rows.
fn reference_filter_count(cat: &Catalog, table: &str, col: usize, op: CmpOp, v: i64) -> u64 {
    let t = cat.get(table).unwrap();
    (0..t.row_count())
        .filter(|&r| op.eval(t.row(r)[col], v))
        .count() as u64
}

/// Naive reference: nested-loop join count.
fn reference_join_count(cat: &Catalog, lc: usize, rc: usize) -> u64 {
    let a = cat.get("a").unwrap();
    let b = cat.get("b").unwrap();
    let mut count = 0u64;
    for i in 0..a.row_count() {
        for j in 0..b.row_count() {
            if a.row(i)[lc] == b.row(j)[rc] {
                count += 1;
            }
        }
    }
    count
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn filter_matches_reference(
        rows in 1usize..300,
        seed in 0u64..50,
        col in 0usize..3,
        op in arb_op(),
        v in -100i64..1100,
    ) {
        let cat = small_catalog(rows, 10, seed);
        let q = QueryNode::scan("a").filter(col, op, v);
        let got = execute(&q, &cat).unwrap().count;
        let expected = reference_filter_count(&cat, "a", col, op, v);
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn join_matches_reference(
        rows_a in 1usize..80,
        rows_b in 1usize..80,
        seed in 0u64..30,
        lc in 0usize..3,
        rc in 0usize..3,
    ) {
        let cat = small_catalog(rows_a, rows_b, seed);
        let q = QueryNode::scan("a").join(QueryNode::scan("b"), lc, rc);
        let got = execute(&q, &cat).unwrap().count;
        prop_assert_eq!(got, reference_join_count(&cat, lc, rc));
    }

    #[test]
    fn count_equals_row_count(rows in 1usize..200, seed in 0u64..30, v in 0i64..1000) {
        let cat = small_catalog(rows, 10, seed);
        let q = QueryNode::scan("a").filter(1, CmpOp::Lt, v);
        let materialized = execute(&q, &cat).unwrap();
        let counted = execute(&q.clone().count(), &cat).unwrap();
        prop_assert_eq!(materialized.count, counted.count);
        prop_assert_eq!(materialized.rows.len() as u64, materialized.count);
    }

    #[test]
    fn true_cardinalities_consistent(rows in 1usize..200, seed in 0u64..30, v in 0i64..1000) {
        let scan = QueryNode::scan("a");
        let filtered = scan.clone().filter(2, CmpOp::Ge, v);
        let cat = small_catalog(rows, 10, seed);
        let r = execute(&filtered, &cat).unwrap();
        // Scan cardinality = table size; filter cardinality = result count;
        // filter never exceeds scan.
        let scan_card = r.true_cardinalities[&scan.structural_hash()];
        let filter_card = r.true_cardinalities[&filtered.structural_hash()];
        prop_assert_eq!(scan_card, rows as u64);
        prop_assert_eq!(filter_card, r.count);
        prop_assert!(filter_card <= scan_card);
    }

    #[test]
    fn histogram_estimates_bounded(rows in 10usize..300, seed in 0u64..30, col in 1usize..3, op in arb_op(), v in -100i64..1100) {
        let cat = small_catalog(rows, 10, seed);
        let est = HistogramEstimator::build(&cat).unwrap();
        let q = QueryNode::scan("a").filter(col, op, v);
        let guess = est.estimate(&q);
        // Estimates never exceed the table size or go negative.
        prop_assert!(guess >= 0.0);
        prop_assert!(guess <= rows as f64 + 1e-9);
    }

    #[test]
    fn histogram_range_estimates_reasonable(rows in 200usize..500, seed in 0u64..20, v in 100i64..900) {
        // On the uniform column, range estimates land within q-error 2.
        let cat = small_catalog(rows, 10, seed);
        let est = HistogramEstimator::build(&cat).unwrap();
        let q = QueryNode::scan("a").filter(2, CmpOp::Lt, v);
        let truth = execute(&q, &cat).unwrap().count as f64;
        let guess = est.estimate(&q);
        prop_assert!(q_error(guess, truth) < 2.5,
            "q-error {} (guess {guess} truth {truth})", q_error(guess, truth));
    }

    #[test]
    fn subtree_hashes_injective_enough(
        t1 in "[a-c]{1,3}", t2 in "[a-c]{1,3}",
        c1 in 0usize..4, c2 in 0usize..4,
        v1 in 0i64..1_000_000, v2 in 0i64..1_000_000,
    ) {
        let q1 = QueryNode::scan(t1.clone()).filter(c1, CmpOp::Lt, v1);
        let q2 = QueryNode::scan(t2.clone()).filter(c2, CmpOp::Lt, v2);
        // Identical structure => identical hash.
        let q1_copy = QueryNode::scan(t1.clone()).filter(c1, CmpOp::Lt, v1);
        prop_assert_eq!(q1.structural_hash(), q1_copy.structural_hash());
        // Different table or column => different hash.
        if t1 != t2 || c1 != c2 {
            prop_assert_ne!(q1.structural_hash(), q2.structural_hash());
        }
        let _ = v2;
    }

    #[test]
    fn executor_work_monotone_in_input(rows in 10usize..200, seed in 0u64..20) {
        let small = small_catalog(rows, 10, seed);
        let large = small_catalog(rows * 4, 10, seed);
        let q = QueryNode::scan("a").filter(1, CmpOp::Ge, 0).count();
        let ws = execute(&q, &small).unwrap().work;
        let wl = execute(&q, &large).unwrap().work;
        prop_assert!(wl > ws, "work not monotone: {wl} <= {ws}");
    }
}
