//! Exact descriptive statistics over in-memory samples.
//!
//! The paper's specialization metric (Fig. 1a) reports *descriptive
//! statistics* — box plots — of throughput per workload/data distribution
//! instead of a single average. [`BoxPlot`] computes exactly those
//! statistics (median, quartiles, whiskers at 1.5·IQR, and outliers), and
//! [`Summary`] provides the supporting moments.

use crate::{sorted_copy, Result, StatsError};
use serde::{Deserialize, Serialize};

/// Full-moment summary of a sample: count, mean, variance, skewness, kurtosis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased sample variance (n-1 denominator); 0 for a single sample.
    pub variance: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Sample skewness (biased, moment-based); 0 when undefined.
    pub skewness: f64,
    /// Excess kurtosis (biased, moment-based); 0 when undefined.
    pub kurtosis: f64,
}

impl Summary {
    /// Computes the summary of `data`.
    ///
    /// Returns [`StatsError::Empty`] for empty input and
    /// [`StatsError::NanInput`] if any sample is NaN.
    pub fn of(data: &[f64]) -> Result<Self> {
        if data.is_empty() {
            return Err(StatsError::Empty);
        }
        if data.iter().any(|v| v.is_nan()) {
            return Err(StatsError::NanInput);
        }
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let mut m2 = 0.0;
        let mut m3 = 0.0;
        let mut m4 = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in data {
            let d = v - mean;
            m2 += d * d;
            m3 += d * d * d;
            m4 += d * d * d * d;
            min = min.min(v);
            max = max.max(v);
        }
        let variance = if data.len() > 1 { m2 / (n - 1.0) } else { 0.0 };
        let pop_var = m2 / n;
        let skewness = if pop_var > 0.0 {
            (m3 / n) / pop_var.powf(1.5)
        } else {
            0.0
        };
        let kurtosis = if pop_var > 0.0 {
            (m4 / n) / (pop_var * pop_var) - 3.0
        } else {
            0.0
        };
        Ok(Summary {
            count: data.len(),
            mean,
            variance,
            std_dev: variance.sqrt(),
            min,
            max,
            skewness,
            kurtosis,
        })
    }

    /// Coefficient of variation (`std_dev / mean`); `None` when the mean is 0.
    ///
    /// The benchmark uses this as a one-number "throughput stability" score:
    /// a learned system that overfits to one distribution typically shows a
    /// large coefficient of variation across distributions.
    pub fn coefficient_of_variation(&self) -> Option<f64> {
        if self.mean == 0.0 {
            None
        } else {
            Some(self.std_dev / self.mean.abs())
        }
    }
}

/// Computes the `q`-quantile (`0.0 ..= 1.0`) of `data` using linear
/// interpolation between closest ranks (type-7, the R/NumPy default).
pub fn quantile(data: &[f64], q: f64) -> Result<f64> {
    if data.is_empty() {
        return Err(StatsError::Empty);
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(StatsError::InvalidParameter("quantile must be in [0, 1]"));
    }
    let sorted = sorted_copy(data)?;
    Ok(quantile_sorted(&sorted, q))
}

/// Quantile over data already sorted ascending; `q` must be in `[0, 1]`.
///
/// Callers computing many quantiles should sort once and use this.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] + (sorted[hi] - sorted[lo]) * frac
    }
}

/// Median of `data` (0.5 quantile).
pub fn median(data: &[f64]) -> Result<f64> {
    quantile(data, 0.5)
}

/// Classic five-number summary: min, lower quartile, median, upper quartile, max.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FiveNumber {
    /// Minimum sample.
    pub min: f64,
    /// First quartile (0.25 quantile).
    pub q1: f64,
    /// Median (0.5 quantile).
    pub median: f64,
    /// Third quartile (0.75 quantile).
    pub q3: f64,
    /// Maximum sample.
    pub max: f64,
}

impl FiveNumber {
    /// Computes the five-number summary of `data`.
    pub fn of(data: &[f64]) -> Result<Self> {
        if data.is_empty() {
            return Err(StatsError::Empty);
        }
        let sorted = sorted_copy(data)?;
        Ok(FiveNumber {
            min: sorted[0],
            q1: quantile_sorted(&sorted, 0.25),
            median: quantile_sorted(&sorted, 0.5),
            q3: quantile_sorted(&sorted, 0.75),
            max: sorted[sorted.len() - 1],
        })
    }

    /// Interquartile range (`q3 - q1`).
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Box-plot statistics with Tukey 1.5·IQR whiskers and explicit outliers.
///
/// This is the exact representation Fig. 1a of the paper plots per
/// workload/data distribution: "the box plots provide a good overview of the
/// dispersion, skewness, and outliers in each case".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoxPlot {
    /// Five-number summary of the underlying sample.
    pub five: FiveNumber,
    /// Lowest sample still within `q1 - 1.5·IQR`.
    pub whisker_lo: f64,
    /// Highest sample still within `q3 + 1.5·IQR`.
    pub whisker_hi: f64,
    /// Samples outside the whiskers, sorted ascending.
    pub outliers: Vec<f64>,
    /// Mean of the sample (often drawn as a diamond on box plots).
    pub mean: f64,
    /// Number of samples.
    pub count: usize,
}

impl BoxPlot {
    /// Computes box-plot statistics of `data`.
    pub fn of(data: &[f64]) -> Result<Self> {
        if data.is_empty() {
            return Err(StatsError::Empty);
        }
        let sorted = sorted_copy(data)?;
        let five = FiveNumber {
            min: sorted[0],
            q1: quantile_sorted(&sorted, 0.25),
            median: quantile_sorted(&sorted, 0.5),
            q3: quantile_sorted(&sorted, 0.75),
            max: sorted[sorted.len() - 1],
        };
        let iqr = five.iqr();
        let lo_fence = five.q1 - 1.5 * iqr;
        let hi_fence = five.q3 + 1.5 * iqr;
        let mut whisker_lo = five.q1;
        let mut whisker_hi = five.q3;
        let mut outliers = Vec::new();
        for &v in &sorted {
            if v < lo_fence || v > hi_fence {
                outliers.push(v);
            } else {
                if v < whisker_lo {
                    whisker_lo = v;
                }
                if v > whisker_hi {
                    whisker_hi = v;
                }
            }
        }
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        Ok(BoxPlot {
            five,
            whisker_lo,
            whisker_hi,
            outliers,
            mean,
            count: sorted.len(),
        })
    }

    /// Fraction of samples classified as outliers.
    pub fn outlier_fraction(&self) -> f64 {
        self.outliers.len() as f64 / self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.count, 5);
        assert_close(s.mean, 3.0);
        assert_close(s.variance, 2.5);
        assert_close(s.min, 1.0);
        assert_close(s.max, 5.0);
        assert_close(s.skewness, 0.0);
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::of(&[42.0]).unwrap();
        assert_close(s.variance, 0.0);
        assert_close(s.skewness, 0.0);
        assert_close(s.kurtosis, 0.0);
    }

    #[test]
    fn summary_empty_and_nan() {
        assert_eq!(Summary::of(&[]), Err(StatsError::Empty));
        assert_eq!(Summary::of(&[1.0, f64::NAN]), Err(StatsError::NanInput));
    }

    #[test]
    fn summary_skew_sign() {
        // Right-skewed data has positive skewness.
        let s = Summary::of(&[1.0, 1.0, 1.0, 1.0, 10.0]).unwrap();
        assert!(s.skewness > 0.0);
        // Left-skewed data has negative skewness.
        let s = Summary::of(&[-10.0, 1.0, 1.0, 1.0, 1.0]).unwrap();
        assert!(s.skewness < 0.0);
    }

    #[test]
    fn coefficient_of_variation() {
        let s = Summary::of(&[2.0, 2.0, 2.0]).unwrap();
        assert_close(s.coefficient_of_variation().unwrap(), 0.0);
        let s = Summary::of(&[0.0, 0.0]).unwrap();
        assert!(s.coefficient_of_variation().is_none());
    }

    #[test]
    fn quantile_interpolates() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_close(quantile(&data, 0.0).unwrap(), 1.0);
        assert_close(quantile(&data, 1.0).unwrap(), 4.0);
        assert_close(quantile(&data, 0.5).unwrap(), 2.5);
        assert_close(quantile(&data, 0.25).unwrap(), 1.75);
    }

    #[test]
    fn quantile_rejects_bad_q() {
        assert!(matches!(
            quantile(&[1.0], 1.5),
            Err(StatsError::InvalidParameter(_))
        ));
        assert!(matches!(
            quantile(&[1.0], -0.1),
            Err(StatsError::InvalidParameter(_))
        ));
    }

    #[test]
    fn quantile_unsorted_input() {
        let data = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_close(median(&data).unwrap(), 3.0);
    }

    #[test]
    fn five_number_summary() {
        let f = FiveNumber::of(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]).unwrap();
        assert_close(f.min, 1.0);
        assert_close(f.max, 8.0);
        assert_close(f.median, 4.5);
        assert_close(f.iqr(), f.q3 - f.q1);
        assert!(f.q1 < f.median && f.median < f.q3);
    }

    #[test]
    fn boxplot_no_outliers() {
        let b = BoxPlot::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert!(b.outliers.is_empty());
        assert_close(b.whisker_lo, 1.0);
        assert_close(b.whisker_hi, 5.0);
        assert_close(b.outlier_fraction(), 0.0);
    }

    #[test]
    fn boxplot_detects_outlier() {
        let mut data: Vec<f64> = (1..=20).map(|v| v as f64).collect();
        data.push(1000.0);
        let b = BoxPlot::of(&data).unwrap();
        assert_eq!(b.outliers, vec![1000.0]);
        // Whisker must stop at the largest non-outlier.
        assert_close(b.whisker_hi, 20.0);
        assert!(b.outlier_fraction() > 0.0);
    }

    #[test]
    fn boxplot_constant_data() {
        let b = BoxPlot::of(&[7.0; 10]).unwrap();
        assert!(b.outliers.is_empty());
        assert_close(b.five.iqr(), 0.0);
        assert_close(b.whisker_lo, 7.0);
        assert_close(b.whisker_hi, 7.0);
    }
}
