//! Histograms: equi-width, equi-depth, and logarithmic latency histograms.
//!
//! Equi-width and equi-depth histograms double as the *traditional*
//! cardinality-estimation substrate in `lsbench-query` (the baseline the
//! paper's learned estimators are compared against), while
//! [`LatencyHistogram`] backs the per-interval latency bands of Fig. 1c.

use crate::{Result, StatsError};
use serde::{Deserialize, Serialize};

/// Fixed-bucket equi-width histogram over `[lo, hi)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EquiWidthHistogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    underflow: u64,
    overflow: u64,
}

impl EquiWidthHistogram {
    /// Creates a histogram with `buckets` equal-width buckets over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Result<Self> {
        if buckets == 0 {
            return Err(StatsError::InvalidParameter("bucket count must be > 0"));
        }
        if lo.partial_cmp(&hi) != Some(std::cmp::Ordering::Less) {
            return Err(StatsError::InvalidParameter("lo must be < hi"));
        }
        Ok(EquiWidthHistogram {
            lo,
            hi,
            counts: vec![0; buckets],
            total: 0,
            underflow: 0,
            overflow: 0,
        })
    }

    /// Builds a histogram covering the data range of `data`.
    pub fn from_data(data: &[f64], buckets: usize) -> Result<Self> {
        if data.is_empty() {
            return Err(StatsError::Empty);
        }
        let sorted = crate::sorted_copy(data)?;
        let lo = sorted[0];
        // Widen slightly so the max value falls inside the last bucket.
        let hi = sorted[sorted.len() - 1];
        let hi = if hi > lo {
            hi * (1.0 + 1e-12) + 1e-300
        } else {
            lo + 1.0
        };
        let mut h = Self::new(lo, hi, buckets)?;
        for &v in data {
            h.add(v);
        }
        Ok(h)
    }

    /// Adds one observation. Out-of-range values count as under/overflow.
    pub fn add(&mut self, v: f64) {
        self.total += 1;
        if v < self.lo {
            self.underflow += 1;
        } else if v >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = ((v - self.lo) / width) as usize;
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Bucket counts (excluding under/overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations including under/overflow.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Inclusive-exclusive bounds of bucket `i`.
    pub fn bucket_bounds(&self, i: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + i as f64 * width, self.lo + (i + 1) as f64 * width)
    }

    /// Estimated fraction of values `< x`, assuming uniform spread in buckets.
    ///
    /// This is the standard histogram selectivity estimate used by
    /// traditional query optimizers.
    pub fn estimate_cdf(&self, x: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        if x <= self.lo {
            return self.underflow as f64 / self.total as f64 * if x < self.lo { 0.0 } else { 1.0 };
        }
        if x >= self.hi {
            return (self.total - self.overflow) as f64 / self.total as f64
                + if x > self.hi {
                    self.overflow as f64 / self.total as f64
                } else {
                    0.0
                };
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let pos = (x - self.lo) / width;
        let full = pos.floor() as usize;
        let frac = pos - full as f64;
        let mut below = self.underflow;
        for &c in &self.counts[..full] {
            below += c;
        }
        let partial = if full < self.counts.len() {
            self.counts[full] as f64 * frac
        } else {
            0.0
        };
        (below as f64 + partial) / self.total as f64
    }

    /// Normalized counts as a probability vector (under/overflow excluded).
    pub fn probabilities(&self) -> Vec<f64> {
        let in_range = self.total - self.underflow - self.overflow;
        if in_range == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / in_range as f64)
            .collect()
    }

    /// Shannon entropy of the bucket distribution, in bits.
    ///
    /// Used by the workload quality scorer: uniform data maximizes entropy,
    /// skewed data lowers it.
    pub fn entropy_bits(&self) -> f64 {
        self.probabilities()
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| -p * p.log2())
            .sum()
    }
}

/// Equi-depth (equi-height) histogram: bucket boundaries chosen so each
/// bucket holds (approximately) the same number of samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EquiDepthHistogram {
    /// `buckets + 1` boundaries; bucket `i` covers `[bounds[i], bounds[i+1])`.
    bounds: Vec<f64>,
    /// Samples per bucket.
    depth: Vec<u64>,
    total: u64,
}

impl EquiDepthHistogram {
    /// Builds an equi-depth histogram with `buckets` buckets from `data`.
    pub fn from_data(data: &[f64], buckets: usize) -> Result<Self> {
        if data.is_empty() {
            return Err(StatsError::Empty);
        }
        if buckets == 0 {
            return Err(StatsError::InvalidParameter("bucket count must be > 0"));
        }
        let sorted = crate::sorted_copy(data)?;
        let n = sorted.len();
        let buckets = buckets.min(n);
        let mut bounds = Vec::with_capacity(buckets + 1);
        let mut depth = Vec::with_capacity(buckets);
        bounds.push(sorted[0]);
        let mut prev = 0usize;
        for b in 1..=buckets {
            let end = b * n / buckets;
            depth.push((end - prev) as u64);
            if b < buckets {
                bounds.push(sorted[end]);
            } else {
                bounds.push(sorted[n - 1]);
            }
            prev = end;
        }
        Ok(EquiDepthHistogram {
            bounds,
            depth,
            total: n as u64,
        })
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.depth.len()
    }

    /// Bucket boundaries (`buckets + 1` values, ascending).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Estimated fraction of values `< x` with intra-bucket interpolation.
    pub fn estimate_cdf(&self, x: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let last = self.bounds.len() - 1;
        if x <= self.bounds[0] {
            return 0.0;
        }
        if x >= self.bounds[last] {
            return 1.0;
        }
        // Find bucket containing x.
        let mut below = 0u64;
        for (i, &d) in self.depth.iter().enumerate() {
            let lo = self.bounds[i];
            let hi = self.bounds[i + 1];
            if x < hi {
                let frac = if hi > lo { (x - lo) / (hi - lo) } else { 0.5 };
                return (below as f64 + d as f64 * frac) / self.total as f64;
            }
            below += d;
        }
        1.0
    }

    /// Estimated selectivity of the range predicate `lo <= v < hi`.
    pub fn estimate_range(&self, lo: f64, hi: f64) -> f64 {
        (self.estimate_cdf(hi) - self.estimate_cdf(lo)).max(0.0)
    }
}

/// Logarithmically-bucketed latency histogram (HDR-style, base-2 sub-buckets).
///
/// Records non-negative integer latencies (e.g. nanoseconds or virtual
/// ticks) with bounded relative error, supporting quantile queries. Used by
/// the driver to keep full-run latency distributions cheaply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Sub-buckets per power-of-two band.
    sub_buckets: usize,
    counts: Vec<u64>,
    total: u64,
    max_recorded: u64,
}

impl LatencyHistogram {
    /// Default number of sub-buckets per octave (≈1.5% relative error).
    pub const DEFAULT_SUB_BUCKETS: usize = 64;

    /// Creates an empty histogram with [`Self::DEFAULT_SUB_BUCKETS`].
    pub fn new() -> Self {
        Self::with_sub_buckets(Self::DEFAULT_SUB_BUCKETS)
    }

    /// Creates an empty histogram with `sub_buckets` per octave.
    ///
    /// # Panics
    /// Panics if `sub_buckets` is not a power of two or is zero.
    pub fn with_sub_buckets(sub_buckets: usize) -> Self {
        assert!(
            sub_buckets.is_power_of_two(),
            "sub_buckets must be a power of two"
        );
        LatencyHistogram {
            sub_buckets,
            counts: Vec::new(),
            total: 0,
            max_recorded: 0,
        }
    }

    fn index_of(&self, v: u64) -> usize {
        if v < self.sub_buckets as u64 {
            return v as usize;
        }
        // Band = position of highest set bit above the sub-bucket resolution.
        let sb_bits = self.sub_buckets.trailing_zeros();
        let msb = 63 - v.leading_zeros();
        let band = msb - sb_bits;
        let shifted = (v >> band) as usize; // in [sub_buckets, 2*sub_buckets)
        (band as usize + 1) * self.sub_buckets + (shifted - self.sub_buckets)
    }

    /// Lowest value that maps to slot `idx` (inverse of `index_of`).
    fn value_of(&self, idx: usize) -> u64 {
        if idx < self.sub_buckets {
            return idx as u64;
        }
        let band = idx / self.sub_buckets - 1;
        let within = idx % self.sub_buckets;
        ((self.sub_buckets + within) as u64) << band
    }

    /// Records one latency observation.
    pub fn record(&mut self, v: u64) {
        let idx = self.index_of(v);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.total += 1;
        self.max_recorded = self.max_recorded.max(v);
    }

    /// Total recorded observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max_recorded
    }

    /// Value at quantile `q` in `[0, 1]` (lower bound of the containing bucket).
    pub fn quantile(&self, q: f64) -> Result<u64> {
        if self.total == 0 {
            return Err(StatsError::Empty);
        }
        if !(0.0..=1.0).contains(&q) {
            return Err(StatsError::InvalidParameter("quantile must be in [0, 1]"));
        }
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Ok(self.value_of(idx));
            }
        }
        Ok(self.max_recorded)
    }

    /// Number of recorded values strictly greater than `threshold`.
    ///
    /// This is the SLA-violation counter of Fig. 1c: queries whose latency
    /// exceeds the SLA threshold.
    pub fn count_above(&self, threshold: u64) -> u64 {
        let mut above = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if self.value_of(idx) > threshold {
                above += c;
            }
        }
        above
    }

    /// Merges another histogram with the same sub-bucket resolution.
    pub fn merge(&mut self, other: &LatencyHistogram) -> Result<()> {
        if self.sub_buckets != other.sub_buckets {
            return Err(StatsError::InvalidParameter(
                "cannot merge histograms with different resolutions",
            ));
        }
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.max_recorded = self.max_recorded.max(other.max_recorded);
        Ok(())
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equi_width_counts_and_bounds() {
        let mut h = EquiWidthHistogram::new(0.0, 10.0, 5).unwrap();
        for v in [0.5, 1.5, 2.5, 2.6, 9.9] {
            h.add(v);
        }
        assert_eq!(h.counts(), &[2, 2, 0, 0, 1]);
        assert_eq!(h.total(), 5);
        let (lo, hi) = h.bucket_bounds(2);
        assert_eq!((lo, hi), (4.0, 6.0));
    }

    #[test]
    fn equi_width_overflow_underflow() {
        let mut h = EquiWidthHistogram::new(0.0, 1.0, 2).unwrap();
        h.add(-1.0);
        h.add(2.0);
        h.add(0.5);
        assert_eq!(h.total(), 3);
        assert_eq!(h.counts().iter().sum::<u64>(), 1);
    }

    #[test]
    fn equi_width_rejects_bad_params() {
        assert!(EquiWidthHistogram::new(0.0, 1.0, 0).is_err());
        assert!(EquiWidthHistogram::new(1.0, 1.0, 4).is_err());
        assert!(EquiWidthHistogram::new(2.0, 1.0, 4).is_err());
    }

    #[test]
    fn equi_width_from_data_covers_all() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let h = EquiWidthHistogram::from_data(&data, 10).unwrap();
        assert_eq!(h.counts().iter().sum::<u64>(), 100);
    }

    #[test]
    fn equi_width_cdf_monotone() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64).sqrt()).collect();
        let h = EquiWidthHistogram::from_data(&data, 32).unwrap();
        let mut prev = -1.0;
        for i in 0..50 {
            let x = i as f64 * 0.7;
            let c = h.estimate_cdf(x);
            assert!(c >= prev - 1e-12, "cdf not monotone at {x}");
            assert!((0.0..=1.0 + 1e-9).contains(&c));
            prev = c;
        }
    }

    #[test]
    fn entropy_uniform_vs_skewed() {
        let uniform: Vec<f64> = (0..1024).map(|i| i as f64).collect();
        let skewed: Vec<f64> = (0..1024)
            .map(|i| if i < 1000 { 1.0 } else { i as f64 })
            .collect();
        let hu = EquiWidthHistogram::from_data(&uniform, 16).unwrap();
        let hs = EquiWidthHistogram::from_data(&skewed, 16).unwrap();
        assert!(hu.entropy_bits() > hs.entropy_bits());
        assert!(hu.entropy_bits() <= 4.0 + 1e-9); // log2(16)
    }

    #[test]
    fn equi_depth_even_buckets() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let h = EquiDepthHistogram::from_data(&data, 4).unwrap();
        assert_eq!(h.buckets(), 4);
        assert_eq!(h.bounds().len(), 5);
        // Each bucket holds 25 samples.
        assert!((h.estimate_cdf(25.0) - 0.25).abs() < 0.02);
        assert!((h.estimate_cdf(50.0) - 0.5).abs() < 0.02);
    }

    #[test]
    fn equi_depth_skewed_adapts() {
        // 90% of mass at small values: equi-depth boundaries concentrate there.
        let mut data: Vec<f64> = (0..900).map(|i| i as f64 / 900.0).collect();
        data.extend((0..100).map(|i| 100.0 + i as f64));
        let h = EquiDepthHistogram::from_data(&data, 10).unwrap();
        // 9 of 10 buckets should be below 1.0.
        let below_one = h.bounds().iter().filter(|&&b| b <= 1.0).count();
        assert!(below_one >= 9, "bounds {:?}", h.bounds());
    }

    #[test]
    fn equi_depth_range_estimate() {
        let data: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let h = EquiDepthHistogram::from_data(&data, 20).unwrap();
        let sel = h.estimate_range(100.0, 300.0);
        assert!((sel - 0.2).abs() < 0.03, "sel = {sel}");
    }

    #[test]
    fn equi_depth_duplicate_heavy() {
        let data = vec![5.0; 100];
        let h = EquiDepthHistogram::from_data(&data, 4).unwrap();
        assert_eq!(h.estimate_cdf(4.9), 0.0);
        assert_eq!(h.estimate_cdf(5.1), 1.0);
    }

    #[test]
    fn latency_histogram_exact_small_values() {
        let mut h = LatencyHistogram::new();
        for v in [1u64, 2, 3, 3, 10, 63] {
            h.record(v);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.quantile(0.0).unwrap(), 1);
        assert_eq!(h.quantile(1.0).unwrap(), 63);
        assert_eq!(h.count_above(3), 2);
    }

    #[test]
    fn latency_histogram_relative_error() {
        let mut h = LatencyHistogram::new();
        let values = [100u64, 1_000, 10_000, 1_000_000, 123_456_789];
        for &v in &values {
            h.record(v);
        }
        // Every quantile must come back within ~2% of a recorded value.
        for (i, &v) in values.iter().enumerate() {
            let q = (i as f64 + 0.5) / values.len() as f64;
            let got = h.quantile(q).unwrap();
            let rel = (got as f64 - v as f64).abs() / v as f64;
            assert!(rel < 0.02, "value {v} came back as {got} (rel err {rel})");
        }
    }

    #[test]
    fn latency_histogram_count_above() {
        let mut h = LatencyHistogram::new();
        for v in 0..1000u64 {
            h.record(v * 100);
        }
        let above = h.count_above(50_000);
        // values 50100.. -> roughly 499 above; bucket granularity allows slack.
        assert!((above as i64 - 499).abs() < 20, "above = {above}");
    }

    #[test]
    fn latency_histogram_merge() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b).unwrap();
        assert_eq!(a.total(), 2);
        assert_eq!(a.max(), 1_000_000);
        let mismatched = LatencyHistogram::with_sub_buckets(32);
        assert!(a.merge(&mismatched).is_err());
    }

    #[test]
    fn latency_histogram_empty_quantile_errors() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), Err(StatsError::Empty));
    }

    #[test]
    fn latency_index_value_roundtrip() {
        let h = LatencyHistogram::new();
        for v in [0u64, 1, 63, 64, 65, 127, 128, 1000, 65_535, 1 << 40] {
            let idx = h.index_of(v);
            let lo = h.value_of(idx);
            assert!(lo <= v, "lo {lo} > v {v}");
            // Next slot's lower bound must exceed v.
            let hi = h.value_of(idx + 1);
            assert!(hi > v, "hi {hi} <= v {v}");
        }
    }
}
