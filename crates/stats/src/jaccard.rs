//! Jaccard similarity over sets.
//!
//! The paper (§V-D.1) proposes estimating *workload* similarity as "the
//! Jaccard similarity between the sets of all subtrees of the query tree for
//! all queries in the workload". `lsbench-query` enumerates those subtrees
//! (as stable hashes); this module computes the set similarity.

use std::collections::HashSet;
use std::hash::Hash;

/// Jaccard similarity `|A ∩ B| / |A ∪ B|` of two sets.
///
/// Returns `1.0` when both sets are empty (identical empty workloads).
pub fn jaccard_similarity<T: Eq + Hash>(a: &HashSet<T>, b: &HashSet<T>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let intersection = a.intersection(b).count() as f64;
    let union = (a.len() + b.len()) as f64 - intersection;
    intersection / union
}

/// Jaccard distance `1 - similarity`, a proper metric on finite sets.
pub fn jaccard_distance<T: Eq + Hash>(a: &HashSet<T>, b: &HashSet<T>) -> f64 {
    1.0 - jaccard_similarity(a, b)
}

/// Jaccard similarity computed from iterators of items (deduplicated here).
pub fn jaccard_of_items<T, I, J>(a: I, b: J) -> f64
where
    T: Eq + Hash,
    I: IntoIterator<Item = T>,
    J: IntoIterator<Item = T>,
{
    let sa: HashSet<T> = a.into_iter().collect();
    let sb: HashSet<T> = b.into_iter().collect();
    jaccard_similarity(&sa, &sb)
}

/// Weighted (multiset) Jaccard similarity from item counts:
/// `Σ min(w_a, w_b) / Σ max(w_a, w_b)`.
///
/// More faithful when a workload repeats the same query shape with very
/// different frequencies.
pub fn weighted_jaccard<T: Eq + Hash + Clone>(
    a: &std::collections::HashMap<T, u64>,
    b: &std::collections::HashMap<T, u64>,
) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let mut min_sum = 0u64;
    let mut max_sum = 0u64;
    for (k, &wa) in a {
        let wb = b.get(k).copied().unwrap_or(0);
        min_sum += wa.min(wb);
        max_sum += wa.max(wb);
    }
    for (k, &wb) in b {
        if !a.contains_key(k) {
            max_sum += wb;
        }
    }
    if max_sum == 0 {
        1.0
    } else {
        min_sum as f64 / max_sum as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn set(items: &[u32]) -> HashSet<u32> {
        items.iter().copied().collect()
    }

    #[test]
    fn identical_sets() {
        let a = set(&[1, 2, 3]);
        assert_eq!(jaccard_similarity(&a, &a), 1.0);
        assert_eq!(jaccard_distance(&a, &a), 0.0);
    }

    #[test]
    fn disjoint_sets() {
        let a = set(&[1, 2]);
        let b = set(&[3, 4]);
        assert_eq!(jaccard_similarity(&a, &b), 0.0);
        assert_eq!(jaccard_distance(&a, &b), 1.0);
    }

    #[test]
    fn partial_overlap() {
        let a = set(&[1, 2, 3]);
        let b = set(&[2, 3, 4]);
        assert!((jaccard_similarity(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn both_empty_is_similar() {
        let a: HashSet<u32> = HashSet::new();
        assert_eq!(jaccard_similarity(&a, &a), 1.0);
    }

    #[test]
    fn one_empty_is_dissimilar() {
        let a = set(&[1]);
        let b: HashSet<u32> = HashSet::new();
        assert_eq!(jaccard_similarity(&a, &b), 0.0);
    }

    #[test]
    fn of_items_dedups() {
        let sim = jaccard_of_items(vec![1, 1, 2, 2], vec![2, 2, 3, 3]);
        assert!((sim - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn symmetric() {
        let a = set(&[1, 5, 9]);
        let b = set(&[5, 7]);
        assert_eq!(jaccard_similarity(&a, &b), jaccard_similarity(&b, &a));
    }

    #[test]
    fn weighted_matches_unweighted_on_unit_weights() {
        let a: HashMap<u32, u64> = [(1, 1), (2, 1), (3, 1)].into_iter().collect();
        let b: HashMap<u32, u64> = [(2, 1), (3, 1), (4, 1)].into_iter().collect();
        assert!((weighted_jaccard(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_accounts_for_frequency() {
        // Same support but wildly different frequencies -> low similarity.
        let a: HashMap<u32, u64> = [(1, 100), (2, 1)].into_iter().collect();
        let b: HashMap<u32, u64> = [(1, 1), (2, 100)].into_iter().collect();
        let sim = weighted_jaccard(&a, &b);
        assert!(sim < 0.05, "sim = {sim}");
    }

    #[test]
    fn weighted_empty() {
        let e: HashMap<u32, u64> = HashMap::new();
        assert_eq!(weighted_jaccard(&e, &e), 1.0);
        let a: HashMap<u32, u64> = [(1, 1)].into_iter().collect();
        assert_eq!(weighted_jaccard(&a, &e), 0.0);
    }
}
