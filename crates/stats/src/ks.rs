//! Two-sample Kolmogorov–Smirnov test.
//!
//! The paper (§V-D.1) proposes the KS statistic as one way to quantify how
//! far two *data distributions* are from each other — the Φ axis of
//! Fig. 1a. The statistic `D` is the supremum distance between the two
//! empirical CDFs, in `[0, 1]`, so it directly serves as a normalized
//! distance.

use crate::{sorted_copy, Result, StatsError};
use serde::{Deserialize, Serialize};

/// Result of a two-sample KS test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KsResult {
    /// The KS statistic `D = sup |F1(x) - F2(x)|`, in `[0, 1]`.
    pub statistic: f64,
    /// Asymptotic two-sided p-value (Kolmogorov distribution approximation).
    pub p_value: f64,
    /// Sample sizes of the two inputs.
    pub n1: usize,
    /// Sample size of the second input.
    pub n2: usize,
}

/// Computes the two-sample KS statistic `D` between `a` and `b`.
///
/// Runs in `O(n log n)` and is exact (no binning). Returns an error on
/// empty inputs or NaNs.
pub fn ks_statistic(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.is_empty() || b.is_empty() {
        return Err(StatsError::Empty);
    }
    let sa = sorted_copy(a)?;
    let sb = sorted_copy(b)?;
    let (n1, n2) = (sa.len() as f64, sb.len() as f64);
    let mut i = 0usize;
    let mut j = 0usize;
    let mut d: f64 = 0.0;
    while i < sa.len() && j < sb.len() {
        let x = sa[i].min(sb[j]);
        while i < sa.len() && sa[i] <= x {
            i += 1;
        }
        while j < sb.len() && sb[j] <= x {
            j += 1;
        }
        let f1 = i as f64 / n1;
        let f2 = j as f64 / n2;
        d = d.max((f1 - f2).abs());
    }
    Ok(d)
}

/// Two-sample KS test with asymptotic p-value.
///
/// The p-value uses the Kolmogorov limiting distribution
/// `Q(λ) = 2 Σ (-1)^{k-1} e^{-2 k² λ²}` with the effective sample size
/// `n_e = n1·n2/(n1+n2)` and the Stephens small-sample correction.
pub fn ks_test(a: &[f64], b: &[f64]) -> Result<KsResult> {
    let d = ks_statistic(a, b)?;
    let n1 = a.len();
    let n2 = b.len();
    let ne = (n1 as f64 * n2 as f64) / (n1 as f64 + n2 as f64);
    let sqrt_ne = ne.sqrt();
    let lambda = (sqrt_ne + 0.12 + 0.11 / sqrt_ne) * d;
    Ok(KsResult {
        statistic: d,
        p_value: kolmogorov_q(lambda),
        n1,
        n2,
    })
}

/// Kolmogorov distribution survival function `Q(λ)`.
fn kolmogorov_q(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64) * (k as f64) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::distributions::Distribution;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identical_samples_have_zero_distance() {
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let d = ks_statistic(&a, &a).unwrap();
        assert_eq!(d, 0.0);
        let r = ks_test(&a, &a).unwrap();
        assert!(r.p_value > 0.99);
    }

    #[test]
    fn disjoint_samples_have_distance_one() {
        let a: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let b: Vec<f64> = (100..150).map(|i| i as f64).collect();
        let d = ks_statistic(&a, &b).unwrap();
        assert_eq!(d, 1.0);
        let r = ks_test(&a, &b).unwrap();
        assert!(r.p_value < 1e-6);
    }

    #[test]
    fn known_small_case() {
        // F1 steps at 1,2,3; F2 steps at 2,3,4. Max gap is 1/3.
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 3.0, 4.0];
        let d = ks_statistic(&a, &b).unwrap();
        assert!((d - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn symmetric() {
        let a = [1.0, 5.0, 9.0, 2.0];
        let b = [3.0, 3.5, 8.0];
        assert_eq!(ks_statistic(&a, &b).unwrap(), ks_statistic(&b, &a).unwrap());
    }

    #[test]
    fn same_distribution_usually_accepted() {
        let mut rng = StdRng::seed_from_u64(1);
        let dist = rand::distributions::Uniform::new(0.0, 1.0);
        let a: Vec<f64> = (0..500).map(|_| dist.sample(&mut rng)).collect();
        let b: Vec<f64> = (0..500).map(|_| dist.sample(&mut rng)).collect();
        let r = ks_test(&a, &b).unwrap();
        assert!(r.p_value > 0.01, "p = {}", r.p_value);
        assert!(r.statistic < 0.15);
    }

    #[test]
    fn shifted_distribution_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let d1 = rand::distributions::Uniform::new(0.0, 1.0);
        let d2 = rand::distributions::Uniform::new(0.5, 1.5);
        let a: Vec<f64> = (0..500).map(|_| d1.sample(&mut rng)).collect();
        let b: Vec<f64> = (0..500).map(|_| d2.sample(&mut rng)).collect();
        let r = ks_test(&a, &b).unwrap();
        assert!(r.p_value < 1e-6);
        assert!((r.statistic - 0.5).abs() < 0.1);
    }

    #[test]
    fn empty_input_errors() {
        assert_eq!(ks_statistic(&[], &[1.0]), Err(StatsError::Empty));
        assert_eq!(ks_statistic(&[1.0], &[]), Err(StatsError::Empty));
    }

    #[test]
    fn nan_input_errors() {
        assert_eq!(ks_statistic(&[f64::NAN], &[1.0]), Err(StatsError::NanInput));
    }

    #[test]
    fn statistic_in_unit_interval() {
        let a = [0.0, 0.0, 1.0, 2.0];
        let b = [0.5, 0.5, 0.5];
        let d = ks_statistic(&a, &b).unwrap();
        assert!((0.0..=1.0).contains(&d));
    }

    #[test]
    fn duplicates_handled() {
        let a = [1.0, 1.0, 1.0, 1.0];
        let b = [1.0, 1.0, 2.0, 2.0];
        let d = ks_statistic(&a, &b).unwrap();
        assert!((d - 0.5).abs() < 1e-12);
    }
}
