//! Statistical primitives for the learned-systems benchmark.
//!
//! This crate provides every statistical building block the benchmark
//! framework (`lsbench-core`) needs:
//!
//! * [`descriptive`] — exact summaries: moments, quantiles, five-number
//!   summaries, and the box-plot statistics used by the specialization
//!   metric (Fig. 1a of the paper).
//! * [`streaming`] — single-pass estimators: Welford moments, reservoir
//!   sampling, the P² quantile estimator, and exponential moving averages,
//!   used by the driver to keep per-phase statistics without retaining all
//!   samples.
//! * [`histogram`] — equi-width, equi-depth, and logarithmic latency
//!   histograms.
//! * [`ks`] — the two-sample Kolmogorov–Smirnov statistic used as the Φ
//!   data-distribution distance (§V-D.1 of the paper).
//! * [`mmd`] — Maximum Mean Discrepancy with an RBF kernel, the alternative
//!   Φ distance proposed by the paper.
//! * [`jaccard`] — Jaccard similarity over sets, used for workload
//!   similarity over query subtrees.
//! * [`timeseries`] — cumulative-completion curves, trapezoid areas, and
//!   area differences backing the adaptability metric (Fig. 1b).
//!
//! All functions are deterministic and allocation-conscious; none of them
//! panic on empty input — fallible operations return [`StatsError`].

#![warn(missing_docs)]

pub mod descriptive;
pub mod histogram;
pub mod jaccard;
pub mod ks;
pub mod mmd;
pub mod streaming;
pub mod timeseries;

pub use descriptive::{BoxPlot, FiveNumber, Summary};
pub use histogram::{EquiDepthHistogram, EquiWidthHistogram, LatencyHistogram};
pub use jaccard::{jaccard_distance, jaccard_similarity};
pub use ks::{ks_statistic, ks_test, KsResult};
pub use mmd::{median_heuristic_bandwidth, mmd_rbf};
pub use streaming::{Ema, OnlineStats, P2Quantile, ReservoirSampler};
pub use timeseries::{CumulativeCurve, IntervalCounts, TimeSeries};

/// Errors produced by statistical routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsError {
    /// The operation requires at least one sample.
    Empty,
    /// The operation requires more samples than were provided.
    InsufficientSamples {
        /// How many samples the operation needs.
        needed: usize,
        /// How many samples were provided.
        got: usize,
    },
    /// A parameter was outside its valid domain (e.g. a quantile not in `[0, 1]`).
    InvalidParameter(&'static str),
    /// Input contained a NaN, which has no defined ordering.
    NanInput,
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::Empty => write!(f, "operation requires at least one sample"),
            StatsError::InsufficientSamples { needed, got } => {
                write!(f, "operation requires {needed} samples, got {got}")
            }
            StatsError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            StatsError::NanInput => write!(f, "input contained NaN"),
        }
    }
}

impl std::error::Error for StatsError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, StatsError>;

/// Sorts a copy of `data`, returning an error if any element is NaN.
///
/// Many routines in this crate need sorted input; this helper centralizes
/// the NaN check so ordering is always total.
pub(crate) fn sorted_copy(data: &[f64]) -> Result<Vec<f64>> {
    if data.iter().any(|v| v.is_nan()) {
        return Err(StatsError::NanInput);
    }
    let mut copy = data.to_vec();
    copy.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered above"));
    Ok(copy)
}
