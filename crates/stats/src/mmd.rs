//! Maximum Mean Discrepancy (MMD) with an RBF kernel.
//!
//! The paper (§V-D.1) names MMD (Gretton et al., NeurIPS 2006) as an
//! alternative to the KS test for quantifying how far two *data
//! distributions* are apart. MMD embeds each distribution into an RKHS and
//! measures the distance between the embeddings; with a characteristic
//! kernel (like the Gaussian RBF used here) MMD is zero iff the
//! distributions are identical.
//!
//! We implement the unbiased quadratic-time estimator `MMD²_u` and the
//! standard median heuristic for bandwidth selection. Inputs are 1-D
//! samples, which matches the benchmark's use (key distributions); the
//! paper only needs a *sortable* Φ value, not a precise one.

use crate::{Result, StatsError};

/// Gaussian RBF kernel `k(x, y) = exp(-(x-y)² / (2σ²))`.
#[inline]
fn rbf(x: f64, y: f64, two_sigma_sq: f64) -> f64 {
    let d = x - y;
    (-(d * d) / two_sigma_sq).exp()
}

/// Median-heuristic bandwidth: the median of pairwise distances between the
/// pooled samples. Falls back to `1.0` when the median distance is zero
/// (e.g. constant data), so the kernel stays well-defined.
///
/// For large inputs the pairwise set is subsampled deterministically (first
/// `cap` points of each sample) — the heuristic only needs a scale, not an
/// exact median.
pub fn median_heuristic_bandwidth(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.is_empty() || b.is_empty() {
        return Err(StatsError::Empty);
    }
    if a.iter().chain(b.iter()).any(|v| v.is_nan()) {
        return Err(StatsError::NanInput);
    }
    const CAP: usize = 256;
    let pooled: Vec<f64> = a
        .iter()
        .take(CAP)
        .chain(b.iter().take(CAP))
        .copied()
        .collect();
    let mut dists = Vec::with_capacity(pooled.len() * (pooled.len() - 1) / 2);
    for i in 0..pooled.len() {
        for j in (i + 1)..pooled.len() {
            dists.push((pooled[i] - pooled[j]).abs());
        }
    }
    if dists.is_empty() {
        return Ok(1.0);
    }
    dists.sort_by(|x, y| x.partial_cmp(y).expect("NaN filtered above"));
    let median = dists[dists.len() / 2];
    Ok(if median > 0.0 { median } else { 1.0 })
}

/// Unbiased `MMD²_u` estimate between samples `a` and `b` with an RBF kernel
/// of bandwidth `sigma` (pass `None` to use the median heuristic).
///
/// Requires at least two samples on each side. The unbiased estimator can be
/// slightly negative for identical distributions; callers using it as a
/// distance should clamp at zero (see [`mmd_distance`]).
pub fn mmd_rbf(a: &[f64], b: &[f64], sigma: Option<f64>) -> Result<f64> {
    if a.len() < 2 || b.len() < 2 {
        return Err(StatsError::InsufficientSamples {
            needed: 2,
            got: a.len().min(b.len()),
        });
    }
    if a.iter().chain(b.iter()).any(|v| v.is_nan()) {
        return Err(StatsError::NanInput);
    }
    let sigma = match sigma {
        Some(s) if s > 0.0 => s,
        Some(_) => return Err(StatsError::InvalidParameter("sigma must be positive")),
        None => median_heuristic_bandwidth(a, b)?,
    };
    let two_sigma_sq = 2.0 * sigma * sigma;
    let m = a.len() as f64;
    let n = b.len() as f64;

    let mut k_xx = 0.0;
    for i in 0..a.len() {
        for j in 0..a.len() {
            if i != j {
                k_xx += rbf(a[i], a[j], two_sigma_sq);
            }
        }
    }
    let mut k_yy = 0.0;
    for i in 0..b.len() {
        for j in 0..b.len() {
            if i != j {
                k_yy += rbf(b[i], b[j], two_sigma_sq);
            }
        }
    }
    let mut k_xy = 0.0;
    for &x in a {
        for &y in b {
            k_xy += rbf(x, y, two_sigma_sq);
        }
    }
    Ok(k_xx / (m * (m - 1.0)) + k_yy / (n * (n - 1.0)) - 2.0 * k_xy / (m * n))
}

/// MMD as a non-negative distance: `sqrt(max(0, MMD²_u))`.
pub fn mmd_distance(a: &[f64], b: &[f64], sigma: Option<f64>) -> Result<f64> {
    Ok(mmd_rbf(a, b, sigma)?.max(0.0).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::distributions::Distribution;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn uniform_sample(lo: f64, hi: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = rand::distributions::Uniform::new(lo, hi);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn same_distribution_near_zero() {
        let a = uniform_sample(0.0, 1.0, 200, 1);
        let b = uniform_sample(0.0, 1.0, 200, 2);
        let m = mmd_rbf(&a, &b, None).unwrap();
        assert!(m.abs() < 0.02, "mmd² = {m}");
    }

    #[test]
    fn different_distributions_positive() {
        let a = uniform_sample(0.0, 1.0, 200, 3);
        let b = uniform_sample(5.0, 6.0, 200, 4);
        let m = mmd_rbf(&a, &b, None).unwrap();
        assert!(m > 0.1, "mmd² = {m}");
    }

    #[test]
    fn distance_orders_by_shift() {
        // Larger mean shift => larger MMD distance (with a fixed bandwidth so
        // the distances are comparable).
        let a = uniform_sample(0.0, 1.0, 150, 5);
        let near = uniform_sample(0.3, 1.3, 150, 6);
        let far = uniform_sample(3.0, 4.0, 150, 7);
        let d_near = mmd_distance(&a, &near, Some(1.0)).unwrap();
        let d_far = mmd_distance(&a, &far, Some(1.0)).unwrap();
        assert!(d_near < d_far, "{d_near} !< {d_far}");
    }

    #[test]
    fn identical_samples_distance_zero() {
        let a = uniform_sample(0.0, 1.0, 100, 8);
        let d = mmd_distance(&a, &a, None).unwrap();
        assert!(d < 1e-6);
    }

    #[test]
    fn symmetric() {
        let a = uniform_sample(0.0, 1.0, 60, 9);
        let b = uniform_sample(0.5, 2.0, 80, 10);
        let ab = mmd_rbf(&a, &b, Some(0.7)).unwrap();
        let ba = mmd_rbf(&b, &a, Some(0.7)).unwrap();
        assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn rejects_tiny_and_bad_input() {
        assert!(matches!(
            mmd_rbf(&[1.0], &[1.0, 2.0], None),
            Err(StatsError::InsufficientSamples { .. })
        ));
        assert_eq!(
            mmd_rbf(&[1.0, f64::NAN], &[1.0, 2.0], None),
            Err(StatsError::NanInput)
        );
        assert!(matches!(
            mmd_rbf(&[1.0, 2.0], &[1.0, 2.0], Some(-1.0)),
            Err(StatsError::InvalidParameter(_))
        ));
    }

    #[test]
    fn median_heuristic_constant_data_falls_back() {
        let a = [3.0, 3.0, 3.0];
        let b = [3.0, 3.0];
        assert_eq!(median_heuristic_bandwidth(&a, &b).unwrap(), 1.0);
    }

    #[test]
    fn median_heuristic_scales_with_data() {
        let a = uniform_sample(0.0, 1.0, 100, 11);
        let b = uniform_sample(0.0, 1000.0, 100, 12);
        let small = median_heuristic_bandwidth(&a, &a).unwrap();
        let large = median_heuristic_bandwidth(&b, &b).unwrap();
        assert!(large > small * 10.0);
    }
}
