//! Single-pass (streaming) statistics.
//!
//! The benchmark driver observes millions of per-query latencies; retaining
//! them all per phase would dominate memory. These estimators maintain
//! summaries in O(1) space:
//!
//! * [`OnlineStats`] — Welford's algorithm for mean/variance (numerically
//!   stable, mergeable across worker threads).
//! * [`ReservoirSampler`] — uniform fixed-size sample of an unbounded stream
//!   (Vitter's Algorithm R), used to feed exact quantile/box-plot code.
//! * [`P2Quantile`] — the Jain/Chlamtac P² estimator for a single quantile
//!   without storing samples, used for live SLA-threshold tracking.
//! * [`Ema`] — exponential moving average, used to smooth instantaneous
//!   throughput when detecting adaptation completion.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Welford online mean/variance accumulator.
///
/// Mergeable: two accumulators built on disjoint streams can be combined
/// with [`OnlineStats::merge`] to obtain the statistics of the union.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = value - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance; 0 with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count > 1 {
            self.m2 / (self.count - 1) as f64
        } else {
            0.0
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (Chan et al. parallel update).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Fixed-capacity uniform reservoir sample (Algorithm R).
#[derive(Debug, Clone)]
pub struct ReservoirSampler {
    capacity: usize,
    seen: u64,
    sample: Vec<f64>,
}

impl ReservoirSampler {
    /// Creates a sampler retaining at most `capacity` values.
    ///
    /// # Panics
    /// Panics if `capacity` is zero — a zero-size reservoir is meaningless.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        ReservoirSampler {
            capacity,
            seen: 0,
            sample: Vec::with_capacity(capacity),
        }
    }

    /// Offers one value to the reservoir.
    pub fn push<R: Rng>(&mut self, value: f64, rng: &mut R) {
        self.seen += 1;
        if self.sample.len() < self.capacity {
            self.sample.push(value);
        } else {
            let idx = rng.gen_range(0..self.seen);
            if (idx as usize) < self.capacity {
                self.sample[idx as usize] = value;
            }
        }
    }

    /// The values currently retained (unordered).
    pub fn sample(&self) -> &[f64] {
        &self.sample
    }

    /// Total number of values offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }
}

/// P² single-quantile estimator (Jain & Chlamtac, 1985).
///
/// Tracks one quantile of a stream using five markers, without storing
/// samples. Accuracy is excellent for unimodal latency distributions, which
/// is what the SLA calibration needs.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights.
    heights: [f64; 5],
    /// Marker positions (1-based).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments.
    increments: [f64; 5],
    count: usize,
    /// First five observations, buffered until initialization.
    init: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for quantile `q` in `(0, 1)`.
    ///
    /// # Panics
    /// Panics if `q` is outside `(0, 1)`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0, 1)");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            init: Vec::with_capacity(5),
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        if self.init.len() < 5 {
            self.init.push(value);
            if self.init.len() == 5 {
                self.init
                    .sort_by(|a, b| a.partial_cmp(b).expect("latencies are not NaN"));
                for (h, v) in self.heights.iter_mut().zip(&self.init) {
                    *h = *v;
                }
            }
            return;
        }
        // Find cell k such that heights[k] <= value < heights[k+1].
        let k = if value < self.heights[0] {
            self.heights[0] = value;
            0
        } else if value >= self.heights[4] {
            self.heights[4] = value;
            3
        } else {
            (0..4)
                .find(|&i| value < self.heights[i + 1])
                .expect("value within marker range")
        };
        for pos in self.positions.iter_mut().skip(k + 1) {
            *pos += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(&self.increments) {
            *d += inc;
        }
        // Adjust interior markers with parabolic interpolation.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right = self.positions[i + 1] - self.positions[i];
            let left = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d_sign = d.signum();
                let new_height = self.parabolic(i, d_sign);
                let new_height =
                    if self.heights[i - 1] < new_height && new_height < self.heights[i + 1] {
                        new_height
                    } else {
                        self.linear(i, d_sign)
                    };
                self.heights[i] = new_height;
                self.positions[i] += d_sign;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let p = &self.positions;
        let h = &self.heights;
        h[i] + d / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + d) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - d) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current estimate of the tracked quantile.
    ///
    /// With fewer than five observations, falls back to the exact quantile of
    /// the buffered values; returns `None` when no value has been observed.
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.init.len() < 5 {
            let mut copy = self.init.clone();
            copy.sort_by(|a, b| a.partial_cmp(b).expect("latencies are not NaN"));
            return Some(crate::descriptive::quantile_sorted(&copy, self.q));
        }
        Some(self.heights[2])
    }

    /// Number of observations so far.
    pub fn count(&self) -> usize {
        self.count
    }
}

/// Exponential moving average with smoothing factor `alpha` in `(0, 1]`.
#[derive(Debug, Clone, Copy)]
pub struct Ema {
    alpha: f64,
    value: Option<f64>,
}

impl Ema {
    /// Creates an EMA with the given smoothing factor.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ema { alpha, value: None }
    }

    /// Adds one observation and returns the updated average.
    pub fn push(&mut self, v: f64) -> f64 {
        let next = match self.value {
            None => v,
            Some(prev) => prev + self.alpha * (v - prev),
        };
        self.value = Some(next);
        next
    }

    /// Current average, if any observation has been made.
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive::Summary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn online_matches_exact() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 5.0).collect();
        let mut os = OnlineStats::new();
        for &v in &data {
            os.push(v);
        }
        let exact = Summary::of(&data).unwrap();
        assert!((os.mean() - exact.mean).abs() < 1e-9);
        assert!((os.variance() - exact.variance).abs() < 1e-9);
        assert_eq!(os.count(), 100);
        assert_eq!(os.min(), exact.min);
        assert_eq!(os.max(), exact.max);
    }

    #[test]
    fn online_merge_equals_combined() {
        let a: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let b: Vec<f64> = (50..120).map(|i| (i as f64) * 1.5).collect();
        let mut sa = OnlineStats::new();
        let mut sb = OnlineStats::new();
        for &v in &a {
            sa.push(v);
        }
        for &v in &b {
            sb.push(v);
        }
        let mut merged = sa;
        merged.merge(&sb);
        let mut all = a;
        all.extend(b);
        let exact = Summary::of(&all).unwrap();
        assert!((merged.mean() - exact.mean).abs() < 1e-9);
        assert!((merged.variance() - exact.variance).abs() < 1e-6);
    }

    #[test]
    fn online_merge_with_empty() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn reservoir_keeps_capacity() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut r = ReservoirSampler::new(10);
        for i in 0..1000 {
            r.push(i as f64, &mut rng);
        }
        assert_eq!(r.sample().len(), 10);
        assert_eq!(r.seen(), 1000);
    }

    #[test]
    fn reservoir_small_stream_keeps_all() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut r = ReservoirSampler::new(100);
        for i in 0..5 {
            r.push(i as f64, &mut rng);
        }
        assert_eq!(r.sample(), &[0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn reservoir_is_roughly_uniform() {
        // Mean of a uniform sample over [0, 10000) should be near 5000.
        let mut rng = StdRng::seed_from_u64(42);
        let mut r = ReservoirSampler::new(500);
        for i in 0..10_000 {
            r.push(i as f64, &mut rng);
        }
        let mean = r.sample().iter().sum::<f64>() / r.sample().len() as f64;
        assert!(
            (mean - 5000.0).abs() < 600.0,
            "mean {mean} too far from 5000"
        );
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn reservoir_rejects_zero_capacity() {
        let _ = ReservoirSampler::new(0);
    }

    #[test]
    fn p2_tracks_median_of_uniform() {
        let mut p2 = P2Quantile::new(0.5);
        // Deterministic pseudo-shuffled uniform stream.
        for i in 0..10_000u64 {
            let v = ((i * 2654435761) % 10_000) as f64;
            p2.push(v);
        }
        let est = p2.estimate().unwrap();
        assert!(
            (est - 5000.0).abs() < 300.0,
            "median estimate {est} too far from 5000"
        );
    }

    #[test]
    fn p2_tracks_p99() {
        let mut p2 = P2Quantile::new(0.99);
        for i in 0..100_000u64 {
            let v = ((i * 2654435761) % 1000) as f64;
            p2.push(v);
        }
        let est = p2.estimate().unwrap();
        assert!((est - 990.0).abs() < 20.0, "p99 estimate {est} off");
    }

    #[test]
    fn p2_few_samples_exact() {
        let mut p2 = P2Quantile::new(0.5);
        assert!(p2.estimate().is_none());
        p2.push(3.0);
        assert_eq!(p2.estimate(), Some(3.0));
        p2.push(1.0);
        p2.push(2.0);
        assert_eq!(p2.estimate(), Some(2.0));
        assert_eq!(p2.count(), 3);
    }

    #[test]
    fn ema_converges() {
        let mut ema = Ema::new(0.5);
        assert!(ema.value().is_none());
        for _ in 0..50 {
            ema.push(10.0);
        }
        assert!((ema.value().unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn ema_first_value_is_identity() {
        let mut ema = Ema::new(0.1);
        assert_eq!(ema.push(42.0), 42.0);
    }
}
