//! Time series and cumulative-completion curves.
//!
//! Fig. 1b of the paper plots *cumulative queries completed over time*: the
//! slope of the curve is the instantaneous throughput, and adaptability is
//! summarized as the *area difference* between the system's curve and an
//! ideal constant-throughput system (or between two systems). This module
//! provides the curve representation and the area computations.

use crate::{Result, StatsError};
use serde::{Deserialize, Serialize};

/// A piecewise-linear time series of `(time, value)` points with
/// non-decreasing time.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Creates a series from points, validating time monotonicity.
    pub fn from_points(points: Vec<(f64, f64)>) -> Result<Self> {
        for w in points.windows(2) {
            if w[1].0 < w[0].0 {
                return Err(StatsError::InvalidParameter(
                    "time series must be sorted by time",
                ));
            }
        }
        if points.iter().any(|(t, v)| t.is_nan() || v.is_nan()) {
            return Err(StatsError::NanInput);
        }
        Ok(TimeSeries { points })
    }

    /// Appends a point; `t` must not precede the last time.
    pub fn push(&mut self, t: f64, v: f64) -> Result<()> {
        if t.is_nan() || v.is_nan() {
            return Err(StatsError::NanInput);
        }
        if let Some(&(last_t, _)) = self.points.last() {
            if t < last_t {
                return Err(StatsError::InvalidParameter("time must be non-decreasing"));
            }
        }
        self.points.push((t, v));
        Ok(())
    }

    /// The underlying points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Linear interpolation of the value at time `t`.
    ///
    /// Clamps to the first/last value outside the covered range.
    pub fn value_at(&self, t: f64) -> Result<f64> {
        if self.points.is_empty() {
            return Err(StatsError::Empty);
        }
        let first = self.points[0];
        let last = self.points[self.points.len() - 1];
        if t <= first.0 {
            return Ok(first.1);
        }
        if t >= last.0 {
            return Ok(last.1);
        }
        // Binary search for the segment containing t.
        let idx = self.points.partition_point(|&(pt, _)| pt <= t);
        let (t0, v0) = self.points[idx - 1];
        let (t1, v1) = self.points[idx];
        if t1 == t0 {
            return Ok(v1);
        }
        Ok(v0 + (v1 - v0) * (t - t0) / (t1 - t0))
    }

    /// Trapezoidal area under the curve over its full time span.
    pub fn area(&self) -> Result<f64> {
        if self.points.is_empty() {
            return Err(StatsError::Empty);
        }
        let mut area = 0.0;
        for w in self.points.windows(2) {
            let (t0, v0) = w[0];
            let (t1, v1) = w[1];
            area += (t1 - t0) * (v0 + v1) / 2.0;
        }
        Ok(area)
    }

    /// Signed area between `self` and `other` over their overlapping span:
    /// `∫ (self(t) - other(t)) dt`.
    ///
    /// This is the paper's *area difference* single-value adaptability score.
    /// A positive result means `self` stays above `other` on balance.
    pub fn area_difference(&self, other: &TimeSeries) -> Result<f64> {
        if self.points.is_empty() || other.points.is_empty() {
            return Err(StatsError::Empty);
        }
        let lo = self.points[0].0.max(other.points[0].0);
        let hi = self.points[self.points.len() - 1]
            .0
            .min(other.points[other.points.len() - 1].0);
        if hi <= lo {
            return Ok(0.0);
        }
        // Merge the breakpoints of both series inside [lo, hi].
        let mut ts: Vec<f64> = std::iter::once(lo)
            .chain(
                self.points
                    .iter()
                    .chain(other.points.iter())
                    .map(|&(t, _)| t)
                    .filter(|&t| t > lo && t < hi),
            )
            .chain(std::iter::once(hi))
            .collect();
        ts.sort_by(|a, b| a.partial_cmp(b).expect("times are not NaN"));
        ts.dedup();
        let mut area = 0.0;
        let mut prev_t = ts[0];
        let mut prev_d = self.value_at(prev_t)? - other.value_at(prev_t)?;
        for &t in &ts[1..] {
            let d = self.value_at(t)? - other.value_at(t)?;
            area += (t - prev_t) * (prev_d + d) / 2.0;
            prev_t = t;
            prev_d = d;
        }
        Ok(area)
    }

    /// Average slope over the full span (`Δvalue / Δtime`).
    pub fn mean_slope(&self) -> Result<f64> {
        if self.points.len() < 2 {
            return Err(StatsError::InsufficientSamples {
                needed: 2,
                got: self.points.len(),
            });
        }
        let (t0, v0) = self.points[0];
        let (t1, v1) = self.points[self.points.len() - 1];
        if t1 == t0 {
            return Err(StatsError::InvalidParameter("zero time span"));
        }
        Ok((v1 - v0) / (t1 - t0))
    }
}

/// Cumulative-completion curve: completions counted against timestamps.
///
/// Built from raw completion timestamps; renders as a [`TimeSeries`]
/// (`time → completed count`) and derives the Fig. 1b metrics.
#[derive(Debug, Clone, Default)]
pub struct CumulativeCurve {
    /// Completion timestamps, required non-decreasing.
    timestamps: Vec<f64>,
}

impl CumulativeCurve {
    /// Creates an empty curve.
    pub fn new() -> Self {
        CumulativeCurve {
            timestamps: Vec::new(),
        }
    }

    /// Records a completion at time `t` (must be non-decreasing).
    pub fn record(&mut self, t: f64) -> Result<()> {
        if t.is_nan() {
            return Err(StatsError::NanInput);
        }
        if let Some(&last) = self.timestamps.last() {
            if t < last {
                return Err(StatsError::InvalidParameter(
                    "completion times must be non-decreasing",
                ));
            }
        }
        self.timestamps.push(t);
        Ok(())
    }

    /// Builds a curve from timestamps (sorted internally).
    pub fn from_timestamps(mut ts: Vec<f64>) -> Result<Self> {
        if ts.iter().any(|t| t.is_nan()) {
            return Err(StatsError::NanInput);
        }
        ts.sort_by(|a, b| a.partial_cmp(b).expect("checked for NaN"));
        Ok(CumulativeCurve { timestamps: ts })
    }

    /// Total completions recorded.
    pub fn total(&self) -> usize {
        self.timestamps.len()
    }

    /// Completions at or before time `t`.
    pub fn completed_by(&self, t: f64) -> usize {
        self.timestamps.partition_point(|&x| x <= t)
    }

    /// Completions strictly before time `t`.
    pub fn completed_before(&self, t: f64) -> usize {
        self.timestamps.partition_point(|&x| x < t)
    }

    /// Converts to a step-accurate piecewise-linear [`TimeSeries`] starting
    /// at `(start, 0)`.
    pub fn to_series(&self, start: f64) -> TimeSeries {
        let mut pts = Vec::with_capacity(self.timestamps.len() + 1);
        pts.push((start, 0.0));
        for (i, &t) in self.timestamps.iter().enumerate() {
            pts.push((t.max(start), (i + 1) as f64));
        }
        TimeSeries { points: pts }
    }

    /// The paper's single-value adaptability score: area between this curve
    /// and an *ideal* system completing the same total at constant
    /// throughput over `[start, end]`.
    ///
    /// Negative values mean the system lagged the ideal (e.g. a slow start
    /// while models train, as in Fig. 1b); zero means perfectly constant
    /// throughput.
    pub fn area_vs_ideal(&self, start: f64, end: f64) -> Result<f64> {
        if self.timestamps.is_empty() {
            return Err(StatsError::Empty);
        }
        if end <= start {
            return Err(StatsError::InvalidParameter("end must exceed start"));
        }
        let actual = self.to_series(start);
        let ideal = TimeSeries {
            points: vec![(start, 0.0), (end, self.total() as f64)],
        };
        actual.area_difference(&ideal)
    }

    /// Throughput (completions per unit time) within `[t0, t1)`.
    pub fn throughput_in(&self, t0: f64, t1: f64) -> Result<f64> {
        if t1 <= t0 {
            return Err(StatsError::InvalidParameter("t1 must exceed t0"));
        }
        let count = self.completed_before(t1) - self.completed_before(t0);
        Ok(count as f64 / (t1 - t0))
    }

    /// Per-interval completion counts over `[start, end)` with the given
    /// interval width; the last interval may be shorter.
    pub fn interval_counts(&self, start: f64, end: f64, width: f64) -> Result<Vec<usize>> {
        if width <= 0.0 {
            return Err(StatsError::InvalidParameter("width must be positive"));
        }
        if end <= start {
            return Err(StatsError::InvalidParameter("end must exceed start"));
        }
        let n = ((end - start) / width).ceil() as usize;
        let mut counts = vec![0usize; n];
        for &t in &self.timestamps {
            if t < start || t >= end {
                continue;
            }
            let idx = (((t - start) / width) as usize).min(n - 1);
            counts[idx] += 1;
        }
        Ok(counts)
    }
}

/// Mergeable fixed-width per-interval completion counters.
///
/// Unlike [`CumulativeCurve::interval_counts`], which needs the full run
/// span up front, this accumulates counts online into fixed-width buckets
/// anchored at `origin`, and two recorders with the same geometry merge by
/// element-wise addition. This is what lets concurrent driver lanes record
/// completions independently and still produce one deterministic
/// throughput-over-time series regardless of worker count or merge order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntervalCounts {
    origin: f64,
    width: f64,
    counts: Vec<u64>,
}

impl IntervalCounts {
    /// Creates an empty recorder with buckets of `width` starting at `origin`.
    pub fn new(origin: f64, width: f64) -> Result<Self> {
        if origin.is_nan() || width.is_nan() {
            return Err(StatsError::NanInput);
        }
        if !(width > 0.0 && width.is_finite()) {
            return Err(StatsError::InvalidParameter("width must be positive"));
        }
        Ok(IntervalCounts {
            origin,
            width,
            counts: Vec::new(),
        })
    }

    /// Records one completion at time `t` (must be `>= origin`).
    pub fn record(&mut self, t: f64) -> Result<()> {
        if t.is_nan() {
            return Err(StatsError::NanInput);
        }
        if t < self.origin {
            return Err(StatsError::InvalidParameter(
                "completion precedes the recorder origin",
            ));
        }
        let idx = ((t - self.origin) / self.width) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        Ok(())
    }

    /// Bucket start time.
    pub fn origin(&self) -> f64 {
        self.origin
    }

    /// Bucket width in seconds.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Per-bucket counts; bucket `i` covers
    /// `[origin + i·width, origin + (i+1)·width)`.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total completions recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Merges another recorder with identical origin and width.
    pub fn merge(&mut self, other: &IntervalCounts) -> Result<()> {
        if self.origin != other.origin || self.width != other.width {
            return Err(StatsError::InvalidParameter(
                "cannot merge interval counts with different geometry",
            ));
        }
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn series_validation() {
        assert!(TimeSeries::from_points(vec![(0.0, 1.0), (1.0, 2.0)]).is_ok());
        assert!(TimeSeries::from_points(vec![(1.0, 1.0), (0.0, 2.0)]).is_err());
        assert!(TimeSeries::from_points(vec![(0.0, f64::NAN)]).is_err());
    }

    #[test]
    fn push_enforces_order() {
        let mut s = TimeSeries::new();
        s.push(0.0, 1.0).unwrap();
        s.push(1.0, 2.0).unwrap();
        assert!(s.push(0.5, 0.0).is_err());
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn interpolation() {
        let s = TimeSeries::from_points(vec![(0.0, 0.0), (10.0, 100.0)]).unwrap();
        assert!(close(s.value_at(5.0).unwrap(), 50.0));
        assert!(close(s.value_at(-1.0).unwrap(), 0.0)); // clamp low
        assert!(close(s.value_at(20.0).unwrap(), 100.0)); // clamp high
    }

    #[test]
    fn interpolation_duplicate_times() {
        // A vertical step: t=1 maps to the later value.
        let s =
            TimeSeries::from_points(vec![(0.0, 0.0), (1.0, 0.0), (1.0, 5.0), (2.0, 5.0)]).unwrap();
        assert!(close(s.value_at(1.0).unwrap(), 5.0));
        assert!(close(s.value_at(0.5).unwrap(), 0.0));
    }

    #[test]
    fn area_triangle() {
        let s = TimeSeries::from_points(vec![(0.0, 0.0), (2.0, 2.0)]).unwrap();
        assert!(close(s.area().unwrap(), 2.0));
    }

    #[test]
    fn area_difference_identical_is_zero() {
        let s = TimeSeries::from_points(vec![(0.0, 0.0), (1.0, 3.0), (2.0, 4.0)]).unwrap();
        assert!(close(s.area_difference(&s).unwrap(), 0.0));
    }

    #[test]
    fn area_difference_constant_offset() {
        let a = TimeSeries::from_points(vec![(0.0, 2.0), (10.0, 2.0)]).unwrap();
        let b = TimeSeries::from_points(vec![(0.0, 1.0), (10.0, 1.0)]).unwrap();
        assert!(close(a.area_difference(&b).unwrap(), 10.0));
        assert!(close(b.area_difference(&a).unwrap(), -10.0));
    }

    #[test]
    fn area_difference_partial_overlap() {
        let a = TimeSeries::from_points(vec![(0.0, 1.0), (10.0, 1.0)]).unwrap();
        let b = TimeSeries::from_points(vec![(5.0, 0.0), (15.0, 0.0)]).unwrap();
        // Overlap is [5, 10], difference is 1 throughout.
        assert!(close(a.area_difference(&b).unwrap(), 5.0));
    }

    #[test]
    fn area_difference_no_overlap() {
        let a = TimeSeries::from_points(vec![(0.0, 1.0), (1.0, 1.0)]).unwrap();
        let b = TimeSeries::from_points(vec![(5.0, 1.0), (6.0, 1.0)]).unwrap();
        assert!(close(a.area_difference(&b).unwrap(), 0.0));
    }

    #[test]
    fn mean_slope() {
        let s = TimeSeries::from_points(vec![(0.0, 0.0), (4.0, 8.0)]).unwrap();
        assert!(close(s.mean_slope().unwrap(), 2.0));
        let single = TimeSeries::from_points(vec![(0.0, 0.0)]).unwrap();
        assert!(single.mean_slope().is_err());
    }

    #[test]
    fn curve_counts() {
        let c = CumulativeCurve::from_timestamps(vec![1.0, 2.0, 2.0, 3.0]).unwrap();
        assert_eq!(c.total(), 4);
        assert_eq!(c.completed_by(2.0), 3);
        assert_eq!(c.completed_by(0.5), 0);
        assert_eq!(c.completed_by(10.0), 4);
    }

    #[test]
    fn curve_record_enforces_order() {
        let mut c = CumulativeCurve::new();
        c.record(1.0).unwrap();
        assert!(c.record(0.5).is_err());
    }

    #[test]
    fn constant_throughput_has_near_zero_area_vs_ideal() {
        // One completion per unit time: matches the ideal closely.
        let ts: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let c = CumulativeCurve::from_timestamps(ts).unwrap();
        let area = c.area_vs_ideal(0.0, 100.0).unwrap();
        // Discretization gives at most ~0.5 per step.
        assert!(area.abs() < 100.0 * 0.51, "area = {area}");
    }

    #[test]
    fn slow_start_has_negative_area() {
        // All completions in the second half: lags the ideal.
        let ts: Vec<f64> = (0..100).map(|i| 50.0 + i as f64 * 0.5).collect();
        let c = CumulativeCurve::from_timestamps(ts).unwrap();
        let area = c.area_vs_ideal(0.0, 100.0).unwrap();
        assert!(area < -1000.0, "area = {area}");
    }

    #[test]
    fn fast_start_has_positive_area() {
        let ts: Vec<f64> = (0..100).map(|i| i as f64 * 0.5).collect();
        let c = CumulativeCurve::from_timestamps(ts).unwrap();
        let area = c.area_vs_ideal(0.0, 100.0).unwrap();
        assert!(area > 1000.0, "area = {area}");
    }

    #[test]
    fn throughput_in_window() {
        let ts: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let c = CumulativeCurve::from_timestamps(ts).unwrap();
        let tput = c.throughput_in(0.0, 5.0).unwrap();
        assert!(close(tput, 1.0), "tput = {tput}");
        assert!(c.throughput_in(5.0, 5.0).is_err());
    }

    #[test]
    fn interval_counts_conservation() {
        let ts: Vec<f64> = (0..97).map(|i| i as f64 * 0.97).collect();
        let c = CumulativeCurve::from_timestamps(ts.clone()).unwrap();
        let counts = c.interval_counts(0.0, 100.0, 10.0).unwrap();
        assert_eq!(counts.len(), 10);
        assert_eq!(counts.iter().sum::<usize>(), 97);
    }

    #[test]
    fn interval_counts_excludes_out_of_range() {
        let c = CumulativeCurve::from_timestamps(vec![-5.0, 1.0, 99.0, 150.0]).unwrap();
        let counts = c.interval_counts(0.0, 100.0, 50.0).unwrap();
        assert_eq!(counts.iter().sum::<usize>(), 2);
    }

    #[test]
    fn interval_recorder_buckets_and_totals() {
        let mut ic = IntervalCounts::new(1.0, 0.5).unwrap();
        for t in [1.0, 1.2, 1.5, 2.4, 2.6] {
            ic.record(t).unwrap();
        }
        assert_eq!(ic.counts(), &[2, 1, 1, 1]);
        assert_eq!(ic.total(), 5);
        assert!(ic.record(0.9).is_err());
        assert!(ic.record(f64::NAN).is_err());
    }

    #[test]
    fn interval_recorder_rejects_bad_geometry() {
        assert!(IntervalCounts::new(0.0, 0.0).is_err());
        assert!(IntervalCounts::new(0.0, -1.0).is_err());
        assert!(IntervalCounts::new(f64::NAN, 1.0).is_err());
        assert!(IntervalCounts::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn interval_recorder_merge_is_order_independent() {
        let record_all = |times: &[f64]| {
            let mut ic = IntervalCounts::new(0.0, 1.0).unwrap();
            for &t in times {
                ic.record(t).unwrap();
            }
            ic
        };
        let a = record_all(&[0.1, 3.7]);
        let b = record_all(&[1.1, 1.9, 8.2]);
        let mut ab = a.clone();
        ab.merge(&b).unwrap();
        let mut ba = b.clone();
        ba.merge(&a).unwrap();
        assert_eq!(ab, ba);
        assert_eq!(ab.total(), 5);
        assert_eq!(ab.counts()[1], 2);
        // Geometry mismatch is rejected.
        let mut other = IntervalCounts::new(0.5, 1.0).unwrap();
        assert!(other.merge(&a).is_err());
    }
}
