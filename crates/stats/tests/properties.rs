//! Property-based tests for statistical invariants.

use lsbench_stats::descriptive::{quantile, BoxPlot, FiveNumber, Summary};
use lsbench_stats::histogram::{EquiDepthHistogram, EquiWidthHistogram, LatencyHistogram};
use lsbench_stats::jaccard::jaccard_similarity;
use lsbench_stats::ks::ks_statistic;
use lsbench_stats::streaming::OnlineStats;
use lsbench_stats::timeseries::{CumulativeCurve, TimeSeries};
use proptest::prelude::*;
use std::collections::HashSet;

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 1..max_len)
}

proptest! {
    #[test]
    fn summary_bounds(data in finite_vec(200)) {
        let s = Summary::of(&data).unwrap();
        prop_assert!(s.min <= s.mean + 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
        prop_assert!(s.variance >= 0.0);
        prop_assert_eq!(s.count, data.len());
    }

    #[test]
    fn online_matches_exact(data in finite_vec(200)) {
        let mut os = OnlineStats::new();
        for &v in &data { os.push(v); }
        let s = Summary::of(&data).unwrap();
        prop_assert!((os.mean() - s.mean).abs() < 1e-6 * (1.0 + s.mean.abs()));
        prop_assert!((os.variance() - s.variance).abs() < 1e-4 * (1.0 + s.variance));
    }

    #[test]
    fn online_merge_associative(a in finite_vec(100), b in finite_vec(100)) {
        let mut sa = OnlineStats::new();
        for &v in &a { sa.push(v); }
        let mut sb = OnlineStats::new();
        for &v in &b { sb.push(v); }
        let mut merged = sa;
        merged.merge(&sb);
        let mut all = OnlineStats::new();
        for &v in a.iter().chain(b.iter()) { all.push(v); }
        prop_assert!((merged.mean() - all.mean()).abs() < 1e-6 * (1.0 + all.mean().abs()));
        prop_assert_eq!(merged.count(), all.count());
    }

    #[test]
    fn quantiles_monotone(data in finite_vec(100), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile(&data, lo).unwrap();
        let b = quantile(&data, hi).unwrap();
        prop_assert!(a <= b + 1e-12);
    }

    #[test]
    fn five_number_ordered(data in finite_vec(100)) {
        let f = FiveNumber::of(&data).unwrap();
        prop_assert!(f.min <= f.q1 + 1e-12);
        prop_assert!(f.q1 <= f.median + 1e-12);
        prop_assert!(f.median <= f.q3 + 1e-12);
        prop_assert!(f.q3 <= f.max + 1e-12);
    }

    #[test]
    fn boxplot_partition(data in finite_vec(150)) {
        let b = BoxPlot::of(&data).unwrap();
        // Whiskers inside data range; outliers strictly outside whiskers.
        prop_assert!(b.whisker_lo >= b.five.min - 1e-12);
        prop_assert!(b.whisker_hi <= b.five.max + 1e-12);
        for &o in &b.outliers {
            prop_assert!(o < b.whisker_lo || o > b.whisker_hi);
        }
        prop_assert!(b.outliers.len() <= b.count);
    }

    #[test]
    fn ks_bounds_and_symmetry(a in finite_vec(80), b in finite_vec(80)) {
        let d = ks_statistic(&a, &b).unwrap();
        prop_assert!((0.0..=1.0).contains(&d));
        prop_assert!((d - ks_statistic(&b, &a).unwrap()).abs() < 1e-12);
        prop_assert_eq!(ks_statistic(&a, &a).unwrap(), 0.0);
    }

    #[test]
    fn jaccard_bounds(a in prop::collection::hash_set(0u32..50, 0..30),
                      b in prop::collection::hash_set(0u32..50, 0..30)) {
        let s = jaccard_similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert_eq!(s, jaccard_similarity(&b, &a));
        let empty: HashSet<u32> = HashSet::new();
        prop_assert_eq!(jaccard_similarity(&empty, &empty), 1.0);
    }

    #[test]
    fn equi_width_cdf_monotone(data in finite_vec(120), xs in prop::collection::vec(-1e6f64..1e6, 2..20)) {
        let h = EquiWidthHistogram::from_data(&data, 16).unwrap();
        let mut sorted = xs;
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = -1.0;
        for x in sorted {
            let c = h.estimate_cdf(x);
            prop_assert!(c >= prev - 1e-9);
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&c));
            prev = c;
        }
    }

    #[test]
    fn equi_depth_cdf_bounds(data in finite_vec(120), x in -1e6f64..1e6) {
        let h = EquiDepthHistogram::from_data(&data, 8).unwrap();
        let c = h.estimate_cdf(x);
        prop_assert!((0.0..=1.0).contains(&c));
    }

    #[test]
    fn latency_histogram_quantile_bounds(values in prop::collection::vec(0u64..1_000_000_000, 1..200), q in 0.0f64..1.0) {
        let mut h = LatencyHistogram::new();
        for &v in &values { h.record(v); }
        let est = h.quantile(q).unwrap();
        let min = *values.iter().min().unwrap();
        let max = *values.iter().max().unwrap();
        // Bucketing may round the estimate down by <2%.
        prop_assert!(est as f64 >= min as f64 * 0.98 - 1.0);
        prop_assert!(est <= max);
    }

    #[test]
    fn latency_histogram_total_conserved(values in prop::collection::vec(0u64..1_000_000, 1..200), thr in 0u64..1_000_000) {
        let mut h = LatencyHistogram::new();
        for &v in &values { h.record(v); }
        prop_assert_eq!(h.total(), values.len() as u64);
        prop_assert!(h.count_above(thr) <= h.total());
    }

    #[test]
    fn area_difference_antisymmetric(
        a in prop::collection::vec((0.0f64..100.0, -100.0f64..100.0), 2..20),
        b in prop::collection::vec((0.0f64..100.0, -100.0f64..100.0), 2..20),
    ) {
        let mut pa = a; pa.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap());
        let mut pb = b; pb.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap());
        let sa = TimeSeries::from_points(pa).unwrap();
        let sb = TimeSeries::from_points(pb).unwrap();
        let ab = sa.area_difference(&sb).unwrap();
        let ba = sb.area_difference(&sa).unwrap();
        prop_assert!((ab + ba).abs() < 1e-6 * (1.0 + ab.abs()));
    }

    #[test]
    fn curve_interval_counts_conserve(ts in prop::collection::vec(0.0f64..100.0, 1..300)) {
        let c = CumulativeCurve::from_timestamps(ts.clone()).unwrap();
        let counts = c.interval_counts(0.0, 100.0 + 1e-9, 7.0).unwrap();
        prop_assert_eq!(counts.iter().sum::<usize>(), ts.len());
        prop_assert_eq!(c.total(), ts.len());
    }

    #[test]
    fn curve_completed_by_monotone(ts in prop::collection::vec(0.0f64..100.0, 1..100), t1 in 0.0f64..100.0, t2 in 0.0f64..100.0) {
        let c = CumulativeCurve::from_timestamps(ts).unwrap();
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        prop_assert!(c.completed_by(lo) <= c.completed_by(hi));
        prop_assert!(c.completed_before(lo) <= c.completed_by(lo));
    }
}
