//! Virtual and wall clocks.
//!
//! The benchmark's figures must be reproducible run-to-run, so the driver
//! keeps time on a [`SimClock`]: SUT work units are converted to seconds at
//! a fixed rate and the clock is advanced explicitly. [`WallClock`] exists
//! for sanity checks and the criterion microbenches, which measure the same
//! data structures in real time.

use std::time::Instant;

/// A source of monotone time in seconds.
pub trait Clock {
    /// Current time in seconds since the clock's epoch.
    fn now(&self) -> f64;
}

/// Deterministic virtual clock advanced explicitly by the driver.
#[derive(Debug, Clone)]
pub struct SimClock {
    now: f64,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        SimClock { now: 0.0 }
    }

    /// Advances the clock by `dt` seconds (must be non-negative).
    pub fn advance(&mut self, dt: f64) {
        debug_assert!(dt >= 0.0 && dt.is_finite(), "bad clock advance: {dt}");
        self.now += dt.max(0.0);
    }
}

impl Default for SimClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SimClock {
    fn now(&self) -> f64 {
        self.now
    }
}

/// Wall clock (seconds since construction).
#[derive(Debug, Clone)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// Creates a wall clock with epoch = now.
    pub fn new() -> Self {
        WallClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_advances() {
        let mut c = SimClock::new();
        assert_eq!(c.now(), 0.0);
        c.advance(1.5);
        c.advance(0.5);
        assert!((c.now() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sim_clock_ignores_negative() {
        let mut c = SimClock::new();
        c.advance(1.0);
        // Debug builds assert; release clamps. Use a zero advance here.
        c.advance(0.0);
        assert_eq!(c.now(), 1.0);
    }

    #[test]
    fn wall_clock_monotone() {
        let c = WallClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }
}
