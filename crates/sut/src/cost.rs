//! Cost models: hardware profiles, the DBA step function, and
//! cost-per-performance.
//!
//! §V-D.3 of the paper: "we should evaluate the cost of training on
//! different hardware (CPU, GPU, or TPU)" and "the traditional system cost
//! is a step function representing different optimization efforts" by a
//! database administrator. These models convert the work units measured by
//! the SUTs into seconds and dollars, producing the Fig. 1d axes.

use serde::{Deserialize, Serialize};

/// A hardware profile: how fast it burns work units and what it costs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareProfile {
    /// Profile name (e.g. `"cpu"`, `"gpu"`).
    pub name: String,
    /// Dollars per hour of use.
    pub dollars_per_hour: f64,
    /// Work units processed per second.
    pub work_units_per_second: f64,
}

impl HardwareProfile {
    /// A commodity CPU: cheap, moderate training throughput.
    pub fn cpu() -> Self {
        HardwareProfile {
            name: "cpu".to_string(),
            dollars_per_hour: 0.40,
            work_units_per_second: 50_000_000.0,
        }
    }

    /// A GPU: 10× the hourly cost, ~25× the training throughput — cheaper
    /// per unit of training work, but only worth renting for real training
    /// volume.
    pub fn gpu() -> Self {
        HardwareProfile {
            name: "gpu".to_string(),
            dollars_per_hour: 4.00,
            work_units_per_second: 1_250_000_000.0,
        }
    }

    /// A TPU-class accelerator: highest throughput and hourly cost.
    pub fn tpu() -> Self {
        HardwareProfile {
            name: "tpu".to_string(),
            dollars_per_hour: 9.00,
            work_units_per_second: 4_000_000_000.0,
        }
    }

    /// Dollars per work unit.
    pub fn dollars_per_work_unit(&self) -> f64 {
        self.dollars_per_hour / 3600.0 / self.work_units_per_second
    }
}

/// Cost of a training run on a given hardware profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingCost {
    /// Wall time of the training run in seconds.
    pub seconds: f64,
    /// Dollar cost of the run.
    pub dollars: f64,
}

/// Converts training work units into time and dollars on `hw`.
pub fn training_cost(work: u64, hw: &HardwareProfile) -> TrainingCost {
    let seconds = work as f64 / hw.work_units_per_second;
    TrainingCost {
        seconds,
        dollars: seconds / 3600.0 * hw.dollars_per_hour,
    }
}

/// The DBA manual-tuning step function of Fig. 1d: each step is an
/// optimization effort that costs money and lifts the traditional system to
/// a throughput level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DbaCostModel {
    /// Steps as `(cumulative_dollars, achieved_throughput)`, sorted by cost.
    steps: Vec<(f64, f64)>,
}

impl DbaCostModel {
    /// Creates a model from `(cumulative_dollars, throughput)` steps.
    ///
    /// Steps are sorted by cost; throughput must be non-decreasing with
    /// cost (more tuning never hurts in this model).
    pub fn new(mut steps: Vec<(f64, f64)>) -> Option<Self> {
        if steps.is_empty() {
            return None;
        }
        steps.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite costs"));
        if steps.windows(2).any(|w| w[1].1 < w[0].1) {
            return None;
        }
        Some(DbaCostModel { steps })
    }

    /// A default model: an untuned system, then three tuning engagements.
    ///
    /// The dollar figures model DBA hours at ~$100/h (the statistic the
    /// paper says one would have to collect; here it is a configurable
    /// parameter, not a claim).
    pub fn default_model(base_throughput: f64) -> Self {
        DbaCostModel {
            steps: vec![
                (0.0, base_throughput),
                (400.0, base_throughput * 1.5),
                (1600.0, base_throughput * 2.1),
                (6400.0, base_throughput * 2.5),
            ],
        }
    }

    /// The steps.
    pub fn steps(&self) -> &[(f64, f64)] {
        &self.steps
    }

    /// Throughput achieved after spending `dollars` on manual tuning.
    pub fn throughput_at(&self, dollars: f64) -> f64 {
        let mut tput = 0.0;
        for &(cost, t) in &self.steps {
            if dollars >= cost {
                tput = t;
            } else {
                break;
            }
        }
        tput
    }

    /// The minimal spend that achieves at least `throughput`, if any step
    /// reaches it.
    pub fn cost_to_reach(&self, throughput: f64) -> Option<f64> {
        self.steps
            .iter()
            .find(|&&(_, t)| t >= throughput)
            .map(|&(c, _)| c)
    }

    /// Maximum throughput manual tuning can reach.
    pub fn max_throughput(&self) -> f64 {
        self.steps.last().map(|&(_, t)| t).unwrap_or(0.0)
    }
}

/// The paper's headline Fig. 1d metric: the smallest training spend at
/// which the learned system's throughput beats the *fully tuned*
/// traditional system.
///
/// `learned_curve` is `(training_dollars, throughput)` points sorted by
/// spend. Returns `None` if the learned system never overtakes.
pub fn training_cost_to_outperform(
    learned_curve: &[(f64, f64)],
    dba: &DbaCostModel,
) -> Option<f64> {
    let target = dba.max_throughput();
    learned_curve
        .iter()
        .find(|&&(_, tput)| tput > target)
        .map(|&(cost, _)| cost)
}

/// Classic cost-per-performance: dollars per (ops/second), lower is better.
pub fn cost_per_performance(total_dollars: f64, throughput: f64) -> Option<f64> {
    if throughput <= 0.0 {
        None
    } else {
        Some(total_dollars / throughput)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hardware_relative_economics() {
        let cpu = HardwareProfile::cpu();
        let gpu = HardwareProfile::gpu();
        // GPU costs more per hour but less per work unit.
        assert!(gpu.dollars_per_hour > cpu.dollars_per_hour);
        assert!(gpu.dollars_per_work_unit() < cpu.dollars_per_work_unit());
    }

    #[test]
    fn training_cost_scales_linearly() {
        let hw = HardwareProfile::cpu();
        let a = training_cost(1_000_000, &hw);
        let b = training_cost(2_000_000, &hw);
        assert!((b.seconds / a.seconds - 2.0).abs() < 1e-9);
        assert!((b.dollars / a.dollars - 2.0).abs() < 1e-9);
    }

    #[test]
    fn gpu_finishes_same_work_faster() {
        let work = 10_000_000_000u64;
        let on_cpu = training_cost(work, &HardwareProfile::cpu());
        let on_gpu = training_cost(work, &HardwareProfile::gpu());
        assert!(on_gpu.seconds < on_cpu.seconds);
        // And cheaper in dollars, since its per-unit cost is lower.
        assert!(on_gpu.dollars < on_cpu.dollars);
    }

    #[test]
    fn dba_step_function() {
        let dba = DbaCostModel::default_model(1000.0);
        assert_eq!(dba.throughput_at(0.0), 1000.0);
        assert_eq!(dba.throughput_at(399.0), 1000.0);
        assert_eq!(dba.throughput_at(400.0), 1500.0);
        assert_eq!(dba.throughput_at(100_000.0), 2500.0);
        assert_eq!(dba.max_throughput(), 2500.0);
        assert_eq!(dba.cost_to_reach(1500.0), Some(400.0));
        assert_eq!(dba.cost_to_reach(9999.0), None);
    }

    #[test]
    fn dba_model_validation() {
        assert!(DbaCostModel::new(vec![]).is_none());
        // Decreasing throughput with more spend is invalid.
        assert!(DbaCostModel::new(vec![(0.0, 100.0), (10.0, 50.0)]).is_none());
        assert!(DbaCostModel::new(vec![(10.0, 50.0), (0.0, 40.0)]).is_some());
    }

    #[test]
    fn outperform_metric() {
        let dba = DbaCostModel::default_model(1000.0); // max 2500
        let curve = vec![(1.0, 900.0), (5.0, 2000.0), (20.0, 3000.0), (80.0, 3500.0)];
        assert_eq!(training_cost_to_outperform(&curve, &dba), Some(20.0));
        let weak = vec![(1.0, 900.0), (100.0, 2400.0)];
        assert_eq!(training_cost_to_outperform(&weak, &dba), None);
    }

    #[test]
    fn cost_per_perf() {
        assert_eq!(cost_per_performance(100.0, 1000.0), Some(0.1));
        assert_eq!(cost_per_performance(100.0, 0.0), None);
    }
}
