//! Key-value SUT adapters over the index substrates.
//!
//! Each adapter presents an index as a [`SystemUnderTest`] over
//! [`Operation`]s, with a documented deterministic cost model (work units ≈
//! memory probes):
//!
//! * traditional structures pay their structural search costs
//!   (`height · log(fanout)` for the B+-tree, `log n` for sorted arrays,
//!   `O(1)` for hashing);
//! * learned structures pay a couple of model evaluations plus a
//!   `log(error-window)` last-mile search — *if* their models fit the data;
//! * mutations pay the structural work the underlying index actually
//!   performed (splits, expansions, retrains), read off its work counters,
//!   so adaptation bursts show up as latency spikes exactly as Fig. 1b/1c
//!   anticipates.

use crate::sut::{ExecOutcome, SutMetrics, SystemUnderTest};
use crate::{Result, SutError};
use lsbench_index::alex::AlexIndex;
use lsbench_index::btree::BPlusTree;
use lsbench_index::delta::DeltaIndex;
use lsbench_index::hash::HashIndex;
use lsbench_index::pgm::PgmIndex;
use lsbench_index::rmi::Rmi;
use lsbench_index::sorted_array::SortedArray;
use lsbench_index::spline::RadixSpline;
use lsbench_index::{BulkLoad, Index, IndexError};
use lsbench_workload::dataset::Dataset;
use lsbench_workload::ops::Operation;

/// log2(x + 2), at least 1 — the cost of a binary search over `x` items.
fn search_cost(x: u64) -> u64 {
    (x + 2).ilog2() as u64 + 1
}

/// When a learned SUT merges its delta buffer and retrains.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetrainPolicy {
    /// Never retrain (the delta grows; lookups slow down).
    Never,
    /// Retrain during maintenance once pending writes exceed this fraction
    /// of the dataset.
    DeltaFraction(f64),
    /// Retrain immediately on every announced phase change.
    OnPhaseChange,
}

/// Generic learned KV SUT: a read-only learned index behind a
/// [`DeltaIndex`], with a retrain policy.
#[derive(Debug)]
pub struct LearnedKvSut<I: Index + BulkLoad> {
    name: String,
    index: DeltaIndex<I>,
    policy: RetrainPolicy,
    /// Training work charged when the driver calls `train`.
    pending_train_work: u64,
    training_work: u64,
    execution_work: u64,
    adaptations: u64,
}

impl<I: Index + BulkLoad> LearnedKvSut<I> {
    /// Builds the SUT from a dataset with the index's default configuration.
    pub fn build(name: impl Into<String>, data: &Dataset, policy: RetrainPolicy) -> Result<Self> {
        let pairs: Vec<(u64, u64)> = data.pairs().collect();
        let index = DeltaIndex::<I>::build(&pairs)
            .map_err(|e| SutError::Internal(format!("build failed: {e}")))?;
        let pending = index.base().stats().build_work;
        Ok(LearnedKvSut {
            name: name.into(),
            index,
            policy,
            pending_train_work: pending,
            training_work: 0,
            execution_work: 0,
            adaptations: 0,
        })
    }

    /// Wraps an externally trained base index (used by the Fig. 1d bench to
    /// control the training budget precisely).
    pub fn with_trained_base(name: impl Into<String>, base: I, policy: RetrainPolicy) -> Self {
        let pending = base.stats().build_work;
        LearnedKvSut {
            name: name.into(),
            index: DeltaIndex::from_base(base),
            policy,
            pending_train_work: pending,
            training_work: 0,
            execution_work: 0,
            adaptations: 0,
        }
    }

    /// Pending unmerged writes (diagnostic).
    pub fn delta_fraction(&self) -> f64 {
        self.index.delta_fraction()
    }

    fn retrain_now(&mut self) -> u64 {
        match self.index.retrain() {
            Ok(work) => {
                self.training_work += work;
                self.adaptations += 1;
                work
            }
            Err(_) => 0,
        }
    }

    fn op_cost(&self, op: &Operation) -> u64 {
        // Per-key probe cost: the base's model/search cost at this key plus
        // a binary search of the pending delta (see DeltaIndex::probe_cost).
        let read = self.index.probe_cost(op.key());
        let delta_write = search_cost(self.index.pending() as u64);
        match op {
            Operation::Read { .. } => read,
            Operation::Insert { .. } | Operation::Update { .. } => delta_write + 2,
            Operation::Delete { .. } => read,
            Operation::Scan { len, .. } => read + *len as u64,
        }
    }
}

impl<I: Index + BulkLoad> SystemUnderTest<Operation> for LearnedKvSut<I> {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn train(&mut self, _budget: u64) -> u64 {
        let work = self.pending_train_work;
        self.pending_train_work = 0;
        self.training_work += work;
        work
    }

    fn execute(&mut self, op: &Operation) -> Result<ExecOutcome> {
        let work = self.op_cost(op);
        self.execution_work += work;
        let result = apply_op(&mut self.index, op);
        match result {
            Ok(()) => Ok(ExecOutcome::ok(work)),
            Err(IndexError::Unsupported(_)) => Ok(ExecOutcome::failed(work)),
            Err(e) => Err(SutError::Internal(e.to_string())),
        }
    }

    fn execute_many(&mut self, ops: &[Operation]) -> Vec<Result<ExecOutcome>> {
        // Batched dispatch: reads never fail and never mutate, so the
        // fast path skips the per-op cost-model match and the delta-size
        // probe the general path recomputes every call, and routes each
        // run of consecutive reads through `Index::get_many` so the base
        // index can overlap their cache misses. The work charged per read
        // is `probe_cost(key)` either way — batching never changes the
        // record.
        let mut out = Vec::with_capacity(ops.len());
        let mut keys: Vec<u64> = Vec::new();
        let mut hits: Vec<Option<u64>> = Vec::new();
        let mut i = 0;
        while i < ops.len() {
            let Operation::Read { key } = ops[i] else {
                out.push(self.execute(&ops[i]));
                i += 1;
                continue;
            };
            keys.clear();
            keys.push(key);
            while let Some(&Operation::Read { key }) = ops.get(i + keys.len()) {
                keys.push(key);
            }
            hits.clear();
            self.index.get_many(&keys, &mut hits);
            debug_assert_eq!(hits.len(), keys.len());
            for &key in &keys {
                let work = self.index.probe_cost(key);
                self.execution_work += work;
                out.push(Ok(ExecOutcome::ok(work)));
            }
            i += keys.len();
        }
        out
    }

    fn on_phase_change(&mut self, _new_phase: usize) -> u64 {
        if self.policy == RetrainPolicy::OnPhaseChange && self.index.pending() > 0 {
            self.retrain_now()
        } else {
            0
        }
    }

    fn maintenance(&mut self) -> u64 {
        if let RetrainPolicy::DeltaFraction(threshold) = self.policy {
            if self.index.delta_fraction() > threshold {
                return self.retrain_now();
            }
        }
        0
    }

    fn crash(&mut self) -> u64 {
        // Crash-restart: the keys survive (base + delta are durable) but
        // the learned models are volatile and lost. Recovery is a full
        // retrain, forced regardless of the retrain policy.
        self.retrain_now()
    }

    fn metrics(&self) -> SutMetrics {
        let stats = self.index.stats();
        SutMetrics {
            size_bytes: stats.size_bytes,
            training_work: self.training_work + self.pending_train_work,
            execution_work: self.execution_work,
            model_count: stats.model_count,
            adaptations: self.adaptations,
            label_collection_work: 0,
        }
    }
}

/// Applies one operation to any index, normalizing outcomes.
fn apply_op<Ix: Index>(index: &mut Ix, op: &Operation) -> lsbench_index::Result<()> {
    match *op {
        Operation::Read { key } => {
            let _ = index.get(key);
            Ok(())
        }
        Operation::Insert { key, value } | Operation::Update { key, value } => {
            index.insert(key, value).map(|_| ())
        }
        Operation::Scan { start, len } => index.range(start, len as usize).map(|_| ()),
        Operation::Delete { key } => index.delete(key).map(|_| ()),
    }
}

/// Macro-free shared implementation for the traditional SUTs.
macro_rules! traditional_sut {
    ($sut:ident, $index:ty, $label:expr) => {
        /// Traditional (non-learned) SUT adapter.
        #[derive(Debug)]
        pub struct $sut {
            index: $index,
            execution_work: u64,
            baseline_struct_work: u64,
        }

        impl $sut {
            /// Bulk-loads the SUT from a dataset.
            pub fn build(data: &Dataset) -> Result<Self> {
                let pairs: Vec<(u64, u64)> = data.pairs().collect();
                let index = <$index>::bulk_load(&pairs)
                    .map_err(|e| SutError::Internal(format!("build failed: {e}")))?;
                let baseline = index.stats().build_work;
                Ok($sut {
                    index,
                    execution_work: 0,
                    baseline_struct_work: baseline,
                })
            }

            /// Access to the wrapped index.
            pub fn index(&self) -> &$index {
                &self.index
            }
        }

        impl SystemUnderTest<Operation> for $sut {
            fn name(&self) -> String {
                $label.to_string()
            }

            fn train(&mut self, _budget: u64) -> u64 {
                0 // traditional systems do not train
            }

            fn execute(&mut self, op: &Operation) -> Result<ExecOutcome> {
                let read = self.index.probe_cost(op.key());
                let before = self.index.stats().build_work;
                let result = apply_op(&mut self.index, op);
                // Structural maintenance (splits, rehash, shifts) shows up in
                // the index's own work counter.
                let structural = self.index.stats().build_work.saturating_sub(before);
                let work = match *op {
                    Operation::Scan { len, .. } => read + len as u64,
                    Operation::Insert { .. }
                    | Operation::Update { .. }
                    | Operation::Delete { .. } => read + structural + 1,
                    Operation::Read { .. } => read,
                };
                self.execution_work += work;
                match result {
                    Ok(()) => Ok(ExecOutcome::ok(work)),
                    Err(IndexError::Unsupported(_)) => Ok(ExecOutcome::failed(work)),
                    Err(e) => Err(SutError::Internal(e.to_string())),
                }
            }

            fn execute_many(&mut self, ops: &[Operation]) -> Vec<Result<ExecOutcome>> {
                // Batched dispatch: `Index::get` takes `&self`, so a read's
                // structural work is provably zero and the two full-arena
                // `stats()` scans the general path pays per op can be
                // skipped entirely. Runs of consecutive reads go through
                // `Index::get_many` (the B+-tree's group descent overlaps
                // the probes' node misses); the work units charged are
                // `probe_cost(key)` per read either way.
                let mut out = Vec::with_capacity(ops.len());
                let mut keys: Vec<u64> = Vec::new();
                let mut hits: Vec<Option<u64>> = Vec::new();
                let mut i = 0;
                while i < ops.len() {
                    let Operation::Read { key } = ops[i] else {
                        out.push(self.execute(&ops[i]));
                        i += 1;
                        continue;
                    };
                    keys.clear();
                    keys.push(key);
                    while let Some(&Operation::Read { key }) = ops.get(i + keys.len()) {
                        keys.push(key);
                    }
                    hits.clear();
                    self.index.get_many(&keys, &mut hits);
                    debug_assert_eq!(hits.len(), keys.len());
                    for &key in &keys {
                        let work = self.index.probe_cost(key);
                        self.execution_work += work;
                        out.push(Ok(ExecOutcome::ok(work)));
                    }
                    i += keys.len();
                }
                out
            }

            fn metrics(&self) -> SutMetrics {
                let stats = self.index.stats();
                SutMetrics {
                    size_bytes: stats.size_bytes,
                    training_work: 0,
                    execution_work: self.execution_work,
                    model_count: 0,
                    adaptations: stats.build_work.saturating_sub(self.baseline_struct_work),
                    label_collection_work: 0,
                }
            }
        }
    };
}

traditional_sut!(BTreeSut, BPlusTree, "btree");
traditional_sut!(SortedArraySut, SortedArray, "sorted-array");
traditional_sut!(HashSut, HashIndex, "hash");

/// ALEX is adaptive *and* updatable, so it gets its own adapter with model
/// counting.
#[derive(Debug)]
pub struct AlexSut {
    index: AlexIndex,
    execution_work: u64,
    baseline_struct_work: u64,
}

impl AlexSut {
    /// Bulk-loads the SUT from a dataset.
    pub fn build(data: &Dataset) -> Result<Self> {
        let pairs: Vec<(u64, u64)> = data.pairs().collect();
        let index = AlexIndex::bulk_load(&pairs)
            .map_err(|e| SutError::Internal(format!("build failed: {e}")))?;
        let baseline = index.stats().build_work;
        Ok(AlexSut {
            index,
            execution_work: 0,
            baseline_struct_work: baseline,
        })
    }

    /// Access to the wrapped index.
    pub fn index(&self) -> &AlexIndex {
        &self.index
    }
}

impl SystemUnderTest<Operation> for AlexSut {
    fn name(&self) -> String {
        "alex".to_string()
    }

    fn train(&mut self, _budget: u64) -> u64 {
        0 // ALEX trains online, during execution
    }

    fn execute(&mut self, op: &Operation) -> Result<ExecOutcome> {
        let read = self.index.probe_cost(op.key());
        let before = self.index.stats().build_work;
        let result = apply_op(&mut self.index, op);
        let structural = self.index.stats().build_work.saturating_sub(before);
        let work = match *op {
            Operation::Scan { len, .. } => read + len as u64,
            Operation::Read { .. } => read,
            _ => read + structural + 1,
        };
        self.execution_work += work;
        match result {
            Ok(()) => Ok(ExecOutcome::ok(work)),
            Err(IndexError::Unsupported(_)) => Ok(ExecOutcome::failed(work)),
            Err(e) => Err(SutError::Internal(e.to_string())),
        }
    }

    fn execute_many(&mut self, ops: &[Operation]) -> Vec<Result<ExecOutcome>> {
        // Batched dispatch: reads can't adapt the structure (`get` takes
        // `&self`), so skip the per-op `stats()` scans over every leaf.
        // Consecutive reads are handed to `Index::get_many` in one run;
        // the charged work stays `probe_cost(key)` per read.
        let mut out = Vec::with_capacity(ops.len());
        let mut keys: Vec<u64> = Vec::new();
        let mut hits: Vec<Option<u64>> = Vec::new();
        let mut i = 0;
        while i < ops.len() {
            let Operation::Read { key } = ops[i] else {
                out.push(self.execute(&ops[i]));
                i += 1;
                continue;
            };
            keys.clear();
            keys.push(key);
            while let Some(&Operation::Read { key }) = ops.get(i + keys.len()) {
                keys.push(key);
            }
            hits.clear();
            self.index.get_many(&keys, &mut hits);
            debug_assert_eq!(hits.len(), keys.len());
            for &key in &keys {
                let work = self.index.probe_cost(key);
                self.execution_work += work;
                out.push(Ok(ExecOutcome::ok(work)));
            }
            i += keys.len();
        }
        out
    }

    fn metrics(&self) -> SutMetrics {
        let stats = self.index.stats();
        SutMetrics {
            size_bytes: stats.size_bytes,
            // ALEX's online structural retraining *is* training work.
            training_work: stats.build_work.saturating_sub(self.baseline_struct_work),
            execution_work: self.execution_work,
            model_count: stats.model_count,
            adaptations: self.index.adapt_events(),
            label_collection_work: 0,
        }
    }
}

/// A cache in front of any KV SUT (§II "learning-based caches").
///
/// Reads that hit the cache cost [`CachedSut::HIT_COST`] work units and
/// skip the inner system entirely; misses pay the inner cost plus an
/// admission charge. Writes pass through and invalidate. The benchmark
/// compares [`lsbench_index::cache::LruCache`] against
/// [`lsbench_index::cache::LearnedCache`] by wrapping the same inner SUT.
#[derive(Debug)]
pub struct CachedSut<S, C> {
    inner: S,
    cache: C,
}

impl<S: SystemUnderTest<Operation>, C: lsbench_index::cache::KeyCache> CachedSut<S, C> {
    /// Work units charged for a cache hit.
    pub const HIT_COST: u64 = 2;

    /// Wraps `inner` with `cache`.
    pub fn new(inner: S, cache: C) -> Self {
        CachedSut { inner, cache }
    }

    /// Cache statistics so far.
    pub fn cache_stats(&self) -> lsbench_index::cache::CacheStats {
        self.cache.stats()
    }
}

impl<S, C> SystemUnderTest<Operation> for CachedSut<S, C>
where
    S: SystemUnderTest<Operation>,
    C: lsbench_index::cache::KeyCache,
{
    fn name(&self) -> String {
        format!("{}+{}", self.inner.name(), self.cache.name())
    }

    fn train(&mut self, budget: u64) -> u64 {
        self.inner.train(budget)
    }

    fn execute(&mut self, op: &Operation) -> Result<ExecOutcome> {
        match *op {
            Operation::Read { key } => {
                if self.cache.access(key) {
                    return Ok(ExecOutcome::ok(Self::HIT_COST));
                }
                // Miss: pay the inner lookup plus the admission work.
                let out = self.inner.execute(op)?;
                Ok(ExecOutcome {
                    work: out.work + 1,
                    ok: out.ok,
                })
            }
            Operation::Insert { key, .. }
            | Operation::Update { key, .. }
            | Operation::Delete { key } => {
                self.cache.invalidate(key);
                let out = self.inner.execute(op)?;
                Ok(ExecOutcome {
                    work: out.work + 1,
                    ok: out.ok,
                })
            }
            Operation::Scan { .. } => self.inner.execute(op),
        }
    }

    fn on_phase_change(&mut self, new_phase: usize) -> u64 {
        self.inner.on_phase_change(new_phase)
    }

    fn maintenance(&mut self) -> u64 {
        self.inner.maintenance()
    }

    fn crash(&mut self) -> u64 {
        self.inner.crash()
    }

    fn metrics(&self) -> SutMetrics {
        let mut m = self.inner.metrics();
        m.size_bytes += self.cache.len() * 32;
        // Every cache admission is one tiny online-training step.
        m.adaptations += self.cache.stats().evictions;
        m
    }
}

/// Convenience aliases for the three learned KV SUTs.
pub type RmiSut = LearnedKvSut<Rmi>;
/// PGM-index SUT.
pub type PgmSut = LearnedKvSut<PgmIndex>;
/// RadixSpline SUT.
pub type SplineSut = LearnedKvSut<RadixSpline>;

#[cfg(test)]
mod tests {
    use super::*;
    use lsbench_workload::keygen::KeyDistribution;

    fn dataset(n: usize) -> Dataset {
        Dataset::generate(KeyDistribution::Uniform, 0, 1_000_000, n, 1).unwrap()
    }

    fn run_ops<S: SystemUnderTest<Operation>>(sut: &mut S, data: &Dataset) -> (u64, u64) {
        let mut ok = 0;
        let mut work = 0;
        for &k in data.keys().iter().take(200) {
            let out = sut.execute(&Operation::Read { key: k }).unwrap();
            if out.ok {
                ok += 1;
            }
            work += out.work;
        }
        (ok, work)
    }

    #[test]
    fn all_kv_suts_serve_reads() {
        let data = dataset(5000);
        let mut btree = BTreeSut::build(&data).unwrap();
        let mut sorted = SortedArraySut::build(&data).unwrap();
        let mut hash = HashSut::build(&data).unwrap();
        let mut alex = AlexSut::build(&data).unwrap();
        let mut rmi = RmiSut::build("rmi", &data, RetrainPolicy::Never).unwrap();
        let mut pgm = PgmSut::build("pgm", &data, RetrainPolicy::Never).unwrap();
        let mut spline = SplineSut::build("spline", &data, RetrainPolicy::Never).unwrap();
        for (ok, work) in [
            run_ops(&mut btree, &data),
            run_ops(&mut sorted, &data),
            run_ops(&mut hash, &data),
            run_ops(&mut alex, &data),
            run_ops(&mut rmi, &data),
            run_ops(&mut pgm, &data),
            run_ops(&mut spline, &data),
        ] {
            assert_eq!(ok, 200);
            assert!(work > 0);
        }
    }

    #[test]
    fn learned_reads_cheaper_than_btree_on_uniform() {
        // Uniform keys are the learned index's best case: its per-read work
        // must beat the B+-tree's height-bound search.
        let data = dataset(100_000);
        let mut rmi = RmiSut::build("rmi", &data, RetrainPolicy::Never).unwrap();
        let mut btree = BTreeSut::build(&data).unwrap();
        let (_, rmi_work) = run_ops(&mut rmi, &data);
        let (_, btree_work) = run_ops(&mut btree, &data);
        assert!(
            rmi_work < btree_work,
            "rmi {rmi_work} !< btree {btree_work}"
        );
    }

    #[test]
    fn hash_rejects_scans_gracefully() {
        let data = dataset(1000);
        let mut hash = HashSut::build(&data).unwrap();
        let out = hash
            .execute(&Operation::Scan { start: 0, len: 10 })
            .unwrap();
        assert!(!out.ok);
        assert!(out.work > 0);
    }

    #[test]
    fn training_charged_once() {
        let data = dataset(10_000);
        let mut rmi = RmiSut::build("rmi", &data, RetrainPolicy::Never).unwrap();
        let w1 = rmi.train(u64::MAX);
        assert!(w1 > 0);
        assert_eq!(rmi.train(u64::MAX), 0);
        assert_eq!(rmi.metrics().training_work, w1);
    }

    #[test]
    fn traditional_suts_do_not_train() {
        let data = dataset(1000);
        let mut btree = BTreeSut::build(&data).unwrap();
        assert_eq!(btree.train(u64::MAX), 0);
        assert_eq!(btree.metrics().training_work, 0);
        assert_eq!(btree.metrics().model_count, 0);
    }

    #[test]
    fn delta_policy_triggers_retrain_in_maintenance() {
        let data = dataset(1000);
        let mut rmi = RmiSut::build("rmi", &data, RetrainPolicy::DeltaFraction(0.05)).unwrap();
        rmi.train(u64::MAX);
        assert_eq!(rmi.maintenance(), 0); // nothing pending
        let max = data.keys().last().copied().unwrap();
        for i in 0..200u64 {
            rmi.execute(&Operation::Insert {
                key: max + 1 + i,
                value: i,
            })
            .unwrap();
        }
        assert!(rmi.delta_fraction() > 0.05);
        let work = rmi.maintenance();
        assert!(work > 0, "maintenance should retrain");
        assert!(rmi.delta_fraction() < 0.01);
        assert_eq!(rmi.metrics().adaptations, 1);
        // Inserted keys survive the retrain.
        let out = rmi.execute(&Operation::Read { key: max + 1 }).unwrap();
        assert!(out.ok);
    }

    #[test]
    fn phase_change_policy_retrains() {
        let data = dataset(1000);
        let mut pgm = PgmSut::build("pgm", &data, RetrainPolicy::OnPhaseChange).unwrap();
        assert_eq!(pgm.on_phase_change(1), 0); // nothing pending
        pgm.execute(&Operation::Insert {
            key: 99_999_999,
            value: 1,
        })
        .unwrap();
        assert!(pgm.on_phase_change(2) > 0);
    }

    #[test]
    fn never_policy_lets_delta_grow() {
        let data = dataset(500);
        let mut spline = SplineSut::build("s", &data, RetrainPolicy::Never).unwrap();
        let max = data.keys().last().copied().unwrap();
        for i in 0..300u64 {
            spline
                .execute(&Operation::Insert {
                    key: max + 1 + i,
                    value: i,
                })
                .unwrap();
        }
        assert_eq!(spline.maintenance(), 0);
        assert_eq!(spline.on_phase_change(1), 0);
        assert!(spline.delta_fraction() > 0.3);
    }

    #[test]
    fn growing_delta_slows_reads() {
        let data = dataset(2000);
        let mut rmi = RmiSut::build("rmi", &data, RetrainPolicy::Never).unwrap();
        let k = data.keys()[0];
        let fresh_read = rmi.execute(&Operation::Read { key: k }).unwrap().work;
        let max = data.keys().last().copied().unwrap();
        for i in 0..2000u64 {
            rmi.execute(&Operation::Insert {
                key: max + 1 + i,
                value: i,
            })
            .unwrap();
        }
        let slow_read = rmi.execute(&Operation::Read { key: k }).unwrap().work;
        assert!(
            slow_read > fresh_read,
            "delta growth should slow reads: {slow_read} <= {fresh_read}"
        );
    }

    #[test]
    fn alex_counts_adaptations_as_training() {
        let data = dataset(4000);
        let mut alex = AlexSut::build(&data).unwrap();
        assert_eq!(alex.metrics().training_work, 0);
        for i in 0..4000u64 {
            alex.execute(&Operation::Insert {
                key: 2_000_000 + i,
                value: i,
            })
            .unwrap();
        }
        let m = alex.metrics();
        assert!(m.training_work > 0, "structural retrains count as training");
        assert!(m.adaptations > 0);
    }

    #[test]
    fn cached_sut_hits_reduce_work() {
        use lsbench_index::cache::{LearnedCache, LruCache};
        let data = dataset(10_000);
        let inner = BTreeSut::build(&data).unwrap();
        let mut cached = CachedSut::new(inner, LruCache::new(1024));
        let key = data.keys()[42];
        let miss = cached.execute(&Operation::Read { key }).unwrap();
        let hit = cached.execute(&Operation::Read { key }).unwrap();
        assert!(hit.work < miss.work);
        assert_eq!(hit.work, CachedSut::<BTreeSut, LruCache>::HIT_COST);
        assert_eq!(cached.cache_stats().hits, 1);
        // Learned cache wrapper works identically at the interface level.
        let inner2 = BTreeSut::build(&data).unwrap();
        let mut cached2 = CachedSut::new(inner2, LearnedCache::new(1024));
        cached2.execute(&Operation::Read { key }).unwrap();
        let hit2 = cached2.execute(&Operation::Read { key }).unwrap();
        assert!(hit2.ok && hit2.work == 2);
    }

    #[test]
    fn cached_sut_invalidates_on_writes() {
        use lsbench_index::cache::LruCache;
        let data = dataset(1_000);
        let mut cached = CachedSut::new(BTreeSut::build(&data).unwrap(), LruCache::new(64));
        let key = data.keys()[7];
        cached.execute(&Operation::Read { key }).unwrap();
        assert_eq!(cached.cache_stats().hits, 0);
        cached
            .execute(&Operation::Update { key, value: 1 })
            .unwrap();
        // The update invalidated the cached key: next read misses.
        let after = cached.execute(&Operation::Read { key }).unwrap();
        assert!(after.work > 2, "read after write must miss the cache");
    }

    #[test]
    fn crash_forces_model_rebuild() {
        let data = dataset(2000);
        let mut rmi = RmiSut::build("rmi", &data, RetrainPolicy::Never).unwrap();
        rmi.train(u64::MAX);
        let recovery = rmi.crash();
        assert!(recovery > 0, "crash recovery rebuilds the learned models");
        assert_eq!(rmi.metrics().adaptations, 1);
        // Reads still work after the crash-restart.
        let out = rmi
            .execute(&Operation::Read {
                key: data.keys()[0],
            })
            .unwrap();
        assert!(out.ok);
        // Traditional systems have no volatile learned state.
        assert_eq!(BTreeSut::build(&data).unwrap().crash(), 0);
    }

    #[test]
    fn kv_suts_are_send_and_sync() {
        // Compile-time contract for the concurrent engine: every KV SUT
        // must be shareable across worker threads.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BTreeSut>();
        assert_send_sync::<SortedArraySut>();
        assert_send_sync::<HashSut>();
        assert_send_sync::<AlexSut>();
        assert_send_sync::<RmiSut>();
        assert_send_sync::<PgmSut>();
        assert_send_sync::<SplineSut>();
    }

    #[test]
    fn execute_many_fast_path_matches_execute() {
        // The batched read fast path must be outcome- and metric-identical
        // to op-at-a-time dispatch on every overriding SUT.
        fn check<S: SystemUnderTest<Operation>>(mut a: S, mut b: S, data: &Dataset) {
            let ops: Vec<Operation> = data
                .keys()
                .iter()
                .take(300)
                .enumerate()
                .map(|(i, &k)| match i % 4 {
                    0..=1 => Operation::Read { key: k },
                    2 => Operation::Insert {
                        key: k + 1,
                        value: i as u64,
                    },
                    _ => Operation::Scan { start: k, len: 3 },
                })
                .collect();
            let one: Vec<ExecOutcome> = ops.iter().map(|op| a.execute(op).unwrap()).collect();
            let many: Vec<ExecOutcome> = b
                .execute_many(&ops)
                .into_iter()
                .map(|r| r.unwrap())
                .collect();
            assert_eq!(one, many, "{}", a.name());
            assert_eq!(a.metrics(), b.metrics(), "{}", a.name());
        }
        let data = dataset(3000);
        check(
            BTreeSut::build(&data).unwrap(),
            BTreeSut::build(&data).unwrap(),
            &data,
        );
        check(
            AlexSut::build(&data).unwrap(),
            AlexSut::build(&data).unwrap(),
            &data,
        );
        check(
            RmiSut::build("rmi", &data, RetrainPolicy::Never).unwrap(),
            RmiSut::build("rmi", &data, RetrainPolicy::Never).unwrap(),
            &data,
        );
    }

    #[test]
    fn scan_work_scales_with_length() {
        let data = dataset(10_000);
        let mut btree = BTreeSut::build(&data).unwrap();
        let short = btree
            .execute(&Operation::Scan { start: 0, len: 5 })
            .unwrap()
            .work;
        let long = btree
            .execute(&Operation::Scan { start: 0, len: 500 })
            .unwrap()
            .work;
        assert!(long > short + 400);
    }
}
