//! Systems under test (SUTs) and cost accounting.
//!
//! This crate is the glue between the index/query substrates and the
//! benchmark framework: it defines the [`SystemUnderTest`] interface the
//! driver speaks (§IV: the benchmark "should be agnostic to the differences
//! across systems yet capture enough relevant metrics"), adapters that
//! present every index and optimizer as a SUT, and the cost models
//! (hardware profiles, DBA step function) behind the Fig. 1d metrics.
//!
//! Work and time: every SUT operation reports abstract **work units**
//! (memory probes / rows touched / model updates). A [`clock::SimClock`]
//! plus a work→seconds rate turns those into deterministic virtual time, so
//! benchmark runs and figures are exactly reproducible; the criterion
//! microbenches measure the same structures in wall-clock time.

#![warn(missing_docs)]

pub mod clock;
pub mod cost;
pub mod kv;
pub mod query_sut;
pub mod sut;

pub use clock::{Clock, SimClock, WallClock};
pub use cost::{DbaCostModel, HardwareProfile, TrainingCost};
pub use kv::{
    AlexSut, BTreeSut, CachedSut, HashSut, LearnedKvSut, PgmSut, RetrainPolicy, RmiSut,
    SortedArraySut, SplineSut,
};
pub use query_sut::{BanditQuerySut, LearnedCardinalitySut, QueryOp, TraditionalQuerySut};
pub use sut::{ExecOutcome, SutMetrics, SystemUnderTest, TransportStats};

/// Errors produced by SUT adapters.
#[derive(Debug, Clone, PartialEq)]
pub enum SutError {
    /// The operation is unsupported by this system (counted, not fatal).
    Unsupported(&'static str),
    /// The SUT failed internally; the run should abort.
    Internal(String),
}

impl std::fmt::Display for SutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SutError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
            SutError::Internal(msg) => write!(f, "SUT internal error: {msg}"),
        }
    }
}

impl std::error::Error for SutError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, SutError>;
