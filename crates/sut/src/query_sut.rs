//! Query-processing SUTs: traditional optimizer, learned cardinalities, and
//! Bao-style bandit steering.
//!
//! These adapters exercise the §II query-optimization side of the paper:
//!
//! * [`TraditionalQuerySut`] — DP join ordering with histogram estimates;
//!   no learning, no adaptation.
//! * [`LearnedCardinalitySut`] — the same optimizer fed by a
//!   [`LearnedEstimator`] that collects true cardinalities after every
//!   execution. Label collection costs work (§IV), charged explicitly.
//! * [`BanditQuerySut`] — a [`PlanSteerer`] choosing per query shape among
//!   plan arms (estimator variants and a pessimistic heuristic), learning
//!   from observed execution work — the Bao \[14\] loop.

use crate::sut::{ExecOutcome, SutMetrics, SystemUnderTest};
use crate::{Result, SutError};
use lsbench_query::bandit::PlanSteerer;
use lsbench_query::card::{CardinalityEstimator, HistogramEstimator, LearnedEstimator};
use lsbench_query::exec::execute;
use lsbench_query::optimizer::{optimize_join_order, JoinQuery};
use lsbench_query::plan::QueryNode;
use lsbench_query::table::Catalog;

/// One operation for query SUTs: a multiway join query to plan and execute.
#[derive(Debug, Clone)]
pub struct QueryOp {
    /// The join query specification.
    pub query: JoinQuery,
}

impl QueryOp {
    /// A stable shape hash of the query (order-independent over relations).
    pub fn shape(&self) -> u64 {
        let mut hashes: Vec<u64> = self
            .query
            .relations
            .iter()
            .map(|r| r.structural_hash())
            .collect();
        hashes.sort_unstable();
        hashes.iter().fold(0xCBF2_9CE4_8422_2325u64, |h, &v| {
            (h ^ v).wrapping_mul(0x0000_0100_0000_01B3)
        })
    }
}

/// Planning overhead charged per optimized query (work units).
const PLAN_OVERHEAD: u64 = 50;

/// Traditional query SUT: histogram statistics + DP join ordering.
#[derive(Debug)]
pub struct TraditionalQuerySut {
    catalog: Catalog,
    estimator: HistogramEstimator,
    execution_work: u64,
    stats_work: u64,
}

impl TraditionalQuerySut {
    /// Builds statistics over `catalog`.
    pub fn build(catalog: Catalog) -> Result<Self> {
        let estimator = HistogramEstimator::build(&catalog)
            .map_err(|e| SutError::Internal(format!("stats build failed: {e}")))?;
        let stats_work = estimator.build_work;
        Ok(TraditionalQuerySut {
            catalog,
            estimator,
            execution_work: 0,
            stats_work,
        })
    }
}

impl SystemUnderTest<QueryOp> for TraditionalQuerySut {
    fn name(&self) -> String {
        "traditional-optimizer".to_string()
    }

    fn train(&mut self, _budget: u64) -> u64 {
        // Histogram construction is DBA-style statistics collection, not
        // model training; it is charged as execution-side setup.
        0
    }

    fn execute(&mut self, op: &QueryOp) -> Result<ExecOutcome> {
        let plan = optimize_join_order(&op.query, &self.estimator)
            .map_err(|e| SutError::Internal(format!("optimize failed: {e}")))?;
        let result = execute(&plan.plan, &self.catalog)
            .map_err(|e| SutError::Internal(format!("execute failed: {e}")))?;
        let work = result.work + PLAN_OVERHEAD;
        self.execution_work += work;
        Ok(ExecOutcome::ok(work))
    }

    fn metrics(&self) -> SutMetrics {
        SutMetrics {
            size_bytes: self.stats_work as usize / 64, // histograms are small
            training_work: 0,
            execution_work: self.execution_work,
            model_count: 0,
            adaptations: 0,
            label_collection_work: 0,
        }
    }
}

/// Learned-cardinality SUT: the optimizer runs on a feedback-trained
/// estimator; every execution's true cardinalities are fed back.
#[derive(Debug)]
pub struct LearnedCardinalitySut {
    catalog: Catalog,
    estimator: LearnedEstimator,
    execution_work: u64,
    label_work: u64,
    observations: u64,
}

impl LearnedCardinalitySut {
    /// Builds the SUT (histogram fallback included).
    pub fn build(catalog: Catalog) -> Result<Self> {
        let hist = HistogramEstimator::build(&catalog)
            .map_err(|e| SutError::Internal(format!("stats build failed: {e}")))?;
        Ok(LearnedCardinalitySut {
            catalog,
            estimator: LearnedEstimator::new(hist),
            execution_work: 0,
            label_work: 0,
            observations: 0,
        })
    }

    /// Number of feedback labels consumed.
    pub fn observations(&self) -> u64 {
        self.observations
    }
}

impl SystemUnderTest<QueryOp> for LearnedCardinalitySut {
    fn name(&self) -> String {
        "learned-cardinality".to_string()
    }

    fn train(&mut self, _budget: u64) -> u64 {
        0 // trains online from execution feedback
    }

    fn execute(&mut self, op: &QueryOp) -> Result<ExecOutcome> {
        let plan = optimize_join_order(&op.query, &self.estimator)
            .map_err(|e| SutError::Internal(format!("optimize failed: {e}")))?;
        let result = execute(&plan.plan, &self.catalog)
            .map_err(|e| SutError::Internal(format!("execute failed: {e}")))?;
        // Collect ground-truth labels (§IV): one work unit per recorded
        // sub-plan cardinality.
        let labels = result.true_cardinalities.len() as u64;
        for (&h, &c) in &result.true_cardinalities {
            self.estimator.observe(h, c);
        }
        self.observations += labels;
        self.label_work += labels;
        let work = result.work + PLAN_OVERHEAD + labels;
        self.execution_work += work;
        Ok(ExecOutcome::ok(work))
    }

    fn metrics(&self) -> SutMetrics {
        SutMetrics {
            size_bytes: self.estimator.shapes_known() * 16,
            training_work: self.label_work,
            execution_work: self.execution_work,
            model_count: 1,
            adaptations: self.observations,
            label_collection_work: self.label_work,
        }
    }
}

/// Plan arms the bandit steers among.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PlanArm {
    /// DP with histogram estimates.
    Histogram,
    /// DP with the learned estimator.
    Learned,
    /// No optimization: join in the textual relation order.
    Naive,
}

const ARMS: [PlanArm; 3] = [PlanArm::Histogram, PlanArm::Learned, PlanArm::Naive];

/// Bao-style SUT: per query shape, an ε-greedy bandit picks among plan
/// arms; observed execution work is the (negative) reward.
#[derive(Debug)]
pub struct BanditQuerySut {
    catalog: Catalog,
    histogram: HistogramEstimator,
    learned: LearnedEstimator,
    steerer: PlanSteerer,
    execution_work: u64,
    label_work: u64,
}

impl BanditQuerySut {
    /// Builds the SUT with exploration rate `epsilon`.
    pub fn build(catalog: Catalog, epsilon: f64, seed: u64) -> Result<Self> {
        let histogram = HistogramEstimator::build(&catalog)
            .map_err(|e| SutError::Internal(format!("stats build failed: {e}")))?;
        let fallback = HistogramEstimator::build(&catalog)
            .map_err(|e| SutError::Internal(format!("stats build failed: {e}")))?;
        Ok(BanditQuerySut {
            catalog,
            histogram,
            learned: LearnedEstimator::new(fallback),
            steerer: PlanSteerer::new(
                vec!["histogram".into(), "learned".into(), "naive".into()],
                epsilon,
                seed,
            ),
            execution_work: 0,
            label_work: 0,
        })
    }

    /// Access to the bandit (for diagnostics in benches).
    pub fn steerer(&self) -> &PlanSteerer {
        &self.steerer
    }

    fn plan_with_arm(&self, arm: PlanArm, q: &JoinQuery) -> Result<QueryNode> {
        let plan = match arm {
            PlanArm::Histogram => optimize_join_order(q, &self.histogram),
            PlanArm::Learned => optimize_join_order(q, &self.learned),
            PlanArm::Naive => return naive_left_deep(q),
        };
        plan.map(|p| p.plan)
            .map_err(|e| SutError::Internal(format!("optimize failed: {e}")))
    }
}

/// Joins relations in input order (the unoptimized baseline arm).
fn naive_left_deep(q: &JoinQuery) -> Result<QueryNode> {
    q.validate()
        .map_err(|e| SutError::Internal(format!("invalid query: {e}")))?;
    let mut plan = q.relations[0].clone();
    let mut joined: Vec<usize> = vec![0];
    let mut remaining: Vec<usize> = (1..q.relations.len()).collect();
    while !remaining.is_empty() {
        // Pick the first remaining relation connected to the joined set.
        let mut advanced = false;
        for (pos, &r) in remaining.iter().enumerate() {
            let mut offset = 0usize;
            let mut conn: Option<(usize, usize)> = None;
            for &jr in &joined {
                for e in &q.edges {
                    if e.left_rel == jr && e.right_rel == r {
                        conn = Some((offset + e.left_col, e.right_col));
                    } else if e.right_rel == jr && e.left_rel == r {
                        conn = Some((offset + e.right_col, e.left_col));
                    }
                }
                offset += q.arities[jr];
            }
            if let Some((lc, rc)) = conn {
                plan = plan.join(q.relations[r].clone(), lc, rc);
                joined.push(r);
                remaining.remove(pos);
                advanced = true;
                break;
            }
        }
        if !advanced {
            return Err(SutError::Internal("disconnected join graph".to_string()));
        }
    }
    Ok(plan)
}

impl SystemUnderTest<QueryOp> for BanditQuerySut {
    fn name(&self) -> String {
        "bandit-steered".to_string()
    }

    fn train(&mut self, _budget: u64) -> u64 {
        0 // reinforcement-style online learning (§V-D.3 notes this case)
    }

    fn execute(&mut self, op: &QueryOp) -> Result<ExecOutcome> {
        let shape = op.shape();
        let arm_idx = self.steerer.choose(shape);
        let arm = ARMS[arm_idx];
        let plan = self.plan_with_arm(arm, &op.query)?;
        let result = execute(&plan, &self.catalog)
            .map_err(|e| SutError::Internal(format!("execute failed: {e}")))?;
        // Feedback: reward the bandit, feed the learned estimator.
        self.steerer.observe(shape, arm_idx, result.work as f64);
        let labels = result.true_cardinalities.len() as u64;
        for (&h, &c) in &result.true_cardinalities {
            self.learned.observe(h, c);
        }
        self.label_work += labels;
        let work = result.work + PLAN_OVERHEAD + labels;
        self.execution_work += work;
        Ok(ExecOutcome::ok(work))
    }

    fn metrics(&self) -> SutMetrics {
        SutMetrics {
            size_bytes: self.learned.shapes_known() * 16 + self.steerer.shapes_seen() * 24,
            training_work: self.label_work,
            execution_work: self.execution_work,
            model_count: 1 + self.steerer.arm_count(),
            adaptations: self.steerer.shapes_seen() as u64,
            label_collection_work: self.label_work,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsbench_query::generator::JoinQueryGenerator;
    use lsbench_query::table::Table;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add(Table::generate("fact", 8000, 3, 1));
        cat.add(Table::generate("d1", 400, 2, 2));
        cat.add(Table::generate("d2", 100, 2, 3));
        cat
    }

    fn gen_queries(cat: &Catalog, n: usize, seed: u64) -> Vec<QueryOp> {
        let mut g =
            JoinQueryGenerator::new(cat, "fact", vec!["d1".into(), "d2".into()], (0, 800), seed)
                .unwrap();
        g.take(n)
            .into_iter()
            .map(|query| QueryOp { query })
            .collect()
    }

    #[test]
    fn traditional_executes_queries() {
        let cat = catalog();
        let mut sut = TraditionalQuerySut::build(cat.clone()).unwrap();
        let ops = gen_queries(&cat, 20, 5);
        for op in &ops {
            let out = sut.execute(op).unwrap();
            assert!(out.ok);
            assert!(out.work > PLAN_OVERHEAD);
        }
        assert_eq!(sut.metrics().model_count, 0);
        assert_eq!(sut.metrics().training_work, 0);
    }

    #[test]
    fn learned_collects_labels() {
        let cat = catalog();
        let mut sut = LearnedCardinalitySut::build(cat.clone()).unwrap();
        let ops = gen_queries(&cat, 20, 6);
        for op in &ops {
            sut.execute(op).unwrap();
        }
        assert!(sut.observations() > 0);
        let m = sut.metrics();
        assert!(m.label_collection_work > 0);
        assert_eq!(m.label_collection_work, m.training_work);
    }

    #[test]
    fn bandit_converges_to_cheap_arm() {
        let cat = catalog();
        let mut sut = BanditQuerySut::build(cat.clone(), 0.1, 7).unwrap();
        // A single repeated query shape: after exploration, the bandit must
        // prefer an optimizer arm over the naive arm if it is cheaper.
        let ops = gen_queries(&cat, 1, 8);
        let op = &ops[0];
        for _ in 0..60 {
            sut.execute(op).unwrap();
        }
        let shape = op.shape();
        let best = sut.steerer().best_arm(shape).unwrap();
        // Verify the chosen arm really is the cheapest by measuring each.
        let mut costs = Vec::new();
        for arm in ARMS {
            let plan = sut.plan_with_arm(arm, &op.query).unwrap();
            costs.push(execute(&plan, &cat).unwrap().work);
        }
        let cheapest = costs.iter().enumerate().min_by_key(|&(_, &c)| c).unwrap().0;
        assert_eq!(
            costs[best], costs[cheapest],
            "bandit best {best} (cost {}) vs true cheapest {cheapest} (cost {}), all {costs:?}",
            costs[best], costs[cheapest]
        );
    }

    #[test]
    fn naive_arm_matches_optimized_results() {
        // All arms must return the same answer (same query semantics).
        let cat = catalog();
        let sut = BanditQuerySut::build(cat.clone(), 0.1, 9).unwrap();
        for op in gen_queries(&cat, 10, 10) {
            let mut counts = Vec::new();
            for arm in ARMS {
                let plan = sut.plan_with_arm(arm, &op.query).unwrap();
                counts.push(execute(&plan, &cat).unwrap().count);
            }
            assert!(
                counts.windows(2).all(|w| w[0] == w[1]),
                "arms disagree: {counts:?}"
            );
        }
    }

    #[test]
    fn shape_hash_ignores_filter_literal_noise() {
        let cat = catalog();
        let mut g1 =
            JoinQueryGenerator::new(&cat, "fact", vec!["d1".into()], (0, 800), 11).unwrap();
        let q1 = QueryOp {
            query: g1.next_query(),
        };
        let q1b = QueryOp {
            query: q1.query.clone(),
        };
        assert_eq!(q1.shape(), q1b.shape());
    }
}
