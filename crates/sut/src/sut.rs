//! The system-under-test interface.
//!
//! §IV of the paper: "A new benchmark should support execution with varying
//! workload and data distributions without imposing architectural,
//! configuration, or runtime constraints … agnostic to the differences
//! across systems yet capture enough relevant metrics." The
//! [`SystemUnderTest`] trait is that contract: the driver only needs to
//! (1) optionally grant an offline training budget, (2) submit operations,
//! (3) announce phase changes, (4) offer maintenance slots, and (5) read
//! metrics. Whether the system is learned or traditional is invisible.

use crate::Result;
use serde::{Deserialize, Serialize};

/// Outcome of executing one operation.
///
/// Serializable so remote SUTs can return outcomes over the wire protocol
/// unchanged — the driver never learns whether an outcome crossed a socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecOutcome {
    /// Abstract work units spent (converted to time by the driver).
    pub work: u64,
    /// Whether the operation succeeded (e.g. hash index rejects scans).
    pub ok: bool,
}

impl ExecOutcome {
    /// A successful outcome with the given work.
    pub fn ok(work: u64) -> Self {
        ExecOutcome { work, ok: true }
    }

    /// A failed/unsupported outcome (work still accounted).
    pub fn failed(work: u64) -> Self {
        ExecOutcome { work, ok: false }
    }
}

/// Metrics every SUT exposes for the cost and specialization reports.
///
/// Serializable so a saved run-record artifact round-trips the *complete*
/// record — cost reports recomputed from a reloaded artifact must match
/// the live run exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SutMetrics {
    /// Approximate memory footprint in bytes.
    pub size_bytes: usize,
    /// Cumulative training work (offline training + online retraining).
    pub training_work: u64,
    /// Cumulative execution work.
    pub execution_work: u64,
    /// Number of learned models currently live (0 for traditional systems).
    pub model_count: usize,
    /// Structural adaptations performed (retrains, splits, plan re-steers).
    pub adaptations: u64,
    /// Work spent collecting ground-truth training labels (§IV).
    pub label_collection_work: u64,
}

/// Transport-level failure counters a SUT adapter accumulates outside the
/// driver's fault plan — real socket deadlines and reconnect-retries on a
/// remote SUT. The driver folds deltas of these into the run's
/// `FaultStats`-equivalent ledger so a wall-clock network timeout and a
/// chaos-injected one are indistinguishable in the record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TransportStats {
    /// Operations re-sent after a transport failure.
    pub retries: u64,
    /// Socket deadlines that expired while waiting for a response.
    pub timeouts: u64,
}

/// A system the benchmark driver can exercise.
///
/// `Op` is the operation type: key-value [`lsbench_workload::Operation`]
/// for storage SUTs, [`crate::query_sut::QueryOp`] for query SUTs.
pub trait SystemUnderTest<Op> {
    /// Display name (e.g. `"rmi+delta"`, `"btree"`).
    fn name(&self) -> String;

    /// Offline training with a work budget (§V-B: "setting the training
    /// time and associated resource overhead"). Returns work actually
    /// spent, which may be less than the budget. Traditional systems
    /// return 0.
    fn train(&mut self, budget: u64) -> u64;

    /// Executes one operation.
    fn execute(&mut self, op: &Op) -> Result<ExecOutcome>;

    /// Executes a batch of operations, one result per op, in order.
    ///
    /// The default loops over [`execute`](Self::execute); adapters with real
    /// dispatch cost (a remote SUT sending frames over a socket) override
    /// this to amortize it. The serial driver routes its hot loop through
    /// here, so overriding is sufficient — no driver changes needed.
    fn execute_many(&mut self, ops: &[Op]) -> Vec<Result<ExecOutcome>> {
        ops.iter().map(|op| self.execute(op)).collect()
    }

    /// Notifies the SUT that the workload/data distribution changed
    /// (systems may ignore this — learning when to adapt is part of what
    /// the benchmark evaluates). Returns adaptation work performed now.
    fn on_phase_change(&mut self, _new_phase: usize) -> u64 {
        0
    }

    /// Periodic maintenance slot (background retraining); returns work.
    fn maintenance(&mut self) -> u64 {
        0
    }

    /// Fault-injection hook: simulate a crash-restart that drops the
    /// system's *volatile learned state* (models, caches) while the
    /// underlying data survives. Returns the recovery work needed to
    /// rebuild that state, which the driver charges to the backlog like a
    /// retrain burst. Traditional systems have nothing to rebuild and keep
    /// the default of 0.
    fn crash(&mut self) -> u64 {
        0
    }

    /// Current metrics.
    fn metrics(&self) -> SutMetrics;

    /// Cumulative transport-level failure counters. In-process SUTs have no
    /// transport and keep the all-zero default; remote adapters report their
    /// socket timeout/retry tallies here so the driver can fold the deltas
    /// into the shared fault ledger.
    fn transport_stats(&self) -> TransportStats {
        TransportStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct NoopSut;
    impl SystemUnderTest<u64> for NoopSut {
        fn name(&self) -> String {
            "noop".to_string()
        }
        fn train(&mut self, _budget: u64) -> u64 {
            0
        }
        fn execute(&mut self, _op: &u64) -> Result<ExecOutcome> {
            Ok(ExecOutcome::ok(1))
        }
        fn metrics(&self) -> SutMetrics {
            SutMetrics::default()
        }
    }

    #[test]
    fn defaults_are_noops() {
        let mut s = NoopSut;
        assert_eq!(s.on_phase_change(1), 0);
        assert_eq!(s.maintenance(), 0);
        assert_eq!(s.crash(), 0);
        assert_eq!(s.execute(&1).unwrap(), ExecOutcome::ok(1));
        assert_eq!(s.transport_stats(), TransportStats::default());
    }

    #[test]
    fn execute_many_default_matches_execute_loop() {
        let mut s = NoopSut;
        let ops = [1u64, 2, 3];
        let batch = s.execute_many(&ops);
        assert_eq!(batch.len(), 3);
        for r in batch {
            assert_eq!(r.unwrap(), ExecOutcome::ok(1));
        }
    }

    #[test]
    fn outcome_constructors() {
        assert!(ExecOutcome::ok(5).ok);
        assert!(!ExecOutcome::failed(5).ok);
        assert_eq!(ExecOutcome::failed(5).work, 5);
    }
}
