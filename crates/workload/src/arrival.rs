//! Arrival processes and load modulation.
//!
//! §III-A lists "diurnal query patterns, temporary bursts in query load or
//! concurrency" among the dynamics real deployments exhibit. This module
//! models *when* operations arrive:
//!
//! * [`ArrivalProcess`] — closed-loop (next op issued on completion) or
//!   open-loop Poisson arrivals at a target rate.
//! * [`LoadModulation`] — a time-varying multiplier on the rate: constant,
//!   diurnal sinusoid, or periodic bursts.
//!
//! Times are unitless "virtual seconds"; the driver decides how they map to
//! wall-clock or simulated time.

use crate::{Result, WorkloadError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How operations are issued over time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Closed loop: the next operation is issued as soon as the previous one
    /// completes (classic benchmark drivers). Inter-arrival gaps are zero.
    ClosedLoop,
    /// Open loop: operations arrive following a Poisson process with the
    /// given base rate (ops per virtual second), regardless of completions.
    Poisson {
        /// Mean arrival rate in operations per virtual second.
        rate: f64,
    },
    /// Open loop with deterministic, evenly spaced arrivals.
    Uniform {
        /// Arrival rate in operations per virtual second.
        rate: f64,
    },
}

impl ArrivalProcess {
    /// Validates the process parameters.
    pub fn validate(&self) -> Result<()> {
        match *self {
            ArrivalProcess::ClosedLoop => Ok(()),
            ArrivalProcess::Poisson { rate } | ArrivalProcess::Uniform { rate } => {
                if rate > 0.0 && rate.is_finite() {
                    Ok(())
                } else {
                    Err(WorkloadError::InvalidParameter(
                        "arrival rate must be positive and finite".to_string(),
                    ))
                }
            }
        }
    }
}

/// A time-varying multiplier applied to the arrival rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LoadModulation {
    /// No modulation; the base rate applies throughout.
    Constant,
    /// Diurnal pattern: rate multiplied by
    /// `1 + amplitude * sin(2π t / period)`, clamped at a small positive
    /// floor. `amplitude` in `[0, 1)` keeps the rate positive.
    Diurnal {
        /// Cycle length in virtual seconds.
        period: f64,
        /// Relative swing of the rate, in `[0, 1)`.
        amplitude: f64,
    },
    /// Periodic bursts: within each `period`, the first `burst_len` seconds
    /// run at `multiplier ×` the base rate; the rest at the base rate.
    Burst {
        /// Cycle length in virtual seconds.
        period: f64,
        /// Burst duration at the start of each cycle.
        burst_len: f64,
        /// Rate multiplier during the burst (> 1 for a spike).
        multiplier: f64,
    },
}

impl LoadModulation {
    /// Validates the modulation parameters.
    pub fn validate(&self) -> Result<()> {
        let bad = |msg: &str| Err(WorkloadError::InvalidParameter(msg.to_string()));
        match *self {
            LoadModulation::Constant => Ok(()),
            LoadModulation::Diurnal { period, amplitude } => {
                if period <= 0.0 {
                    bad("diurnal period must be positive")
                } else if !(0.0..1.0).contains(&amplitude) {
                    bad("diurnal amplitude must be in [0, 1)")
                } else {
                    Ok(())
                }
            }
            LoadModulation::Burst {
                period,
                burst_len,
                multiplier,
            } => {
                if period <= 0.0 || burst_len <= 0.0 || burst_len > period {
                    bad("burst requires 0 < burst_len <= period")
                } else if multiplier <= 0.0 {
                    bad("burst multiplier must be positive")
                } else {
                    Ok(())
                }
            }
        }
    }

    /// The rate multiplier at virtual time `t`.
    pub fn factor_at(&self, t: f64) -> f64 {
        match *self {
            LoadModulation::Constant => 1.0,
            LoadModulation::Diurnal { period, amplitude } => {
                let phase = 2.0 * std::f64::consts::PI * t / period;
                (1.0 + amplitude * phase.sin()).max(1e-6)
            }
            LoadModulation::Burst {
                period,
                burst_len,
                multiplier,
            } => {
                let within = t.rem_euclid(period);
                if within < burst_len {
                    multiplier
                } else {
                    1.0
                }
            }
        }
    }
}

/// Generates arrival times for an [`ArrivalProcess`] under a
/// [`LoadModulation`].
#[derive(Debug, Clone)]
pub struct ArrivalGenerator {
    process: ArrivalProcess,
    modulation: LoadModulation,
    rng: StdRng,
    now: f64,
}

impl ArrivalGenerator {
    /// Creates a generator starting at virtual time zero.
    pub fn new(process: ArrivalProcess, modulation: LoadModulation, seed: u64) -> Result<Self> {
        process.validate()?;
        modulation.validate()?;
        Ok(ArrivalGenerator {
            process,
            modulation,
            rng: StdRng::seed_from_u64(seed),
            now: 0.0,
        })
    }

    /// Current virtual time (time of the last generated arrival).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advances to and returns the next arrival time.
    ///
    /// For [`ArrivalProcess::ClosedLoop`] this returns the current time
    /// unchanged — the driver is responsible for advancing time by
    /// completion latencies.
    pub fn next_arrival(&mut self) -> f64 {
        match self.process {
            ArrivalProcess::ClosedLoop => self.now,
            ArrivalProcess::Poisson { rate } => {
                let eff_rate = rate * self.modulation.factor_at(self.now);
                let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
                let gap = -u.ln() / eff_rate;
                self.now += gap;
                self.now
            }
            ArrivalProcess::Uniform { rate } => {
                let eff_rate = rate * self.modulation.factor_at(self.now);
                self.now += 1.0 / eff_rate;
                self.now
            }
        }
    }

    /// Advances the clock (used by closed-loop drivers after completions).
    pub fn advance(&mut self, dt: f64) {
        debug_assert!(dt >= 0.0);
        self.now += dt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_approximate() {
        let mut g = ArrivalGenerator::new(
            ArrivalProcess::Poisson { rate: 100.0 },
            LoadModulation::Constant,
            1,
        )
        .unwrap();
        let mut last = 0.0;
        for _ in 0..10_000 {
            last = g.next_arrival();
        }
        // 10k arrivals at rate 100 → ~100 virtual seconds.
        assert!((last - 100.0).abs() < 10.0, "last = {last}");
    }

    #[test]
    fn uniform_rate_exact() {
        let mut g = ArrivalGenerator::new(
            ArrivalProcess::Uniform { rate: 10.0 },
            LoadModulation::Constant,
            1,
        )
        .unwrap();
        for i in 1..=100 {
            let t = g.next_arrival();
            assert!((t - i as f64 * 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn closed_loop_stays_put() {
        let mut g =
            ArrivalGenerator::new(ArrivalProcess::ClosedLoop, LoadModulation::Constant, 1).unwrap();
        assert_eq!(g.next_arrival(), 0.0);
        g.advance(2.5);
        assert_eq!(g.next_arrival(), 2.5);
    }

    #[test]
    fn diurnal_factor_oscillates() {
        let m = LoadModulation::Diurnal {
            period: 10.0,
            amplitude: 0.5,
        };
        assert!((m.factor_at(0.0) - 1.0).abs() < 1e-9);
        assert!((m.factor_at(2.5) - 1.5).abs() < 1e-9); // peak at quarter period
        assert!((m.factor_at(7.5) - 0.5).abs() < 1e-9); // trough
    }

    #[test]
    fn burst_factor_spikes() {
        let m = LoadModulation::Burst {
            period: 10.0,
            burst_len: 2.0,
            multiplier: 5.0,
        };
        assert_eq!(m.factor_at(1.0), 5.0);
        assert_eq!(m.factor_at(5.0), 1.0);
        assert_eq!(m.factor_at(11.0), 5.0); // repeats each period
    }

    #[test]
    fn diurnal_poisson_generates_more_arrivals_at_peak() {
        let mut g = ArrivalGenerator::new(
            ArrivalProcess::Poisson { rate: 100.0 },
            LoadModulation::Diurnal {
                period: 100.0,
                amplitude: 0.9,
            },
            2,
        )
        .unwrap();
        let mut peak = 0usize; // t in [0, 50): sin positive
        let mut trough = 0usize; // t in [50, 100): sin negative
        loop {
            let t = g.next_arrival();
            if t >= 100.0 {
                break;
            }
            if t < 50.0 {
                peak += 1;
            } else {
                trough += 1;
            }
        }
        assert!(peak > trough * 2, "peak={peak} trough={trough}");
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(ArrivalProcess::Poisson { rate: 0.0 }.validate().is_err());
        assert!(ArrivalProcess::Uniform { rate: -1.0 }.validate().is_err());
        assert!(LoadModulation::Diurnal {
            period: 0.0,
            amplitude: 0.5
        }
        .validate()
        .is_err());
        assert!(LoadModulation::Diurnal {
            period: 1.0,
            amplitude: 1.0
        }
        .validate()
        .is_err());
        assert!(LoadModulation::Burst {
            period: 1.0,
            burst_len: 2.0,
            multiplier: 2.0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let mk = || {
            ArrivalGenerator::new(
                ArrivalProcess::Poisson { rate: 50.0 },
                LoadModulation::Constant,
                7,
            )
            .unwrap()
        };
        let mut a = mk();
        let mut b = mk();
        for _ in 0..100 {
            assert_eq!(a.next_arrival(), b.next_arrival());
        }
    }
}
