//! Dataset construction, growth, and drift.
//!
//! A [`Dataset`] is the database the system under test indexes: a sorted set
//! of unique `u64` keys with associated values. §III-A calls out "changing
//! data distributions and dataset size" as real-world behaviours benchmarks
//! miss, so datasets here support *growth batches* (new keys arriving over
//! time) and *drift* (interpolation between a source and a target
//! distribution).

use crate::keygen::{KeyDistribution, KeyGenerator};
use crate::Result;

/// A sorted, deduplicated set of `(key, value)` pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    keys: Vec<u64>,
    values: Vec<u64>,
}

impl Dataset {
    /// Builds a dataset of `n` *unique* keys drawn from `dist` over
    /// `[lo, hi)`. Draws until `n` unique keys are collected (or the domain
    /// is exhausted), then sorts.
    ///
    /// Values are derived from keys (`value = key.wrapping_mul(31)`), which
    /// keeps datasets cheap to verify in tests.
    pub fn generate(dist: KeyDistribution, lo: u64, hi: u64, n: usize, seed: u64) -> Result<Self> {
        let mut gen = KeyGenerator::new(dist, lo, hi, seed)?;
        let capacity = ((hi - lo) as usize).min(n);
        let mut set = std::collections::HashSet::with_capacity(capacity);
        // Bound the rejection loop: heavily skewed distributions may not be
        // able to produce n unique keys in reasonable time.
        let max_draws = (n as u64).saturating_mul(50).max(1000);
        let mut draws = 0u64;
        while set.len() < capacity && draws < max_draws {
            set.insert(gen.next_key());
            draws += 1;
        }
        let mut keys: Vec<u64> = set.into_iter().collect();
        keys.sort_unstable();
        let values = keys.iter().map(|k| k.wrapping_mul(31)).collect();
        Ok(Dataset { keys, values })
    }

    /// Builds a dataset directly from keys (deduplicated and sorted here).
    pub fn from_keys(mut keys: Vec<u64>) -> Self {
        keys.sort_unstable();
        keys.dedup();
        let values = keys.iter().map(|k| k.wrapping_mul(31)).collect();
        Dataset { keys, values }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The sorted keys.
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    /// The values, aligned with [`Dataset::keys`].
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// Sorted `(key, value)` pairs.
    pub fn pairs(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.keys.iter().copied().zip(self.values.iter().copied())
    }

    /// The value for `key`, if present.
    pub fn get(&self, key: u64) -> Option<u64> {
        self.keys
            .binary_search(&key)
            .ok()
            .map(|idx| self.values[idx])
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: u64) -> bool {
        self.keys.binary_search(&key).is_ok()
    }

    /// A uniform sample of `n` keys as `f64` for distribution-distance
    /// computations (deterministic stride sampling).
    pub fn sample_f64(&self, n: usize) -> Vec<f64> {
        if self.keys.is_empty() || n == 0 {
            return Vec::new();
        }
        let stride = (self.keys.len() as f64 / n as f64).max(1.0);
        let mut out = Vec::with_capacity(n);
        let mut pos = 0.0f64;
        while (pos as usize) < self.keys.len() && out.len() < n {
            out.push(self.keys[pos as usize] as f64);
            pos += stride;
        }
        out
    }

    /// Merges `batch` (new arrivals) into the dataset, keeping sort order
    /// and uniqueness. Returns how many keys were actually new.
    pub fn grow(&mut self, batch: &Dataset) -> usize {
        let before = self.keys.len();
        let mut merged_keys = Vec::with_capacity(self.keys.len() + batch.keys.len());
        let mut merged_vals = Vec::with_capacity(merged_keys.capacity());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.keys.len() || j < batch.keys.len() {
            let take_self = match (self.keys.get(i), batch.keys.get(j)) {
                (Some(a), Some(b)) => {
                    if a == b {
                        j += 1; // drop duplicate from batch
                        continue;
                    }
                    a < b
                }
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_self {
                merged_keys.push(self.keys[i]);
                merged_vals.push(self.values[i]);
                i += 1;
            } else {
                merged_keys.push(batch.keys[j]);
                merged_vals.push(batch.values[j]);
                j += 1;
            }
        }
        self.keys = merged_keys;
        self.values = merged_vals;
        self.keys.len() - before
    }

    /// Generates a *drifted* variant: a mixture of this dataset's
    /// distribution and a target distribution, with mixing weight
    /// `drift` in `[0, 1]` (0 = original keys, 1 = fully target).
    ///
    /// Used to build scenarios where the database slowly morphs, which
    /// § III-A notes "classical benchmarks rarely capture".
    pub fn drift_towards(
        &self,
        target: KeyDistribution,
        lo: u64,
        hi: u64,
        drift: f64,
        seed: u64,
    ) -> Result<Dataset> {
        let drift = drift.clamp(0.0, 1.0);
        let n = self.len();
        let from_target = (n as f64 * drift) as usize;
        let from_self = n - from_target;
        let mut keys: Vec<u64> = self
            .keys
            .iter()
            .copied()
            .step_by((n / from_self.max(1)).max(1))
            .take(from_self)
            .collect();
        if from_target > 0 {
            let mut gen = KeyGenerator::new(target, lo, hi, seed)?;
            let mut seen: std::collections::HashSet<u64> = keys.iter().copied().collect();
            let mut draws = 0u64;
            let max_draws = (from_target as u64).saturating_mul(50).max(1000);
            while seen.len() < from_self + from_target && draws < max_draws {
                let k = gen.next_key();
                if seen.insert(k) {
                    keys.push(k);
                }
                draws += 1;
            }
        }
        Ok(Dataset::from_keys(keys))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_sorted_unique() {
        let d = Dataset::generate(KeyDistribution::Uniform, 0, 1_000_000, 10_000, 1).unwrap();
        assert_eq!(d.len(), 10_000);
        for w in d.keys().windows(2) {
            assert!(w[0] < w[1], "not sorted-unique");
        }
    }

    #[test]
    fn generate_small_domain_caps() {
        let d = Dataset::generate(KeyDistribution::Uniform, 0, 100, 10_000, 1).unwrap();
        assert!(d.len() <= 100);
        assert!(d.len() > 50, "should nearly exhaust the domain");
    }

    #[test]
    fn skewed_generation_terminates() {
        // zipf(2.0) concentrates on few keys; the draw bound must kick in.
        let d =
            Dataset::generate(KeyDistribution::Zipf { theta: 2.0 }, 0, 10_000, 5_000, 1).unwrap();
        assert!(!d.is_empty());
    }

    #[test]
    fn values_derived_from_keys() {
        let d = Dataset::from_keys(vec![3, 1, 2, 2]);
        assert_eq!(d.keys(), &[1, 2, 3]);
        assert_eq!(d.get(2), Some(62));
        assert_eq!(d.get(4), None);
        assert!(d.contains(1));
        assert!(!d.contains(99));
    }

    #[test]
    fn grow_merges_sorted() {
        let mut d = Dataset::from_keys(vec![1, 5, 9]);
        let batch = Dataset::from_keys(vec![2, 5, 10]);
        let added = d.grow(&batch);
        assert_eq!(added, 2);
        assert_eq!(d.keys(), &[1, 2, 5, 9, 10]);
        // Values stay aligned.
        for (k, v) in d.pairs() {
            assert_eq!(v, k.wrapping_mul(31));
        }
    }

    #[test]
    fn grow_with_empty_batch() {
        let mut d = Dataset::from_keys(vec![1, 2]);
        let added = d.grow(&Dataset::from_keys(vec![]));
        assert_eq!(added, 0);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn sample_f64_spans_dataset() {
        let d = Dataset::from_keys((0..1000).collect());
        let s = d.sample_f64(100);
        assert_eq!(s.len(), 100);
        assert_eq!(s[0], 0.0);
        assert!(*s.last().unwrap() > 900.0);
    }

    #[test]
    fn sample_f64_edge_cases() {
        let d = Dataset::from_keys(vec![]);
        assert!(d.sample_f64(10).is_empty());
        let d = Dataset::from_keys(vec![5]);
        assert_eq!(d.sample_f64(10), vec![5.0]);
    }

    #[test]
    fn drift_zero_keeps_distribution() {
        let d = Dataset::generate(KeyDistribution::Uniform, 0, 100_000, 1000, 3).unwrap();
        let drifted = d
            .drift_towards(KeyDistribution::Zipf { theta: 1.5 }, 0, 100_000, 0.0, 4)
            .unwrap();
        assert_eq!(drifted.len(), d.len());
        assert_eq!(drifted.keys(), d.keys());
    }

    #[test]
    fn drift_full_changes_distribution() {
        let d = Dataset::generate(KeyDistribution::Uniform, 0, 1_000_000, 2000, 5).unwrap();
        let drifted = d
            .drift_towards(
                KeyDistribution::Normal {
                    center: 0.1,
                    std_frac: 0.02,
                },
                0,
                1_000_000,
                1.0,
                6,
            )
            .unwrap();
        // Nearly all drifted keys should sit near 10% of the range.
        let near = drifted.keys().iter().filter(|&&k| k < 200_000).count();
        assert!(
            near as f64 / drifted.len() as f64 > 0.95,
            "near = {near}/{}",
            drifted.len()
        );
    }

    #[test]
    fn drift_half_is_a_mixture() {
        let d = Dataset::generate(KeyDistribution::Uniform, 0, 1_000_000, 2000, 7).unwrap();
        let drifted = d
            .drift_towards(
                KeyDistribution::Normal {
                    center: 0.9,
                    std_frac: 0.01,
                },
                0,
                1_000_000,
                0.5,
                8,
            )
            .unwrap();
        let high = drifted.keys().iter().filter(|&&k| k > 800_000).count();
        let frac = high as f64 / drifted.len() as f64;
        // ~50% target mass near 0.9 plus ~10% of the uniform half.
        assert!((0.4..0.75).contains(&frac), "frac = {frac}");
    }
}
