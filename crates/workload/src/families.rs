//! Generator families modelled on real-workload studies.
//!
//! Synthetic generators with uniform template popularity never produce the
//! two dominant traits of production traces (see PAPERS.md):
//!
//! * **Redbench**: real analytical workloads are dominated by *query
//!   repetition* — a small set of hot query templates, Zipf-popular,
//!   accounts for most executions, and the hot set slowly churns.
//! * **CrypQ**: operational datasets are *append-mostly ledgers* — the key
//!   space only grows, recent keys absorb most accesses, and the absolute
//!   key distribution therefore drifts continuously as the ledger grows.
//!
//! This module provides both as phase-expanding families, in the same shape
//! as the core crate's drift composers: a family is a plain struct whose
//! [`expand`](TemplatedRepetition::expand) unrolls it into concrete
//! [`WorkloadPhase`]s joined by [`TransitionKind`]s. Expansion is pure
//! arithmetic — families return `String` reasons on invalid parameters and
//! the spec parser attaches source positions.

use crate::keygen::KeyDistribution;
use crate::ops::OperationMix;
use crate::phases::{TransitionKind, WorkloadPhase};

/// The phases and the transitions *between* them produced by a family
/// (`transitions.len() == phases.len() - 1`).
pub type FamilyExpansion = (Vec<WorkloadPhase>, Vec<TransitionKind>);

/// Linear interpolation position of step `i` among `steps` (0 at the first
/// step, 1 at the last; 0 for a single step).
fn lerp_t(i: u64, steps: u64) -> f64 {
    if steps <= 1 {
        0.0
    } else {
        i as f64 / (steps - 1) as f64
    }
}

fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

fn check_steps(steps: u64, min: u64) -> Result<(), String> {
    if steps < min {
        Err(format!("needs at least {min} steps, got {steps}"))
    } else if steps > 100_000 {
        Err(format!("{steps} steps is unreasonably many (max 100000)"))
    } else {
        Ok(())
    }
}

fn check_ops(ops_per_step: u64) -> Result<(), String> {
    if ops_per_step == 0 {
        Err("ops_per_step must be positive".to_string())
    } else {
        Ok(())
    }
}

/// Generalized harmonic number `H(k, theta) = Σ_{r=1..k} r^{-theta}`.
fn harmonic(k: u64, theta: f64) -> f64 {
    (1..=k).map(|r| (r as f64).powf(-theta)).sum()
}

/// `templated_repetition { templates, hot_templates, theta, churn }`:
/// hot query templates with Zipf popularity (Redbench).
///
/// The key range is treated as `templates` equal-width template slots, the
/// first `hot_templates` of which form the hot set. Template popularity is
/// Zipf(`theta`): the fraction of accesses landing in the hot set is the
/// Zipf head mass `H(hot_templates, theta) / H(templates, theta)`, realized
/// as a [`KeyDistribution::Hotspot`] whose `hot_span` is the hot set's share
/// of the key space. With `churn > 0` the head mass erodes linearly toward
/// the uniform baseline over the expanded steps — the hot set losing its
/// dominance as the template population turns over.
#[derive(Debug, Clone, PartialEq)]
pub struct TemplatedRepetition {
    /// Phase-name prefix (phases are `{name}-0`, `{name}-1`, …).
    pub name: String,
    /// Number of phases to expand to.
    pub steps: u64,
    /// Operations per expanded phase.
    pub ops_per_step: u64,
    /// Key range partitioned into template slots.
    pub key_range: (u64, u64),
    /// Operation mix shared by every step.
    pub mix: OperationMix,
    /// Total number of query templates (≥ 2).
    pub templates: u64,
    /// Size of the hot template set (≥ 1, < `templates`).
    pub hot_templates: u64,
    /// Zipf exponent of template popularity (> 0).
    pub theta: f64,
    /// Fraction of the Zipf head mass eroded by the final step, in `[0, 1]`.
    pub churn: f64,
}

impl TemplatedRepetition {
    /// Expands the family. See the type-level docs for the schedule.
    pub fn expand(&self) -> Result<FamilyExpansion, String> {
        check_steps(self.steps, 1)?;
        check_ops(self.ops_per_step)?;
        if self.templates < 2 {
            return Err(format!(
                "needs at least 2 templates, got {}",
                self.templates
            ));
        }
        if self.templates > 1_000_000 {
            return Err(format!(
                "{} templates is unreasonably many (max 1000000)",
                self.templates
            ));
        }
        if self.hot_templates == 0 || self.hot_templates >= self.templates {
            return Err(format!(
                "hot_templates must be in [1, templates), got {} of {}",
                self.hot_templates, self.templates
            ));
        }
        if !(self.theta > 0.0 && self.theta.is_finite()) {
            return Err("theta must be positive and finite".to_string());
        }
        if !(0.0..=1.0).contains(&self.churn) {
            return Err("churn must be in [0, 1]".to_string());
        }
        if self.churn > 0.0 && self.steps < 2 {
            return Err("churn needs at least 2 steps to erode over".to_string());
        }
        let hot_span = self.hot_templates as f64 / self.templates as f64;
        let head_mass =
            harmonic(self.hot_templates, self.theta) / harmonic(self.templates, self.theta);
        let phases = (0..self.steps)
            .map(|i| {
                // Erode the Zipf head mass toward the uniform baseline
                // (where the hot set receives exactly its span's share).
                let hot_fraction = lerp(head_mass, hot_span, self.churn * lerp_t(i, self.steps));
                WorkloadPhase::new(
                    format!("{}-{i}", self.name),
                    KeyDistribution::Hotspot {
                        hot_fraction,
                        hot_span,
                    },
                    self.key_range,
                    self.mix.clone(),
                    self.ops_per_step,
                )
            })
            .collect::<Vec<_>>();
        let transitions = vec![TransitionKind::Abrupt; phases.len() - 1];
        Ok((phases, transitions))
    }
}

/// `ledger { start_frac, append_fraction, recency }`: an append-mostly
/// ledger whose key distribution drifts as the ledger grows (CrypQ).
///
/// The key range is the ledger's *final* extent. Step `i` exposes the live
/// prefix `[lo, lo + span · lerp(start_frac, 1, tᵢ))`; accesses concentrate
/// on the most recent `recency` fraction of the live prefix (a truncated
/// normal centered near the live high end), so the *absolute* key
/// distribution drifts every step even though the relative shape is fixed.
/// The mix is derived, not configured: `append_fraction` of operations are
/// inserts (appends — the generator writes fresh keys beyond the live
/// range) and the rest are reads.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerGrowth {
    /// Phase-name prefix (phases are `{name}-0`, `{name}-1`, …).
    pub name: String,
    /// Number of phases to expand to (≥ 2 — growth needs somewhere to go).
    pub steps: u64,
    /// Operations per expanded phase.
    pub ops_per_step: u64,
    /// The ledger's final key range, reached at the last step.
    pub key_range: (u64, u64),
    /// Fraction of the final range live at the first step, in `(0, 1)`.
    pub start_frac: f64,
    /// Fraction of operations that append, in `[0, 1)`.
    pub append_fraction: f64,
    /// Fraction of the live prefix absorbing most accesses, in `(0, 1]`.
    pub recency: f64,
}

impl LedgerGrowth {
    /// Expands the family. See the type-level docs for the schedule.
    pub fn expand(&self) -> Result<FamilyExpansion, String> {
        check_steps(self.steps, 2)?;
        check_ops(self.ops_per_step)?;
        let (lo, hi) = self.key_range;
        if lo >= hi {
            return Err(format!("key_range {lo}..{hi} is empty"));
        }
        if !(self.start_frac > 0.0 && self.start_frac < 1.0) {
            return Err("start_frac must be in (0, 1)".to_string());
        }
        if !(0.0..1.0).contains(&self.append_fraction) {
            return Err("append_fraction must be in [0, 1)".to_string());
        }
        if !(self.recency > 0.0 && self.recency <= 1.0) {
            return Err("recency must be in (0, 1]".to_string());
        }
        let span = (hi - lo) as f64;
        if span * self.start_frac < 1.0 {
            return Err(format!(
                "key_range too small: start_frac {} of {span} keys is empty",
                self.start_frac
            ));
        }
        let mix = OperationMix {
            read: 1.0 - self.append_fraction,
            insert: self.append_fraction,
            update: 0.0,
            scan: 0.0,
            delete: 0.0,
            max_scan_len: 0,
        };
        // Accesses concentrate on the newest `recency` fraction of the live
        // prefix: a normal centered in the middle of that recent window.
        let distribution = KeyDistribution::Normal {
            center: 1.0 - self.recency / 2.0,
            std_frac: self.recency / 4.0,
        };
        let phases = (0..self.steps)
            .map(|i| {
                let frac = lerp(self.start_frac, 1.0, lerp_t(i, self.steps));
                let live_hi = lo + (span * frac).round().max(1.0) as u64;
                WorkloadPhase::new(
                    format!("{}-{i}", self.name),
                    distribution.clone(),
                    (lo, live_hi.min(hi).max(lo + 1)),
                    mix.clone(),
                    self.ops_per_step,
                )
            })
            .collect::<Vec<_>>();
        let transitions = vec![TransitionKind::Abrupt; phases.len() - 1];
        Ok((phases, transitions))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phases::PhasedWorkload;

    fn templated() -> TemplatedRepetition {
        TemplatedRepetition {
            name: "templ".to_string(),
            steps: 4,
            ops_per_step: 1_000,
            key_range: (0, 1_000_000),
            mix: OperationMix::ycsb_c(),
            templates: 100,
            hot_templates: 10,
            theta: 1.1,
            churn: 0.5,
        }
    }

    fn ledger() -> LedgerGrowth {
        LedgerGrowth {
            name: "ledger".to_string(),
            steps: 5,
            ops_per_step: 1_000,
            key_range: (0, 1_000_000),
            start_frac: 0.2,
            append_fraction: 0.3,
            recency: 0.1,
        }
    }

    #[test]
    fn templated_expands_to_validating_workload() {
        let (phases, transitions) = templated().expand().unwrap();
        assert_eq!(phases.len(), 4);
        assert_eq!(transitions.len(), 3);
        PhasedWorkload::new(phases, transitions, 42).unwrap();
    }

    #[test]
    fn templated_head_mass_exceeds_span_and_erodes_with_churn() {
        let (phases, _) = templated().expand().unwrap();
        let fractions: Vec<f64> = phases
            .iter()
            .map(|p| match p.distribution {
                KeyDistribution::Hotspot {
                    hot_fraction,
                    hot_span,
                } => {
                    assert!((hot_span - 0.1).abs() < 1e-12);
                    hot_fraction
                }
                ref other => panic!("expected hotspot, got {other:?}"),
            })
            .collect();
        // Zipf head mass always beats the uniform baseline.
        assert!(fractions[0] > 0.1);
        // Churn erodes the head mass monotonically.
        for w in fractions.windows(2) {
            assert!(w[0] > w[1]);
        }
        // At churn 0.5 the final step keeps half the excess over baseline.
        let expected_last = 0.1 + (fractions[0] - 0.1) * 0.5;
        assert!((fractions[3] - expected_last).abs() < 1e-9);
    }

    #[test]
    fn templated_zero_churn_is_stationary() {
        let mut fam = templated();
        fam.churn = 0.0;
        fam.steps = 1;
        let (phases, transitions) = fam.expand().unwrap();
        assert_eq!(phases.len(), 1);
        assert!(transitions.is_empty());
    }

    #[test]
    fn templated_rejects_bad_parameters() {
        let mut fam = templated();
        fam.hot_templates = 100;
        assert!(fam.expand().unwrap_err().contains("hot_templates"));
        let mut fam = templated();
        fam.theta = 0.0;
        assert!(fam.expand().unwrap_err().contains("theta"));
        let mut fam = templated();
        fam.churn = 1.5;
        assert!(fam.expand().unwrap_err().contains("churn"));
        let mut fam = templated();
        fam.steps = 1;
        assert!(fam.expand().unwrap_err().contains("churn"));
        let mut fam = templated();
        fam.templates = 1;
        assert!(fam.expand().unwrap_err().contains("templates"));
    }

    #[test]
    fn ledger_expands_to_growing_validating_workload() {
        let (phases, transitions) = ledger().expand().unwrap();
        assert_eq!(phases.len(), 5);
        assert_eq!(transitions.len(), 4);
        // The live prefix grows monotonically to the full range.
        let highs: Vec<u64> = phases.iter().map(|p| p.key_range.1).collect();
        for w in highs.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(*highs.first().unwrap(), 200_000);
        assert_eq!(*highs.last().unwrap(), 1_000_000);
        // Derived mix: append_fraction inserts, the rest reads.
        for p in &phases {
            assert!((p.mix.insert - 0.3).abs() < 1e-12);
            assert!((p.mix.read - 0.7).abs() < 1e-12);
        }
        PhasedWorkload::new(phases, transitions, 42).unwrap();
    }

    #[test]
    fn ledger_rejects_bad_parameters() {
        let mut fam = ledger();
        fam.steps = 1;
        assert!(fam.expand().unwrap_err().contains("steps"));
        let mut fam = ledger();
        fam.start_frac = 1.0;
        assert!(fam.expand().unwrap_err().contains("start_frac"));
        let mut fam = ledger();
        fam.append_fraction = 1.0;
        assert!(fam.expand().unwrap_err().contains("append_fraction"));
        let mut fam = ledger();
        fam.recency = 0.0;
        assert!(fam.expand().unwrap_err().contains("recency"));
        let mut fam = ledger();
        fam.key_range = (10, 10);
        assert!(fam.expand().unwrap_err().contains("empty"));
    }
}
