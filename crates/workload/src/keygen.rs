//! Parametric key distributions over a 64-bit integer key space.
//!
//! Each [`KeyDistribution`] describes a *shape*; a [`KeyGenerator`] binds it
//! to a key range and a seeded RNG. Distributions are the knobs the
//! benchmark turns to create easy-to-learn (sequential, uniform) versus
//! hard-to-learn (zipfian, clustered, drifting) datasets and access
//! patterns — exactly the variation §III-A says real deployments exhibit.

use crate::{Result, WorkloadError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Canonical distribution identifiers with one-line summaries — the single
/// source of truth for everything that maps names to distributions: the
/// `lsbench list` and `lsbench quality` commands and the scenario spec
/// language all derive their accepted names from this table, so adding a
/// variant here is the only step needed to surface it everywhere.
pub const CANONICAL_DISTRIBUTIONS: &[(&str, &str)] = &[
    ("uniform", "uniform over the key range"),
    ("zipf", "zipfian popularity (theta)"),
    ("normal", "truncated normal (center, std_frac)"),
    ("lognormal", "log-normal, heavy right tail (mu, sigma)"),
    (
        "hotspot",
        "hot span absorbing most accesses (hot_span, hot_fraction)",
    ),
    (
        "clustered",
        "equally spaced Gaussian bumps (clusters, cluster_std_frac)",
    ),
    ("seq", "sequential with bounded noise (noise_frac)"),
];

/// Shape of a key distribution, independent of the key range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum KeyDistribution {
    /// Uniform over the whole range — maximum entropy, trivial to model.
    Uniform,
    /// Zipfian with exponent `theta > 0`; rank 1 is hottest. Key popularity
    /// follows `1/rank^theta` over the range, scattered by a fixed
    /// permutation so hot keys are not adjacent.
    Zipf {
        /// Skew exponent; 0.99 is the YCSB default, larger is more skewed.
        theta: f64,
    },
    /// Truncated normal centered at `center` (fraction of the range, in
    /// `[0,1]`) with standard deviation `std_frac` of the range width.
    Normal {
        /// Center as a fraction of the key range.
        center: f64,
        /// Standard deviation as a fraction of the key range.
        std_frac: f64,
    },
    /// Log-normal: heavy right tail. `mu` and `sigma` are the parameters of
    /// the underlying normal in log space; samples are scaled into the range.
    LogNormal {
        /// Mean of the underlying normal distribution (log space).
        mu: f64,
        /// Standard deviation of the underlying normal (log space).
        sigma: f64,
    },
    /// Hotspot: `hot_fraction` of accesses hit the first `hot_span` fraction
    /// of the range; the rest are uniform over the remainder.
    Hotspot {
        /// Fraction of the key range that is "hot".
        hot_span: f64,
        /// Fraction of samples landing in the hot span.
        hot_fraction: f64,
    },
    /// Multi-modal: `clusters` equally spaced Gaussian bumps, each with
    /// width `cluster_std_frac` of the range.
    Clustered {
        /// Number of clusters.
        clusters: usize,
        /// Per-cluster standard deviation as a fraction of the range.
        cluster_std_frac: f64,
    },
    /// Sequential with bounded random noise: key `i` maps near position `i`.
    /// Models append-mostly time-ordered data (trivial for learned indexes).
    SequentialNoise {
        /// Maximum absolute displacement as a fraction of the range.
        noise_frac: f64,
    },
}

impl KeyDistribution {
    /// A human-readable name for reports.
    pub fn name(&self) -> String {
        match self {
            KeyDistribution::Uniform => "uniform".to_string(),
            KeyDistribution::Zipf { theta } => format!("zipf({theta})"),
            KeyDistribution::Normal { center, std_frac } => {
                format!("normal(c={center},s={std_frac})")
            }
            KeyDistribution::LogNormal { mu, sigma } => format!("lognormal({mu},{sigma})"),
            KeyDistribution::Hotspot {
                hot_span,
                hot_fraction,
            } => format!("hotspot({hot_span}/{hot_fraction})"),
            KeyDistribution::Clustered {
                clusters,
                cluster_std_frac,
            } => format!("clustered({clusters},{cluster_std_frac})"),
            KeyDistribution::SequentialNoise { noise_frac } => {
                format!("seq-noise({noise_frac})")
            }
        }
    }

    /// The canonical identifier from [`CANONICAL_DISTRIBUTIONS`] for this
    /// distribution's shape (parameters stripped).
    pub fn canonical_name(&self) -> &'static str {
        match self {
            KeyDistribution::Uniform => "uniform",
            KeyDistribution::Zipf { .. } => "zipf",
            KeyDistribution::Normal { .. } => "normal",
            KeyDistribution::LogNormal { .. } => "lognormal",
            KeyDistribution::Hotspot { .. } => "hotspot",
            KeyDistribution::Clustered { .. } => "clustered",
            KeyDistribution::SequentialNoise { .. } => "seq",
        }
    }

    /// A default-parameterized distribution for a canonical identifier, or
    /// `None` for unknown names. Covers every entry of
    /// [`CANONICAL_DISTRIBUTIONS`].
    pub fn from_canonical(name: &str) -> Option<KeyDistribution> {
        match name {
            "uniform" => Some(KeyDistribution::Uniform),
            "zipf" => Some(KeyDistribution::Zipf { theta: 0.99 }),
            "normal" => Some(KeyDistribution::Normal {
                center: 0.5,
                std_frac: 0.1,
            }),
            "lognormal" => Some(KeyDistribution::LogNormal {
                mu: 0.0,
                sigma: 1.2,
            }),
            "hotspot" => Some(KeyDistribution::Hotspot {
                hot_span: 0.05,
                hot_fraction: 0.95,
            }),
            "clustered" => Some(KeyDistribution::Clustered {
                clusters: 4,
                cluster_std_frac: 0.01,
            }),
            "seq" => Some(KeyDistribution::SequentialNoise { noise_frac: 0.01 }),
            _ => None,
        }
    }

    /// Validates the distribution's parameters.
    pub fn validate(&self) -> Result<()> {
        let bad = |msg: &str| Err(WorkloadError::InvalidParameter(msg.to_string()));
        match *self {
            KeyDistribution::Uniform => Ok(()),
            KeyDistribution::Zipf { theta } => {
                if theta <= 0.0 || !theta.is_finite() {
                    bad("zipf theta must be positive and finite")
                } else {
                    Ok(())
                }
            }
            KeyDistribution::Normal { center, std_frac } => {
                if !(0.0..=1.0).contains(&center) {
                    bad("normal center must be in [0, 1]")
                } else if std_frac <= 0.0 {
                    bad("normal std_frac must be positive")
                } else {
                    Ok(())
                }
            }
            KeyDistribution::LogNormal { sigma, .. } => {
                if sigma <= 0.0 {
                    bad("lognormal sigma must be positive")
                } else {
                    Ok(())
                }
            }
            KeyDistribution::Hotspot {
                hot_span,
                hot_fraction,
            } => {
                if !(0.0 < hot_span && hot_span < 1.0) {
                    bad("hot_span must be in (0, 1)")
                } else if !(0.0..=1.0).contains(&hot_fraction) {
                    bad("hot_fraction must be in [0, 1]")
                } else {
                    Ok(())
                }
            }
            KeyDistribution::Clustered {
                clusters,
                cluster_std_frac,
            } => {
                if clusters == 0 {
                    bad("clusters must be > 0")
                } else if cluster_std_frac <= 0.0 {
                    bad("cluster_std_frac must be positive")
                } else {
                    Ok(())
                }
            }
            KeyDistribution::SequentialNoise { noise_frac } => {
                if !(0.0..=1.0).contains(&noise_frac) {
                    bad("noise_frac must be in [0, 1]")
                } else {
                    Ok(())
                }
            }
        }
    }
}

/// Zipf sampler over ranks `1..=n` using Gray's rejection-inversion method
/// (the approach used by `rand_distr`; works for any `theta > 0`).
#[derive(Debug, Clone)]
struct ZipfSampler {
    n: f64,
    theta: f64,
    /// `H(1.5) - 1`, cached.
    hx0: f64,
    /// `H(n + 0.5)`, cached.
    hn: f64,
    s: f64,
}

impl ZipfSampler {
    fn new(n: u64, theta: f64) -> Self {
        let n = n as f64;
        let hx0 = Self::h(1.5, theta) - 1.0;
        let hn = Self::h(n + 0.5, theta);
        let s = 2.0 - Self::h_inv(Self::h(2.5, theta) - (2.0f64).powf(-theta), theta);
        ZipfSampler {
            n,
            theta,
            hx0,
            hn,
            s,
        }
    }

    /// `H(x) = (x^(1-theta) - 1) / (1 - theta)`, or `ln(x)` when theta == 1.
    fn h(x: f64, theta: f64) -> f64 {
        if (theta - 1.0).abs() < 1e-12 {
            x.ln()
        } else {
            (x.powf(1.0 - theta) - 1.0) / (1.0 - theta)
        }
    }

    fn h_inv(x: f64, theta: f64) -> f64 {
        if (theta - 1.0).abs() < 1e-12 {
            x.exp()
        } else {
            (1.0 + x * (1.0 - theta)).powf(1.0 / (1.0 - theta))
        }
    }

    /// Samples a rank in `1..=n` (1 = most popular).
    fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        loop {
            let u = self.hx0 + rng.gen::<f64>() * (self.hn - self.hx0);
            let x = Self::h_inv(u, self.theta);
            let k = (x + 0.5).floor().clamp(1.0, self.n);
            if k - x <= self.s || u >= Self::h(k + 0.5, self.theta) - k.powf(-self.theta) {
                return k as u64;
            }
        }
    }
}

/// A seeded sampler producing `u64` keys in `[lo, hi)` from a
/// [`KeyDistribution`].
#[derive(Debug, Clone)]
pub struct KeyGenerator {
    dist: KeyDistribution,
    lo: u64,
    hi: u64,
    rng: StdRng,
    zipf: Option<ZipfSampler>,
    /// Multiplicative scatter constant for Zipf rank→key mapping (odd, so it
    /// is a bijection modulo 2^64).
    scatter: u64,
    /// Monotone counter for sequential generation.
    seq: u64,
}

impl KeyGenerator {
    /// Creates a generator over `[lo, hi)` with the given seed.
    pub fn new(dist: KeyDistribution, lo: u64, hi: u64, seed: u64) -> Result<Self> {
        dist.validate()?;
        if lo >= hi {
            return Err(WorkloadError::EmptyDomain);
        }
        let zipf = match dist {
            KeyDistribution::Zipf { theta } => Some(ZipfSampler::new(hi - lo, theta)),
            _ => None,
        };
        Ok(KeyGenerator {
            dist,
            lo,
            hi,
            rng: StdRng::seed_from_u64(seed),
            zipf,
            scatter: 0x9E37_79B9_7F4A_7C15, // odd golden-ratio constant
            seq: 0,
        })
    }

    /// The distribution this generator draws from.
    pub fn distribution(&self) -> &KeyDistribution {
        &self.dist
    }

    /// The key range `[lo, hi)`.
    pub fn range(&self) -> (u64, u64) {
        (self.lo, self.hi)
    }

    fn span(&self) -> u64 {
        self.hi - self.lo
    }

    /// Clamps a real-valued position in `[0, 1]` into the key range.
    fn pos_to_key(&self, pos: f64) -> u64 {
        let pos = pos.clamp(0.0, 1.0 - 1e-15);
        self.lo + (pos * self.span() as f64) as u64
    }

    /// Standard normal sample via Box–Muller.
    fn std_normal(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen::<f64>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Draws the next key.
    pub fn next_key(&mut self) -> u64 {
        match self.dist {
            KeyDistribution::Uniform => self.rng.gen_range(self.lo..self.hi),
            KeyDistribution::Zipf { .. } => {
                let rank = self
                    .zipf
                    .as_ref()
                    .expect("zipf sampler initialized in constructor")
                    .sample(&mut self.rng);
                // Scatter ranks over the range so popular keys are spread out,
                // as YCSB does, keeping the mapping deterministic.
                let scattered = (rank.wrapping_mul(self.scatter)) % self.span();
                self.lo + scattered
            }
            KeyDistribution::Normal { center, std_frac } => {
                let z = self.std_normal();
                self.pos_to_key(center + z * std_frac)
            }
            KeyDistribution::LogNormal { mu, sigma } => {
                let z = self.std_normal();
                let v = (mu + sigma * z).exp();
                // Scale so that e^(mu+3sigma) maps near the top of the range.
                let max = (mu + 3.0 * sigma).exp();
                self.pos_to_key(v / max)
            }
            KeyDistribution::Hotspot {
                hot_span,
                hot_fraction,
            } => {
                let pos = if self.rng.gen::<f64>() < hot_fraction {
                    self.rng.gen::<f64>() * hot_span
                } else {
                    hot_span + self.rng.gen::<f64>() * (1.0 - hot_span)
                };
                self.pos_to_key(pos)
            }
            KeyDistribution::Clustered {
                clusters,
                cluster_std_frac,
            } => {
                let c = self.rng.gen_range(0..clusters);
                let center = (c as f64 + 0.5) / clusters as f64;
                let z = self.std_normal();
                self.pos_to_key(center + z * cluster_std_frac)
            }
            KeyDistribution::SequentialNoise { noise_frac } => {
                let i = self.seq;
                self.seq = (self.seq + 1) % self.span();
                let noise_span = (noise_frac * self.span() as f64) as i64;
                let noise = if noise_span > 0 {
                    self.rng.gen_range(-noise_span..=noise_span)
                } else {
                    0
                };
                let base = self.lo + i;
                let shifted = base as i128 + noise as i128;
                shifted.clamp(self.lo as i128, (self.hi - 1) as i128) as u64
            }
        }
    }

    /// Draws `n` keys.
    pub fn take(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.next_key()).collect()
    }

    /// Draws `n` keys as `f64` positions (useful for KS/MMD distance between
    /// distributions).
    pub fn sample_f64(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.next_key() as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh(dist: KeyDistribution) -> KeyGenerator {
        KeyGenerator::new(dist, 0, 1_000_000, 42).unwrap()
    }

    #[test]
    fn canonical_table_round_trips() {
        // Every canonical name resolves to a valid default distribution
        // whose canonical_name maps back — the CLI and spec language rely
        // on this closure property.
        for (name, summary) in CANONICAL_DISTRIBUTIONS {
            let dist = KeyDistribution::from_canonical(name)
                .unwrap_or_else(|| panic!("'{name}' resolves"));
            dist.validate().unwrap();
            assert_eq!(dist.canonical_name(), *name);
            assert!(!summary.is_empty());
        }
        assert_eq!(KeyDistribution::from_canonical("no-such"), None);
    }

    #[test]
    fn keys_stay_in_range() {
        let dists = [
            KeyDistribution::Uniform,
            KeyDistribution::Zipf { theta: 0.99 },
            KeyDistribution::Normal {
                center: 0.5,
                std_frac: 0.1,
            },
            KeyDistribution::LogNormal {
                mu: 0.0,
                sigma: 1.0,
            },
            KeyDistribution::Hotspot {
                hot_span: 0.1,
                hot_fraction: 0.9,
            },
            KeyDistribution::Clustered {
                clusters: 4,
                cluster_std_frac: 0.02,
            },
            KeyDistribution::SequentialNoise { noise_frac: 0.01 },
        ];
        for dist in dists {
            let mut g = fresh(dist.clone());
            for _ in 0..5000 {
                let k = g.next_key();
                assert!(k < 1_000_000, "{} out of range: {k}", dist.name());
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = KeyGenerator::new(KeyDistribution::Zipf { theta: 1.1 }, 0, 1000, 7).unwrap();
        let mut b = KeyGenerator::new(KeyDistribution::Zipf { theta: 1.1 }, 0, 1000, 7).unwrap();
        assert_eq!(a.take(100), b.take(100));
        let mut c = KeyGenerator::new(KeyDistribution::Zipf { theta: 1.1 }, 0, 1000, 8).unwrap();
        assert_ne!(a.take(100), c.take(100));
    }

    #[test]
    fn uniform_covers_range() {
        let mut g = fresh(KeyDistribution::Uniform);
        let keys = g.take(10_000);
        let lo_half = keys.iter().filter(|&&k| k < 500_000).count();
        // Roughly balanced halves.
        assert!((lo_half as i64 - 5000).abs() < 400, "lo_half = {lo_half}");
    }

    #[test]
    fn zipf_is_skewed() {
        let mut g = fresh(KeyDistribution::Zipf { theta: 1.2 });
        let keys = g.take(20_000);
        let mut counts = std::collections::HashMap::new();
        for k in keys {
            *counts.entry(k).or_insert(0u64) += 1;
        }
        let max_count = *counts.values().max().unwrap();
        // Under zipf(1.2) the hottest key dominates; under uniform over 1M
        // keys, max count would be ~1-2.
        assert!(max_count > 500, "max_count = {max_count}");
    }

    #[test]
    fn zipf_theta_one_works() {
        let mut g = fresh(KeyDistribution::Zipf { theta: 1.0 });
        for _ in 0..1000 {
            assert!(g.next_key() < 1_000_000);
        }
    }

    #[test]
    fn normal_concentrates_at_center() {
        let mut g = fresh(KeyDistribution::Normal {
            center: 0.5,
            std_frac: 0.05,
        });
        let keys = g.take(5000);
        let near = keys
            .iter()
            .filter(|&&k| (400_000..600_000).contains(&k))
            .count();
        assert!(near > 4700, "near = {near}"); // ±2 sigma covers ~95%
    }

    #[test]
    fn hotspot_respects_fractions() {
        let mut g = fresh(KeyDistribution::Hotspot {
            hot_span: 0.1,
            hot_fraction: 0.9,
        });
        let keys = g.take(10_000);
        let hot = keys.iter().filter(|&&k| k < 100_000).count();
        assert!((hot as f64 / 10_000.0 - 0.9).abs() < 0.03, "hot = {hot}");
    }

    #[test]
    fn clusters_have_gaps() {
        let mut g = fresh(KeyDistribution::Clustered {
            clusters: 2,
            cluster_std_frac: 0.01,
        });
        let keys = g.take(5000);
        // Midpoint between clusters (at 0.25 and 0.75) should be almost empty.
        let dead_zone = keys
            .iter()
            .filter(|&&k| (400_000..600_000).contains(&k))
            .count();
        assert!(dead_zone < 100, "dead_zone = {dead_zone}");
    }

    #[test]
    fn sequential_is_monotonic_modulo_noise() {
        let mut g = fresh(KeyDistribution::SequentialNoise { noise_frac: 0.0 });
        let keys = g.take(100);
        let expected: Vec<u64> = (0..100).collect();
        assert_eq!(keys, expected);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(KeyGenerator::new(KeyDistribution::Zipf { theta: 0.0 }, 0, 10, 1).is_err());
        assert!(KeyGenerator::new(
            KeyDistribution::Normal {
                center: 2.0,
                std_frac: 0.1
            },
            0,
            10,
            1
        )
        .is_err());
        assert!(KeyGenerator::new(
            KeyDistribution::Hotspot {
                hot_span: 0.0,
                hot_fraction: 0.5
            },
            0,
            10,
            1
        )
        .is_err());
        assert!(KeyGenerator::new(KeyDistribution::Uniform, 10, 10, 1).is_err());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(KeyDistribution::Uniform.name(), "uniform");
        assert_eq!(KeyDistribution::Zipf { theta: 0.99 }.name(), "zipf(0.99)");
    }

    #[test]
    fn sample_f64_matches_keys() {
        let mut a = fresh(KeyDistribution::Uniform);
        let mut b = fresh(KeyDistribution::Uniform);
        let ks = a.take(50);
        let fs = b.sample_f64(50);
        assert_eq!(ks.iter().map(|&k| k as f64).collect::<Vec<_>>(), fs);
    }
}
