//! Workload and data generation for the learned-systems benchmark.
//!
//! The paper's Lesson 1 — *"abstain from fixed workloads and databases as
//! their characteristics are easy to learn"* — requires the benchmark to
//! generate workloads and datasets whose distributions **change over time**:
//! evolving workloads, diurnal patterns, bursts, growing skew, growing
//! datasets (§III-A, §V-B). This crate provides all of it:
//!
//! * [`keygen`] — parametric key distributions (uniform, zipf, normal,
//!   lognormal, hotspot, clustered, sequential) over a 64-bit key space.
//! * [`stringkey`] — the synthetic email-address generator the paper uses as
//!   its example of privacy-preserving data substitution (§V-C).
//! * [`dataset`] — dataset construction, growth, and skew drift.
//! * [`ops`] — operation types and mixes (YCSB-style presets plus custom).
//! * [`arrival`] — open/closed-loop arrival processes with diurnal and burst
//!   load modulation.
//! * [`phases`] — multi-phase workloads with abrupt or gradual transitions
//!   between (distribution, mix) pairs, the heart of a dynamic scenario.
//! * [`families`] — generator families modelled on real-workload studies:
//!   templated query repetition (Redbench) and drifting append-mostly
//!   ledgers (CrypQ).
//! * [`trace`] — recording and replaying generated operation streams.
//! * [`quality`] — the dataset/workload quality-scoring tool of §V-C, which
//!   "attribute\[s] low marks to uniform data distributions and workloads
//!   while favoring datasets exhibiting skew or varying query load".
//!
//! All generators are seeded and deterministic: the same configuration and
//! seed produce the same stream on every platform.

#![warn(missing_docs)]

pub mod arrival;
pub mod dataset;
pub mod families;
pub mod keygen;
pub mod ops;
pub mod phases;
pub mod quality;
pub mod stringkey;
pub mod trace;

pub use arrival::{ArrivalProcess, LoadModulation};
pub use dataset::Dataset;
pub use families::{LedgerGrowth, TemplatedRepetition};
pub use keygen::{KeyDistribution, KeyGenerator};
pub use ops::{Operation, OperationMix};
pub use phases::{PhasedWorkload, TransitionKind, WorkloadPhase};
pub use quality::{score_dataset, score_workload, QualityReport};
pub use stringkey::EmailGenerator;
pub use trace::Trace;

/// Errors produced by workload construction and generation.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// A configuration parameter was outside its valid domain.
    InvalidParameter(String),
    /// A generator was asked to produce data from an empty domain.
    EmptyDomain,
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            WorkloadError::EmptyDomain => write!(f, "generator domain is empty"),
        }
    }
}

impl std::error::Error for WorkloadError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, WorkloadError>;
