//! Operations and operation mixes.
//!
//! An [`Operation`] is the unit of work the benchmark driver sends to the
//! system under test. An [`OperationMix`] is a weighted distribution over
//! operation kinds, with YCSB-style presets; phases combine a mix with a key
//! distribution to form the workload (§V-B: "mixes of query streams").

use crate::keygen::KeyGenerator;
use crate::{Result, WorkloadError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A single operation against a keyed store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Operation {
    /// Point lookup of `key`.
    Read {
        /// The key to look up.
        key: u64,
    },
    /// Insert `key` with `value`.
    Insert {
        /// The key to insert.
        key: u64,
        /// The value to store.
        value: u64,
    },
    /// Update the value of an existing `key`.
    Update {
        /// The key to update.
        key: u64,
        /// The new value.
        value: u64,
    },
    /// Range scan of `len` records starting at `start`.
    Scan {
        /// First key of the scan (inclusive).
        start: u64,
        /// Maximum number of records to return.
        len: u32,
    },
    /// Delete `key`.
    Delete {
        /// The key to delete.
        key: u64,
    },
}

impl Operation {
    /// The operation's kind, for mix accounting.
    pub fn kind(&self) -> OpKind {
        match self {
            Operation::Read { .. } => OpKind::Read,
            Operation::Insert { .. } => OpKind::Insert,
            Operation::Update { .. } => OpKind::Update,
            Operation::Scan { .. } => OpKind::Scan,
            Operation::Delete { .. } => OpKind::Delete,
        }
    }

    /// The primary key the operation touches.
    pub fn key(&self) -> u64 {
        match *self {
            Operation::Read { key }
            | Operation::Insert { key, .. }
            | Operation::Update { key, .. }
            | Operation::Delete { key } => key,
            Operation::Scan { start, .. } => start,
        }
    }

    /// Whether the operation mutates the store.
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            Operation::Insert { .. } | Operation::Update { .. } | Operation::Delete { .. }
        )
    }
}

/// Operation kind without payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Point lookup.
    Read,
    /// Insert of a new key.
    Insert,
    /// Update of an existing key.
    Update,
    /// Range scan.
    Scan,
    /// Deletion.
    Delete,
}

/// Weighted distribution over operation kinds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperationMix {
    /// Weight of reads.
    pub read: f64,
    /// Weight of inserts.
    pub insert: f64,
    /// Weight of updates.
    pub update: f64,
    /// Weight of scans.
    pub scan: f64,
    /// Weight of deletes.
    pub delete: f64,
    /// Maximum scan length (records); scans draw `1..=max_scan_len`.
    pub max_scan_len: u32,
}

impl OperationMix {
    /// Validates and normalizes the mix (weights must be non-negative and
    /// sum to something positive).
    pub fn validate(&self) -> Result<()> {
        let weights = [self.read, self.insert, self.update, self.scan, self.delete];
        if weights.iter().any(|w| *w < 0.0 || !w.is_finite()) {
            return Err(WorkloadError::InvalidParameter(
                "mix weights must be non-negative and finite".to_string(),
            ));
        }
        if weights.iter().sum::<f64>() <= 0.0 {
            return Err(WorkloadError::InvalidParameter(
                "mix weights must not all be zero".to_string(),
            ));
        }
        if self.scan > 0.0 && self.max_scan_len == 0 {
            return Err(WorkloadError::InvalidParameter(
                "max_scan_len must be positive when scans have weight".to_string(),
            ));
        }
        Ok(())
    }

    /// YCSB workload A: 50% reads, 50% updates.
    pub fn ycsb_a() -> Self {
        OperationMix {
            read: 0.5,
            insert: 0.0,
            update: 0.5,
            scan: 0.0,
            delete: 0.0,
            max_scan_len: 0,
        }
    }

    /// YCSB workload B: 95% reads, 5% updates.
    pub fn ycsb_b() -> Self {
        OperationMix {
            read: 0.95,
            insert: 0.0,
            update: 0.05,
            scan: 0.0,
            delete: 0.0,
            max_scan_len: 0,
        }
    }

    /// YCSB workload C: read-only.
    pub fn ycsb_c() -> Self {
        OperationMix {
            read: 1.0,
            insert: 0.0,
            update: 0.0,
            scan: 0.0,
            delete: 0.0,
            max_scan_len: 0,
        }
    }

    /// YCSB workload D: 95% reads, 5% inserts (read-latest flavour).
    pub fn ycsb_d() -> Self {
        OperationMix {
            read: 0.95,
            insert: 0.05,
            update: 0.0,
            scan: 0.0,
            delete: 0.0,
            max_scan_len: 0,
        }
    }

    /// YCSB workload E: 95% scans, 5% inserts.
    pub fn ycsb_e() -> Self {
        OperationMix {
            read: 0.0,
            insert: 0.05,
            update: 0.0,
            scan: 0.95,
            delete: 0.0,
            max_scan_len: 100,
        }
    }

    /// Read-heavy range workload used by the figure benches.
    pub fn range_heavy() -> Self {
        OperationMix {
            read: 0.5,
            insert: 0.0,
            update: 0.0,
            scan: 0.5,
            delete: 0.0,
            max_scan_len: 64,
        }
    }

    /// Draws an operation kind according to the weights.
    fn sample_kind<R: Rng>(&self, rng: &mut R) -> OpKind {
        let total = self.read + self.insert + self.update + self.scan + self.delete;
        let mut u = rng.gen::<f64>() * total;
        for (kind, w) in [
            (OpKind::Read, self.read),
            (OpKind::Insert, self.insert),
            (OpKind::Update, self.update),
            (OpKind::Scan, self.scan),
            (OpKind::Delete, self.delete),
        ] {
            if u < w {
                return kind;
            }
            u -= w;
        }
        OpKind::Read
    }
}

/// Generates a stream of operations from a key generator and a mix.
#[derive(Debug, Clone)]
pub struct OperationGenerator {
    keygen: KeyGenerator,
    mix: OperationMix,
    rng: StdRng,
    /// Monotone counter for fresh insert keys (appended past the dataset).
    insert_counter: u64,
}

impl OperationGenerator {
    /// Creates a generator drawing keys from `keygen` and kinds from `mix`.
    pub fn new(keygen: KeyGenerator, mix: OperationMix, seed: u64) -> Result<Self> {
        mix.validate()?;
        Ok(OperationGenerator {
            keygen,
            mix,
            rng: StdRng::seed_from_u64(seed),
            insert_counter: 0,
        })
    }

    /// The mix in use.
    pub fn mix(&self) -> &OperationMix {
        &self.mix
    }

    /// Replaces the key generator (used during phase transitions).
    pub fn set_keygen(&mut self, keygen: KeyGenerator) {
        self.keygen = keygen;
    }

    /// Replaces the mix (used during phase transitions).
    pub fn set_mix(&mut self, mix: OperationMix) -> Result<()> {
        mix.validate()?;
        self.mix = mix;
        Ok(())
    }

    /// Produces the next operation.
    pub fn next_op(&mut self) -> Operation {
        let kind = self.mix.sample_kind(&mut self.rng);
        match kind {
            OpKind::Read => Operation::Read {
                key: self.keygen.next_key(),
            },
            OpKind::Insert => {
                // Inserts target fresh keys beyond the loaded range to model
                // dataset growth; mix with in-range keys occasionally to
                // exercise duplicate handling.
                self.insert_counter += 1;
                let (_, hi) = self.keygen.range();
                let key = if self.insert_counter.is_multiple_of(16) {
                    self.keygen.next_key()
                } else {
                    hi.saturating_add(self.insert_counter)
                };
                Operation::Insert {
                    key,
                    value: key.wrapping_mul(31),
                }
            }
            OpKind::Update => {
                let key = self.keygen.next_key();
                Operation::Update {
                    key,
                    value: self.rng.gen(),
                }
            }
            OpKind::Scan => Operation::Scan {
                start: self.keygen.next_key(),
                len: self.rng.gen_range(1..=self.mix.max_scan_len),
            },
            OpKind::Delete => Operation::Delete {
                key: self.keygen.next_key(),
            },
        }
    }

    /// Produces `n` operations.
    pub fn take(&mut self, n: usize) -> Vec<Operation> {
        (0..n).map(|_| self.next_op()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keygen::KeyDistribution;

    fn gen_with_mix(mix: OperationMix) -> OperationGenerator {
        let kg = KeyGenerator::new(KeyDistribution::Uniform, 0, 100_000, 1).unwrap();
        OperationGenerator::new(kg, mix, 2).unwrap()
    }

    #[test]
    fn mix_fractions_respected() {
        let mut g = gen_with_mix(OperationMix::ycsb_b());
        let ops = g.take(10_000);
        let reads = ops.iter().filter(|o| o.kind() == OpKind::Read).count();
        let updates = ops.iter().filter(|o| o.kind() == OpKind::Update).count();
        assert!((reads as f64 / 10_000.0 - 0.95).abs() < 0.02);
        assert!((updates as f64 / 10_000.0 - 0.05).abs() < 0.02);
    }

    #[test]
    fn read_only_mix() {
        let mut g = gen_with_mix(OperationMix::ycsb_c());
        assert!(g.take(1000).iter().all(|o| o.kind() == OpKind::Read));
    }

    #[test]
    fn scan_lengths_bounded() {
        let mut g = gen_with_mix(OperationMix::ycsb_e());
        for op in g.take(1000) {
            if let Operation::Scan { len, .. } = op {
                assert!((1..=100).contains(&len));
            }
        }
    }

    #[test]
    fn invalid_mixes_rejected() {
        let zero = OperationMix {
            read: 0.0,
            insert: 0.0,
            update: 0.0,
            scan: 0.0,
            delete: 0.0,
            max_scan_len: 0,
        };
        assert!(zero.validate().is_err());
        let negative = OperationMix {
            read: -1.0,
            ..OperationMix::ycsb_c()
        };
        assert!(negative.validate().is_err());
        let scan_no_len = OperationMix {
            scan: 1.0,
            max_scan_len: 0,
            ..OperationMix::ycsb_c()
        };
        assert!(scan_no_len.validate().is_err());
    }

    #[test]
    fn deterministic_stream() {
        let mut a = gen_with_mix(OperationMix::ycsb_a());
        let mut b = gen_with_mix(OperationMix::ycsb_a());
        assert_eq!(a.take(200), b.take(200));
    }

    #[test]
    fn inserts_use_fresh_keys_mostly() {
        let mut g = gen_with_mix(OperationMix::ycsb_d());
        let fresh = g
            .take(5000)
            .iter()
            .filter(|o| matches!(o, Operation::Insert { key, .. } if *key >= 100_000))
            .count();
        let total_inserts = 5000 / 20; // about 5%
        assert!(fresh as f64 > total_inserts as f64 * 0.7, "fresh = {fresh}");
    }

    #[test]
    fn operation_accessors() {
        let op = Operation::Scan { start: 42, len: 10 };
        assert_eq!(op.key(), 42);
        assert!(!op.is_write());
        let op = Operation::Delete { key: 7 };
        assert!(op.is_write());
        assert_eq!(op.kind(), OpKind::Delete);
    }

    #[test]
    fn set_mix_validates() {
        let mut g = gen_with_mix(OperationMix::ycsb_c());
        assert!(g
            .set_mix(OperationMix {
                read: -0.5,
                ..OperationMix::ycsb_c()
            })
            .is_err());
        assert!(g.set_mix(OperationMix::ycsb_a()).is_ok());
        assert_eq!(g.mix(), &OperationMix::ycsb_a());
    }
}
