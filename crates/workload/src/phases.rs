//! Multi-phase workloads with configurable transitions.
//!
//! The heart of a *dynamic scenario* (§V-B): "a workload can slowly
//! transition to another or transition abruptly. … the benchmark must make
//! it possible to define how many different workload and data distributions
//! to use and in which order they should be executed."
//!
//! A [`PhasedWorkload`] is an ordered list of [`WorkloadPhase`]s (each a key
//! distribution + operation mix + length) joined by [`TransitionKind`]s.
//! Iterating yields [`LabeledOp`]s carrying the phase index, so the metrics
//! layer can attribute every query to a distribution.

use crate::keygen::{KeyDistribution, KeyGenerator};
use crate::ops::{Operation, OperationGenerator, OperationMix};
use crate::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One stretch of workload with a fixed key distribution and operation mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadPhase {
    /// Human-readable name used in reports (e.g. `"uniform-read-heavy"`).
    pub name: String,
    /// Distribution of accessed keys.
    pub distribution: KeyDistribution,
    /// Key range `[lo, hi)` the distribution covers.
    pub key_range: (u64, u64),
    /// Operation mix.
    pub mix: OperationMix,
    /// Number of operations in this phase.
    pub ops: u64,
    /// Open-loop concurrency multiplier for this phase: the concurrent
    /// driver divides inter-arrival gaps by this factor, so a value of 2.0
    /// doubles the offered load while the phase is active (a *concurrency
    /// burst*). Closed-loop runs ignore it. Must be positive and finite;
    /// defaults to 1.0 (no burst).
    pub concurrency_burst: f64,
}

impl WorkloadPhase {
    /// Convenience constructor (no concurrency burst).
    pub fn new(
        name: impl Into<String>,
        distribution: KeyDistribution,
        key_range: (u64, u64),
        mix: OperationMix,
        ops: u64,
    ) -> Self {
        WorkloadPhase {
            name: name.into(),
            distribution,
            key_range,
            mix,
            ops,
            concurrency_burst: 1.0,
        }
    }

    /// Sets the open-loop concurrency multiplier for this phase.
    pub fn with_concurrency_burst(mut self, factor: f64) -> Self {
        self.concurrency_burst = factor;
        self
    }
}

/// How one phase hands over to the next.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TransitionKind {
    /// The next phase starts instantly at full intensity.
    Abrupt,
    /// Over the first `window` fraction (in `(0, 1]`) of the next phase,
    /// operations are drawn from the old and new phases with a linearly
    /// shifting probability (0% new at the start of the window, 100% at
    /// its end).
    Gradual {
        /// Fraction of the next phase over which the mix shifts.
        window: f64,
    },
}

impl TransitionKind {
    fn validate(&self) -> Result<()> {
        match *self {
            TransitionKind::Abrupt => Ok(()),
            TransitionKind::Gradual { window } => {
                if window > 0.0 && window <= 1.0 {
                    Ok(())
                } else {
                    Err(crate::WorkloadError::InvalidParameter(
                        "gradual window must be in (0, 1]".to_string(),
                    ))
                }
            }
        }
    }
}

/// An operation labeled with its originating phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabeledOp {
    /// The operation to execute.
    pub op: Operation,
    /// Index of the *scheduled* phase (the phase whose ops budget this
    /// operation consumes).
    pub phase: usize,
    /// Index of the phase the operation was actually drawn from — differs
    /// from `phase` only inside a gradual-transition window.
    pub drawn_from: usize,
    /// True while inside a gradual-transition window.
    pub in_transition: bool,
}

/// A full multi-phase workload specification plus generation state.
#[derive(Debug, Clone, PartialEq)]
pub struct PhasedWorkload {
    phases: Vec<WorkloadPhase>,
    /// `transitions[i]` joins phase `i` to phase `i + 1`.
    transitions: Vec<TransitionKind>,
    seed: u64,
}

impl PhasedWorkload {
    /// Creates a phased workload. `transitions` must have exactly
    /// `phases.len() - 1` entries (empty for a single phase).
    pub fn new(
        phases: Vec<WorkloadPhase>,
        transitions: Vec<TransitionKind>,
        seed: u64,
    ) -> Result<Self> {
        if phases.is_empty() {
            return Err(crate::WorkloadError::InvalidParameter(
                "at least one phase is required".to_string(),
            ));
        }
        if transitions.len() + 1 != phases.len() {
            return Err(crate::WorkloadError::InvalidParameter(format!(
                "need {} transitions for {} phases, got {}",
                phases.len() - 1,
                phases.len(),
                transitions.len()
            )));
        }
        for p in &phases {
            p.distribution.validate()?;
            p.mix.validate()?;
            if p.key_range.0 >= p.key_range.1 {
                return Err(crate::WorkloadError::EmptyDomain);
            }
            if p.ops == 0 {
                return Err(crate::WorkloadError::InvalidParameter(format!(
                    "phase '{}' has zero ops",
                    p.name
                )));
            }
            if !(p.concurrency_burst > 0.0 && p.concurrency_burst.is_finite()) {
                return Err(crate::WorkloadError::InvalidParameter(format!(
                    "phase '{}' concurrency_burst must be positive and finite",
                    p.name
                )));
            }
        }
        for t in &transitions {
            t.validate()?;
        }
        Ok(PhasedWorkload {
            phases,
            transitions,
            seed,
        })
    }

    /// Single-phase convenience constructor.
    pub fn single(phase: WorkloadPhase, seed: u64) -> Result<Self> {
        Self::new(vec![phase], vec![], seed)
    }

    /// The phases.
    pub fn phases(&self) -> &[WorkloadPhase] {
        &self.phases
    }

    /// The transitions between consecutive phases.
    pub fn transitions(&self) -> &[TransitionKind] {
        &self.transitions
    }

    /// The generation seed every phase generator derives from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Total operations across all phases.
    pub fn total_ops(&self) -> u64 {
        self.phases.iter().map(|p| p.ops).sum()
    }

    /// The operation index at which phase `i` begins.
    pub fn phase_start(&self, i: usize) -> u64 {
        self.phases[..i].iter().map(|p| p.ops).sum()
    }

    /// Builds the labeled operation stream generator.
    pub fn stream(&self) -> Result<PhasedStream> {
        let mut generators = Vec::with_capacity(self.phases.len());
        for (i, p) in self.phases.iter().enumerate() {
            let kg = KeyGenerator::new(
                p.distribution.clone(),
                p.key_range.0,
                p.key_range.1,
                self.seed.wrapping_add(i as u64 * 1_000_003),
            )?;
            generators.push(OperationGenerator::new(
                kg,
                p.mix.clone(),
                self.seed.wrapping_add(0xBEEF + i as u64),
            )?);
        }
        Ok(PhasedStream {
            workload: self.clone(),
            generators,
            rng: StdRng::seed_from_u64(self.seed ^ 0x5EED),
            produced: 0,
        })
    }
}

/// Iterator state producing [`LabeledOp`]s for a [`PhasedWorkload`].
#[derive(Debug, Clone)]
pub struct PhasedStream {
    workload: PhasedWorkload,
    generators: Vec<OperationGenerator>,
    rng: StdRng,
    produced: u64,
}

impl PhasedStream {
    /// Total operations this stream will produce.
    pub fn total_ops(&self) -> u64 {
        self.workload.total_ops()
    }

    /// Operations produced so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// Which phase the operation counter `idx` falls into.
    fn phase_of(&self, idx: u64) -> usize {
        let mut acc = 0u64;
        for (i, p) in self.workload.phases.iter().enumerate() {
            acc += p.ops;
            if idx < acc {
                return i;
            }
        }
        self.workload.phases.len() - 1
    }
}

impl Iterator for PhasedStream {
    type Item = LabeledOp;

    fn next(&mut self) -> Option<LabeledOp> {
        if self.produced >= self.workload.total_ops() {
            return None;
        }
        let idx = self.produced;
        self.produced += 1;
        let phase = self.phase_of(idx);
        let within = idx - self.workload.phase_start(phase);
        let (drawn_from, in_transition) = if phase == 0 {
            (phase, false)
        } else {
            match self.workload.transitions[phase - 1] {
                TransitionKind::Abrupt => (phase, false),
                TransitionKind::Gradual { window } => {
                    let window_ops =
                        (self.workload.phases[phase].ops as f64 * window).max(1.0) as u64;
                    if within < window_ops {
                        // Probability of drawing from the NEW phase ramps
                        // linearly from 0 to 1 across the window.
                        let p_new = (within as f64 + 0.5) / window_ops as f64;
                        if self.rng.gen::<f64>() < p_new {
                            (phase, true)
                        } else {
                            (phase - 1, true)
                        }
                    } else {
                        (phase, false)
                    }
                }
            }
        };
        let op = self.generators[drawn_from].next_op();
        Some(LabeledOp {
            op,
            phase,
            drawn_from,
            in_transition,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase(name: &str, dist: KeyDistribution, ops: u64) -> WorkloadPhase {
        WorkloadPhase::new(name, dist, (0, 100_000), OperationMix::ycsb_c(), ops)
    }

    #[test]
    fn single_phase_stream() {
        let w = PhasedWorkload::single(phase("p0", KeyDistribution::Uniform, 100), 1).unwrap();
        let ops: Vec<LabeledOp> = w.stream().unwrap().collect();
        assert_eq!(ops.len(), 100);
        assert!(ops.iter().all(|o| o.phase == 0 && !o.in_transition));
    }

    #[test]
    fn abrupt_transition_labels() {
        let w = PhasedWorkload::new(
            vec![
                phase("a", KeyDistribution::Uniform, 50),
                phase("b", KeyDistribution::Zipf { theta: 1.0 }, 50),
            ],
            vec![TransitionKind::Abrupt],
            2,
        )
        .unwrap();
        let ops: Vec<LabeledOp> = w.stream().unwrap().collect();
        assert_eq!(ops.len(), 100);
        assert!(ops[..50].iter().all(|o| o.phase == 0 && o.drawn_from == 0));
        assert!(ops[50..].iter().all(|o| o.phase == 1 && o.drawn_from == 1));
        assert!(ops.iter().all(|o| !o.in_transition));
    }

    #[test]
    fn gradual_transition_mixes() {
        let w = PhasedWorkload::new(
            vec![
                phase("a", KeyDistribution::Uniform, 1000),
                phase("b", KeyDistribution::Uniform, 1000),
            ],
            vec![TransitionKind::Gradual { window: 0.5 }],
            3,
        )
        .unwrap();
        let ops: Vec<LabeledOp> = w.stream().unwrap().collect();
        // Inside the window (first 500 ops of phase b), some draws come from
        // the old phase and all are marked in_transition.
        let window: Vec<&LabeledOp> = ops[1000..1500].iter().collect();
        assert!(window.iter().all(|o| o.in_transition && o.phase == 1));
        let from_old = window.iter().filter(|o| o.drawn_from == 0).count();
        let from_new = window.iter().filter(|o| o.drawn_from == 1).count();
        assert!(from_old > 100, "from_old = {from_old}");
        assert!(from_new > 100, "from_new = {from_new}");
        // Early window leans old; late window leans new.
        let early_old = ops[1000..1100].iter().filter(|o| o.drawn_from == 0).count();
        let late_old = ops[1400..1500].iter().filter(|o| o.drawn_from == 0).count();
        assert!(early_old > late_old, "early={early_old} late={late_old}");
        // After the window everything is from the new phase.
        assert!(ops[1500..]
            .iter()
            .all(|o| o.drawn_from == 1 && !o.in_transition));
    }

    #[test]
    fn validation_errors() {
        assert!(PhasedWorkload::new(vec![], vec![], 1).is_err());
        assert!(PhasedWorkload::new(
            vec![phase("a", KeyDistribution::Uniform, 10)],
            vec![TransitionKind::Abrupt],
            1
        )
        .is_err());
        assert!(PhasedWorkload::new(
            vec![
                phase("a", KeyDistribution::Uniform, 10),
                phase("b", KeyDistribution::Uniform, 0),
            ],
            vec![TransitionKind::Abrupt],
            1
        )
        .is_err());
        assert!(PhasedWorkload::new(
            vec![
                phase("a", KeyDistribution::Uniform, 10),
                phase("b", KeyDistribution::Uniform, 10),
            ],
            vec![TransitionKind::Gradual { window: 0.0 }],
            1
        )
        .is_err());
    }

    #[test]
    fn phase_start_and_totals() {
        let w = PhasedWorkload::new(
            vec![
                phase("a", KeyDistribution::Uniform, 10),
                phase("b", KeyDistribution::Uniform, 20),
                phase("c", KeyDistribution::Uniform, 30),
            ],
            vec![TransitionKind::Abrupt, TransitionKind::Abrupt],
            1,
        )
        .unwrap();
        assert_eq!(w.total_ops(), 60);
        assert_eq!(w.phase_start(0), 0);
        assert_eq!(w.phase_start(1), 10);
        assert_eq!(w.phase_start(2), 30);
    }

    #[test]
    fn deterministic_stream() {
        let w = PhasedWorkload::new(
            vec![
                phase("a", KeyDistribution::Uniform, 100),
                phase("b", KeyDistribution::Zipf { theta: 1.2 }, 100),
            ],
            vec![TransitionKind::Gradual { window: 0.3 }],
            9,
        )
        .unwrap();
        let a: Vec<LabeledOp> = w.stream().unwrap().collect();
        let b: Vec<LabeledOp> = w.stream().unwrap().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_phases_use_different_key_patterns() {
        // Phase b concentrates keys near the bottom decile; phase a is uniform.
        let w = PhasedWorkload::new(
            vec![
                phase("a", KeyDistribution::Uniform, 2000),
                WorkloadPhase::new(
                    "b",
                    KeyDistribution::Normal {
                        center: 0.05,
                        std_frac: 0.01,
                    },
                    (0, 100_000),
                    OperationMix::ycsb_c(),
                    2000,
                ),
            ],
            vec![TransitionKind::Abrupt],
            4,
        )
        .unwrap();
        let ops: Vec<LabeledOp> = w.stream().unwrap().collect();
        let low_a = ops[..2000].iter().filter(|o| o.op.key() < 10_000).count();
        let low_b = ops[2000..].iter().filter(|o| o.op.key() < 10_000).count();
        assert!(low_a < 400, "low_a = {low_a}"); // ~10% of uniform
        assert!(low_b > 1800, "low_b = {low_b}"); // nearly all of normal(0.05)
    }

    #[test]
    fn concurrency_burst_defaults_and_validates() {
        let p = phase("p", KeyDistribution::Uniform, 10);
        assert_eq!(p.concurrency_burst, 1.0);
        let burst = p.clone().with_concurrency_burst(2.5);
        assert_eq!(burst.concurrency_burst, 2.5);
        assert!(PhasedWorkload::single(burst, 1).is_ok());
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let w = PhasedWorkload::single(p.clone().with_concurrency_burst(bad), 1);
            assert!(w.is_err(), "burst {bad} accepted");
        }
    }
}
