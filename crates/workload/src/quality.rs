//! Dataset and workload quality scoring.
//!
//! §V-C of the paper proposes "a software tool that evaluates the quality
//! and relevance of a given dataset for the benchmark. For example, this
//! tool could attribute low marks to uniform data distributions and
//! workloads while favoring datasets exhibiting skew or varying query
//! load." This module is that tool.
//!
//! Scores are in `[0, 1]` where higher means *more interesting for a
//! learned-system benchmark*: a dataset that is trivially uniform or
//! perfectly sequential scores low, while skew, clustering, and temporal
//! load variation score high.

use lsbench_stats::histogram::EquiWidthHistogram;
use lsbench_stats::Summary;
use serde::{Deserialize, Serialize};

/// Component scores plus the overall quality verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityReport {
    /// 1 − normalized entropy of the key histogram: 0 for perfectly uniform
    /// data, approaching 1 for extreme concentration.
    pub skew_score: f64,
    /// Dispersion of bucket masses (coefficient of variation of the
    /// histogram, squashed into `[0, 1]`); rewards clustered / multi-modal
    /// shapes that uniform data lacks.
    pub clustering_score: f64,
    /// Temporal variation of the load (squashed CV of per-interval op
    /// counts); 0 for perfectly steady load.
    pub load_variation_score: f64,
    /// Weighted overall score in `[0, 1]`.
    pub overall: f64,
    /// Number of key samples scored.
    pub key_samples: usize,
    /// Number of load intervals scored (0 when no load series given).
    pub load_intervals: usize,
}

/// Number of histogram buckets used for scoring.
const SCORE_BUCKETS: usize = 64;

/// Squashes a non-negative value into `[0, 1)` via `x / (1 + x)`.
fn squash(x: f64) -> f64 {
    let x = x.max(0.0);
    x / (1.0 + x)
}

/// Scores the *data distribution* quality of a key sample.
///
/// Returns 0 for empty input.
pub fn score_dataset(keys: &[f64]) -> QualityReport {
    if keys.is_empty() {
        return QualityReport {
            skew_score: 0.0,
            clustering_score: 0.0,
            load_variation_score: 0.0,
            overall: 0.0,
            key_samples: 0,
            load_intervals: 0,
        };
    }
    let (skew_score, clustering_score) = distribution_scores(keys);
    let overall = 0.6 * skew_score + 0.4 * clustering_score;
    QualityReport {
        skew_score,
        clustering_score,
        load_variation_score: 0.0,
        overall,
        key_samples: keys.len(),
        load_intervals: 0,
    }
}

/// Scores a full workload: key distribution *plus* temporal load variation.
///
/// `interval_loads` are operation counts per fixed time interval (e.g. from
/// [`lsbench_stats::CumulativeCurve::interval_counts`]); a diurnal or bursty
/// load earns a high `load_variation_score`, a constant load earns zero.
pub fn score_workload(keys: &[f64], interval_loads: &[usize]) -> QualityReport {
    let mut report = score_dataset(keys);
    if interval_loads.len() >= 2 {
        let loads: Vec<f64> = interval_loads.iter().map(|&c| c as f64).collect();
        let s = Summary::of(&loads).expect("non-empty by check above");
        let cv = s.coefficient_of_variation().unwrap_or(0.0);
        // CV of 0 = steady; CV around 1 = strongly varying.
        report.load_variation_score = squash(2.0 * cv);
        report.load_intervals = interval_loads.len();
    }
    report.overall = 0.45 * report.skew_score
        + 0.25 * report.clustering_score
        + 0.30 * report.load_variation_score;
    report
}

/// Computes (skew, clustering) scores from a key sample.
fn distribution_scores(keys: &[f64]) -> (f64, f64) {
    let hist = match EquiWidthHistogram::from_data(keys, SCORE_BUCKETS) {
        Ok(h) => h,
        // Constant data: a single point mass is maximal skew.
        Err(_) => return (1.0, 0.0),
    };
    let max_entropy = (SCORE_BUCKETS as f64).log2();
    let entropy = hist.entropy_bits();
    let skew = (1.0 - entropy / max_entropy).clamp(0.0, 1.0);
    // Clustering: coefficient of variation of bucket probabilities. Uniform
    // data → all buckets equal → CV 0. A few dense clusters → high CV.
    let probs = hist.probabilities();
    let s = Summary::of(&probs).expect("fixed-size bucket vector");
    let cv = s.coefficient_of_variation().unwrap_or(0.0);
    // Normalize: point mass in 1 of 64 buckets gives CV = sqrt(63) ≈ 7.94.
    let clustering = squash(cv / 2.0);
    (skew, clustering)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keygen::{KeyDistribution, KeyGenerator};

    fn sample(dist: KeyDistribution, n: usize) -> Vec<f64> {
        KeyGenerator::new(dist, 0, 1_000_000, 77)
            .unwrap()
            .sample_f64(n)
    }

    #[test]
    fn uniform_scores_low() {
        let report = score_dataset(&sample(KeyDistribution::Uniform, 20_000));
        assert!(report.skew_score < 0.05, "skew = {}", report.skew_score);
        assert!(report.overall < 0.15, "overall = {}", report.overall);
    }

    #[test]
    fn zipf_scores_higher_than_uniform() {
        let uni = score_dataset(&sample(KeyDistribution::Uniform, 20_000));
        let zipf = score_dataset(&sample(KeyDistribution::Zipf { theta: 1.2 }, 20_000));
        assert!(
            zipf.overall > uni.overall + 0.1,
            "zipf {} vs uniform {}",
            zipf.overall,
            uni.overall
        );
    }

    #[test]
    fn clustered_beats_uniform_on_clustering() {
        let uni = score_dataset(&sample(KeyDistribution::Uniform, 20_000));
        let clustered = score_dataset(&sample(
            KeyDistribution::Clustered {
                clusters: 3,
                cluster_std_frac: 0.01,
            },
            20_000,
        ));
        assert!(clustered.clustering_score > uni.clustering_score + 0.2);
    }

    #[test]
    fn skew_ordering_monotone_in_theta() {
        let mild = score_dataset(&sample(KeyDistribution::Zipf { theta: 0.6 }, 20_000));
        let heavy = score_dataset(&sample(KeyDistribution::Zipf { theta: 1.5 }, 20_000));
        assert!(
            heavy.skew_score > mild.skew_score,
            "heavy {} vs mild {}",
            heavy.skew_score,
            mild.skew_score
        );
    }

    #[test]
    fn constant_data_is_max_skew() {
        let report = score_dataset(&[5.0; 100]);
        assert_eq!(report.skew_score, 1.0);
    }

    #[test]
    fn empty_input_scores_zero() {
        let report = score_dataset(&[]);
        assert_eq!(report.overall, 0.0);
        assert_eq!(report.key_samples, 0);
    }

    #[test]
    fn steady_load_scores_zero_variation() {
        let keys = sample(KeyDistribution::Uniform, 5000);
        let report = score_workload(&keys, &[100; 20]);
        assert_eq!(report.load_variation_score, 0.0);
        assert_eq!(report.load_intervals, 20);
    }

    #[test]
    fn bursty_load_scores_high_variation() {
        let keys = sample(KeyDistribution::Uniform, 5000);
        let loads: Vec<usize> = (0..20)
            .map(|i| if i % 5 == 0 { 1000 } else { 10 })
            .collect();
        let report = score_workload(&keys, &loads);
        assert!(
            report.load_variation_score > 0.5,
            "variation = {}",
            report.load_variation_score
        );
        // Overall must exceed the same keys with steady load.
        let steady = score_workload(&keys, &[100; 20]);
        assert!(report.overall > steady.overall);
    }

    #[test]
    fn single_interval_ignored() {
        let keys = sample(KeyDistribution::Uniform, 1000);
        let report = score_workload(&keys, &[500]);
        assert_eq!(report.load_intervals, 0);
        assert_eq!(report.load_variation_score, 0.0);
    }

    #[test]
    fn scores_bounded() {
        for dist in [
            KeyDistribution::Uniform,
            KeyDistribution::Zipf { theta: 2.0 },
            KeyDistribution::Hotspot {
                hot_span: 0.01,
                hot_fraction: 0.99,
            },
        ] {
            let r = score_dataset(&sample(dist, 10_000));
            for v in [r.skew_score, r.clustering_score, r.overall] {
                assert!((0.0..=1.0).contains(&v), "score out of range: {v}");
            }
        }
    }
}
