//! Synthetic string-key generation: the email-address generator.
//!
//! §V-C of the paper gives a concrete example of replacing proprietary data
//! with a synthetic stand-in: "a table column containing email addresses
//! could be replaced by a synthetic email address generator that provides a
//! similar data distribution". This module implements that generator: local
//! parts drawn from a zipf-weighted name vocabulary (real mailboxes follow a
//! heavy-tailed popularity curve) combined with a small skewed set of
//! domains — reproducing the lexicographic clustering that makes string
//! indexes interesting.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// First-name vocabulary (popularity-ordered; zipf-weighted during sampling).
const FIRST: &[&str] = &[
    "james",
    "mary",
    "robert",
    "patricia",
    "john",
    "jennifer",
    "michael",
    "linda",
    "david",
    "elizabeth",
    "william",
    "barbara",
    "richard",
    "susan",
    "joseph",
    "jessica",
    "thomas",
    "sarah",
    "charles",
    "karen",
    "chris",
    "nancy",
    "daniel",
    "lisa",
    "matthew",
    "betty",
    "anthony",
    "margaret",
    "mark",
    "sandra",
    "donald",
    "ashley",
    "steven",
    "kim",
    "paul",
    "emily",
    "andrew",
    "donna",
    "joshua",
    "michelle",
];

/// Last-name vocabulary.
const LAST: &[&str] = &[
    "smith",
    "johnson",
    "williams",
    "brown",
    "jones",
    "garcia",
    "miller",
    "davis",
    "rodriguez",
    "martinez",
    "hernandez",
    "lopez",
    "gonzalez",
    "wilson",
    "anderson",
    "thomas",
    "taylor",
    "moore",
    "jackson",
    "martin",
    "lee",
    "perez",
    "thompson",
    "white",
    "harris",
    "sanchez",
    "clark",
    "ramirez",
    "lewis",
    "robinson",
];

/// Email domains with zipf-like popularity (first is most common).
const DOMAINS: &[&str] = &[
    "gmail.com",
    "yahoo.com",
    "hotmail.com",
    "outlook.com",
    "aol.com",
    "icloud.com",
    "proton.me",
    "mail.com",
    "example.org",
    "fastmail.com",
];

/// Seeded generator of synthetic email addresses with realistic skew.
#[derive(Debug, Clone)]
pub struct EmailGenerator {
    rng: StdRng,
    /// Zipf exponent for vocabulary popularity.
    theta: f64,
}

impl EmailGenerator {
    /// Creates a generator with the default skew (`theta = 1.0`).
    pub fn new(seed: u64) -> Self {
        Self::with_skew(seed, 1.0)
    }

    /// Creates a generator with a custom zipf exponent over the vocabularies.
    pub fn with_skew(seed: u64, theta: f64) -> Self {
        EmailGenerator {
            rng: StdRng::seed_from_u64(seed),
            theta: theta.max(0.01),
        }
    }

    /// Draws a zipf-weighted index into a vocabulary of `n` items using the
    /// inverse-CDF over precomputable weights (n is tiny, so linear scan).
    fn zipf_index(&mut self, n: usize) -> usize {
        let total: f64 = (1..=n).map(|r| 1.0 / (r as f64).powf(self.theta)).sum();
        let mut u = self.rng.gen::<f64>() * total;
        for r in 1..=n {
            let w = 1.0 / (r as f64).powf(self.theta);
            if u < w {
                return r - 1;
            }
            u -= w;
        }
        n - 1
    }

    /// Generates the next email address.
    pub fn next_email(&mut self) -> String {
        let first = FIRST[self.zipf_index(FIRST.len())];
        let last = LAST[self.zipf_index(LAST.len())];
        let domain = DOMAINS[self.zipf_index(DOMAINS.len())];
        // Several local-part formats, like real mailboxes.
        match self.rng.gen_range(0..4u8) {
            0 => format!("{first}.{last}@{domain}"),
            1 => format!("{first}{last}@{domain}"),
            2 => {
                let n: u16 = self.rng.gen_range(1..100);
                format!("{first}.{last}{n}@{domain}")
            }
            _ => {
                let initial = &first[..1];
                format!("{initial}{last}@{domain}")
            }
        }
    }

    /// Generates `n` addresses.
    pub fn take(&mut self, n: usize) -> Vec<String> {
        (0..n).map(|_| self.next_email()).collect()
    }
}

/// Maps a string key to an order-preserving `u64` (first 8 bytes,
/// big-endian), so string-keyed datasets can feed the integer-keyed indexes.
///
/// Ordering agrees with lexicographic order on the first eight bytes; longer
/// shared prefixes collapse to the same value, which is acceptable for
/// distribution-shape purposes.
pub fn string_key_to_u64(s: &str) -> u64 {
    let mut buf = [0u8; 8];
    let bytes = s.as_bytes();
    let n = bytes.len().min(8);
    buf[..n].copy_from_slice(&bytes[..n]);
    u64::from_be_bytes(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emails_are_well_formed() {
        let mut g = EmailGenerator::new(1);
        for email in g.take(500) {
            assert!(email.contains('@'), "malformed: {email}");
            let (local, domain) = email.split_once('@').unwrap();
            assert!(!local.is_empty());
            assert!(domain.contains('.'));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = EmailGenerator::new(9);
        let mut b = EmailGenerator::new(9);
        assert_eq!(a.take(50), b.take(50));
        let mut c = EmailGenerator::new(10);
        assert_ne!(a.take(50), c.take(50));
    }

    #[test]
    fn popular_domain_dominates() {
        let mut g = EmailGenerator::new(3);
        let emails = g.take(2000);
        let gmail = emails.iter().filter(|e| e.ends_with("gmail.com")).count();
        let fastmail = emails
            .iter()
            .filter(|e| e.ends_with("fastmail.com"))
            .count();
        assert!(gmail > fastmail * 3, "gmail={gmail} fastmail={fastmail}");
    }

    #[test]
    fn skew_parameter_flattens() {
        // theta near 0 ~ uniform: top domain should be much less dominant.
        let mut flat = EmailGenerator::with_skew(4, 0.01);
        let emails = flat.take(2000);
        let gmail = emails.iter().filter(|e| e.ends_with("gmail.com")).count();
        assert!(gmail < 400, "gmail = {gmail}");
    }

    #[test]
    fn string_to_u64_preserves_order() {
        let mut g = EmailGenerator::new(5);
        let mut emails = g.take(200);
        emails.sort();
        let keys: Vec<u64> = emails.iter().map(|e| string_key_to_u64(e)).collect();
        for w in keys.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn string_to_u64_short_strings() {
        assert_eq!(string_key_to_u64(""), 0);
        assert!(string_key_to_u64("a") < string_key_to_u64("b"));
        assert!(string_key_to_u64("a") < string_key_to_u64("aa"));
    }
}
