//! Recording and replaying operation traces.
//!
//! The paper's hold-out mechanism (§V-A) requires the *same* workload to be
//! presented to multiple systems exactly once each, and the
//! benchmark-as-a-service idea requires workloads to be shippable artifacts.
//! A [`Trace`] captures a generated stream (operations plus phase labels and
//! optional arrival times) so it can be serialized, replayed, sliced, and
//! compared.

use crate::ops::Operation;
use crate::phases::{LabeledOp, PhasedWorkload};
use crate::Result;
use serde::{Deserialize, Serialize};

/// One recorded trace entry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// The operation.
    pub op: Operation,
    /// Phase index the operation belongs to.
    pub phase: usize,
    /// Scheduled arrival time in virtual seconds (0 for closed-loop traces).
    pub arrival: f64,
}

/// A recorded operation stream.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trace {
    entries: Vec<TraceEntry>,
    /// Names of the phases referenced by entries.
    phase_names: Vec<String>,
}

impl Trace {
    /// Creates an empty trace with the given phase names.
    pub fn new(phase_names: Vec<String>) -> Self {
        Trace {
            entries: Vec::new(),
            phase_names,
        }
    }

    /// Records a whole [`PhasedWorkload`] into a trace (closed-loop: arrival
    /// times are all zero).
    pub fn record(workload: &PhasedWorkload) -> Result<Self> {
        let mut trace = Trace::new(workload.phases().iter().map(|p| p.name.clone()).collect());
        for LabeledOp { op, phase, .. } in workload.stream()? {
            trace.push(TraceEntry {
                op,
                phase,
                arrival: 0.0,
            });
        }
        Ok(trace)
    }

    /// Appends an entry.
    pub fn push(&mut self, entry: TraceEntry) {
        self.entries.push(entry);
    }

    /// The recorded entries.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Phase names.
    pub fn phase_names(&self) -> &[String] {
        &self.phase_names
    }

    /// Entries belonging to phase `i`.
    pub fn phase_entries(&self, i: usize) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter().filter(move |e| e.phase == i)
    }

    /// Keys accessed in phase `i`, as `f64` (for distribution distances).
    pub fn phase_keys_f64(&self, i: usize) -> Vec<f64> {
        self.phase_entries(i).map(|e| e.op.key() as f64).collect()
    }

    /// Iterator over the operations only.
    pub fn operations(&self) -> impl Iterator<Item = Operation> + '_ {
        self.entries.iter().map(|e| e.op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keygen::KeyDistribution;
    use crate::ops::OperationMix;
    use crate::phases::{TransitionKind, WorkloadPhase};

    fn two_phase_workload() -> PhasedWorkload {
        PhasedWorkload::new(
            vec![
                WorkloadPhase::new(
                    "a",
                    KeyDistribution::Uniform,
                    (0, 1000),
                    OperationMix::ycsb_c(),
                    50,
                ),
                WorkloadPhase::new(
                    "b",
                    KeyDistribution::Uniform,
                    (0, 1000),
                    OperationMix::ycsb_a(),
                    70,
                ),
            ],
            vec![TransitionKind::Abrupt],
            11,
        )
        .unwrap()
    }

    #[test]
    fn record_captures_everything() {
        let w = two_phase_workload();
        let t = Trace::record(&w).unwrap();
        assert_eq!(t.len(), 120);
        assert_eq!(t.phase_names(), &["a".to_string(), "b".to_string()]);
        assert_eq!(t.phase_entries(0).count(), 50);
        assert_eq!(t.phase_entries(1).count(), 70);
    }

    #[test]
    fn replay_is_identical() {
        let w = two_phase_workload();
        let a = Trace::record(&w).unwrap();
        let b = Trace::record(&w).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn serde_round_trip() {
        let w = two_phase_workload();
        let t = Trace::record(&w).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn phase_keys_extracted() {
        let w = two_phase_workload();
        let t = Trace::record(&w).unwrap();
        let keys = t.phase_keys_f64(0);
        assert_eq!(keys.len(), 50);
        assert!(keys.iter().all(|&k| k < 1000.0));
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new(vec!["x".to_string()]);
        assert!(t.is_empty());
        assert_eq!(t.phase_entries(0).count(), 0);
    }
}
