//! Property-based tests for workload generation invariants.

use lsbench_workload::dataset::Dataset;
use lsbench_workload::keygen::{KeyDistribution, KeyGenerator};
use lsbench_workload::ops::{OperationGenerator, OperationMix};
use lsbench_workload::phases::{PhasedWorkload, TransitionKind, WorkloadPhase};
use lsbench_workload::quality::score_dataset;
use proptest::prelude::*;

fn arb_distribution() -> impl Strategy<Value = KeyDistribution> {
    prop_oneof![
        Just(KeyDistribution::Uniform),
        (0.2f64..2.5).prop_map(|theta| KeyDistribution::Zipf { theta }),
        (0.0f64..=1.0, 0.01f64..0.5)
            .prop_map(|(center, std_frac)| KeyDistribution::Normal { center, std_frac }),
        (0.01f64..0.99, 0.0f64..=1.0).prop_map(|(hot_span, hot_fraction)| {
            KeyDistribution::Hotspot {
                hot_span,
                hot_fraction,
            }
        }),
        (1usize..8, 0.005f64..0.2).prop_map(|(clusters, cluster_std_frac)| {
            KeyDistribution::Clustered {
                clusters,
                cluster_std_frac,
            }
        }),
        (0.0f64..=0.5).prop_map(|noise_frac| KeyDistribution::SequentialNoise { noise_frac }),
    ]
}

proptest! {
    #[test]
    fn keys_always_in_range(dist in arb_distribution(), seed in 0u64..1000,
                            lo in 0u64..1000, span in 1u64..1_000_000) {
        let hi = lo + span;
        let mut g = KeyGenerator::new(dist, lo, hi, seed).unwrap();
        for _ in 0..500 {
            let k = g.next_key();
            prop_assert!((lo..hi).contains(&k), "{k} not in [{lo}, {hi})");
        }
    }

    #[test]
    fn generation_deterministic(dist in arb_distribution(), seed in 0u64..1000) {
        let mut a = KeyGenerator::new(dist.clone(), 0, 10_000, seed).unwrap();
        let mut b = KeyGenerator::new(dist, 0, 10_000, seed).unwrap();
        prop_assert_eq!(a.take(100), b.take(100));
    }

    #[test]
    fn dataset_sorted_unique(dist in arb_distribution(), seed in 0u64..100, n in 1usize..2000) {
        let d = Dataset::generate(dist, 0, 1_000_000, n, seed).unwrap();
        for w in d.keys().windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        prop_assert!(d.len() <= n);
    }

    #[test]
    fn dataset_grow_preserves_invariants(a in prop::collection::vec(0u64..10_000, 0..300),
                                         b in prop::collection::vec(0u64..10_000, 0..300)) {
        let mut da = Dataset::from_keys(a.clone());
        let db = Dataset::from_keys(b.clone());
        let added = da.grow(&db);
        // Sorted unique result.
        for w in da.keys().windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        // Union semantics.
        let union: Vec<u64> = a.iter().chain(b.iter()).copied()
            .collect::<std::collections::BTreeSet<u64>>().into_iter().collect();
        prop_assert_eq!(da.keys(), union.as_slice());
        prop_assert!(added <= db.len());
    }

    #[test]
    fn op_stream_respects_phase_budget(ops_a in 1u64..200, ops_b in 1u64..200, seed in 0u64..50) {
        let w = PhasedWorkload::new(
            vec![
                WorkloadPhase::new("a", KeyDistribution::Uniform, (0, 1000), OperationMix::ycsb_c(), ops_a),
                WorkloadPhase::new("b", KeyDistribution::Uniform, (0, 1000), OperationMix::ycsb_a(), ops_b),
            ],
            vec![TransitionKind::Abrupt],
            seed,
        ).unwrap();
        let labeled: Vec<_> = w.stream().unwrap().collect();
        prop_assert_eq!(labeled.len() as u64, ops_a + ops_b);
        prop_assert_eq!(labeled.iter().filter(|o| o.phase == 0).count() as u64, ops_a);
        prop_assert_eq!(labeled.iter().filter(|o| o.phase == 1).count() as u64, ops_b);
    }

    #[test]
    fn gradual_window_ops_all_labeled(window in 0.05f64..=1.0, seed in 0u64..50) {
        let w = PhasedWorkload::new(
            vec![
                WorkloadPhase::new("a", KeyDistribution::Uniform, (0, 1000), OperationMix::ycsb_c(), 100),
                WorkloadPhase::new("b", KeyDistribution::Uniform, (0, 1000), OperationMix::ycsb_c(), 100),
            ],
            vec![TransitionKind::Gradual { window }],
            seed,
        ).unwrap();
        let labeled: Vec<_> = w.stream().unwrap().collect();
        let window_ops = ((100.0 * window).max(1.0)) as usize;
        for o in &labeled[100..100 + window_ops] {
            prop_assert!(o.in_transition);
            prop_assert!(o.drawn_from == 0 || o.drawn_from == 1);
        }
        for o in &labeled[100 + window_ops..] {
            prop_assert!(!o.in_transition);
            prop_assert_eq!(o.drawn_from, 1);
        }
    }

    #[test]
    fn quality_scores_bounded(dist in arb_distribution(), seed in 0u64..100) {
        let keys = KeyGenerator::new(dist, 0, 1_000_000, seed).unwrap().sample_f64(2000);
        let r = score_dataset(&keys);
        for v in [r.skew_score, r.clustering_score, r.overall] {
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn mix_proportions_converge(read in 0.0f64..10.0, update in 0.0f64..10.0, seed in 0u64..50) {
        prop_assume!(read + update > 0.1);
        let mix = OperationMix { read, insert: 0.0, update, scan: 0.0, delete: 0.0, max_scan_len: 0 };
        let kg = KeyGenerator::new(KeyDistribution::Uniform, 0, 1000, seed).unwrap();
        let mut g = OperationGenerator::new(kg, mix, seed).unwrap();
        let ops = g.take(4000);
        let reads = ops.iter().filter(|o| !o.is_write()).count() as f64 / 4000.0;
        let expected = read / (read + update);
        prop_assert!((reads - expected).abs() < 0.05, "reads {reads} expected {expected}");
    }
}
