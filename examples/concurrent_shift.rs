//! The concurrent engine on the canonical distribution-shift scenario:
//! one serial run vs. a four-way key-range-sharded run, plus an open-loop
//! overload showing why coordinated-omission-safe latency matters.
//!
//! ```sh
//! cargo run --release --example concurrent_shift
//! ```

use lsbench::core::driver::{run_kv_scenario, DriverConfig};
use lsbench::core::engine::{
    run_concurrent_kv_scenario, run_sharded_kv_scenario, shard_dataset, EngineConfig,
};
use lsbench::core::scenario::{ArrivalSpec, Scenario};
use lsbench::sut::kv::{BTreeSut, RetrainPolicy, RmiSut};
use lsbench::sut::sut::SystemUnderTest;
use lsbench::workload::arrival::{ArrivalProcess, LoadModulation};
use lsbench::workload::dataset::Dataset;
use lsbench::workload::keygen::KeyDistribution;
use lsbench::workload::ops::Operation;

const THREADS: usize = 4;

fn scenario() -> Scenario {
    Scenario::two_phase_shift(
        "concurrent-shift",
        KeyDistribution::LogNormal {
            mu: 0.0,
            sigma: 1.2,
        },
        KeyDistribution::Normal {
            center: 0.9,
            std_frac: 0.03,
        },
        50_000,
        10_000,
        42,
    )
    .expect("valid scenario")
}

fn shard_suts(shards: &[Dataset]) -> Vec<Box<dyn SystemUnderTest<Operation> + Send>> {
    shards
        .iter()
        .map(|d| {
            Box::new(
                RmiSut::build("rmi", d, RetrainPolicy::DeltaFraction(0.05)).expect("shard builds"),
            ) as Box<dyn SystemUnderTest<Operation> + Send>
        })
        .collect()
}

fn main() {
    let s = scenario();
    let data = s.dataset.build().expect("dataset builds");

    // Serial baseline: one SUT, one virtual clock.
    let mut serial_sut =
        RmiSut::build("rmi", &data, RetrainPolicy::DeltaFraction(0.05)).expect("builds");
    let serial = run_kv_scenario(&mut serial_sut, &s, DriverConfig::default()).expect("runs");
    println!(
        "serial      : {:>10.0} ops/s  ({} ops)",
        serial.mean_throughput(),
        serial.completed()
    );

    // Sharded: the key space splits at dataset quantiles, each shard SUT
    // is driven by its own lane, and per-lane results merge into a record
    // of the exact serial shape.
    let (router, shards) = shard_dataset(&data, THREADS).expect("shards");
    let mut suts = shard_suts(&shards);
    let report = run_sharded_kv_scenario(
        &mut suts,
        &router,
        &s,
        &EngineConfig::with_concurrency(THREADS),
    )
    .expect("runs");
    println!(
        "{} shards    : {:>10.0} ops/s  ({} ops, {:.2}x)",
        report.lanes,
        report.record.mean_throughput(),
        report.record.completed(),
        report.record.mean_throughput() / serial.mean_throughput()
    );

    // Open-loop overload on a shared B-tree: arrivals keep their own
    // schedule, so the growing queue is charged to the queued operations.
    // A driver that timed service only (coordinated omission) would report
    // flat latencies here and hide the overload entirely.
    let mut open = scenario();
    open.arrival = Some(ArrivalSpec {
        process: ArrivalProcess::Poisson { rate: 80_000.0 },
        modulation: LoadModulation::Constant,
        seed: 5,
    });
    let mut shared = BTreeSut::build(&data).expect("builds");
    let over =
        run_concurrent_kv_scenario(&mut shared, &open, &EngineConfig::default()).expect("runs");
    let q = |p: f64| {
        over.latency
            .quantile(p)
            .map(|ns| ns as f64 / 1e9)
            .unwrap_or(f64::NAN)
    };
    println!(
        "open loop   : p50 {:.6}s  p99 {:.6}s  max-bucket {:.6}s (virtual, from intended start)",
        q(0.50),
        q(0.99),
        over.latency.max() as f64 / 1e9
    );
    println!(
        "\n(latency = completion - intended arrival; queueing delay under overload\n\
         is visible instead of being silently coordinated away)"
    );
}
