//! The concurrent engine on the canonical distribution-shift scenario:
//! one serial run vs. a four-way key-range-sharded run, plus an open-loop
//! overload showing why coordinated-omission-safe latency matters.
//!
//! ```sh
//! cargo run --release --example concurrent_shift
//! ```

use lsbench::core::engine::{run_concurrent_kv_scenario, EngineConfig};
use lsbench::core::runner::{BoxedKvSut, ExecutionMode, RunOptions, Runner};
use lsbench::core::scenario::{ArrivalSpec, Scenario};
use lsbench::core::BenchError;
use lsbench::sut::kv::{BTreeSut, RetrainPolicy, RmiSut};
use lsbench::workload::arrival::{ArrivalProcess, LoadModulation};
use lsbench::workload::dataset::Dataset;
use lsbench::workload::keygen::KeyDistribution;

const THREADS: usize = 4;

fn scenario() -> Scenario {
    Scenario::two_phase_shift(
        "concurrent-shift",
        KeyDistribution::LogNormal {
            mu: 0.0,
            sigma: 1.2,
        },
        KeyDistribution::Normal {
            center: 0.9,
            std_frac: 0.03,
        },
        50_000,
        10_000,
        42,
    )
    .expect("valid scenario")
}

fn rmi_factory(data: &Dataset) -> Result<BoxedKvSut, BenchError> {
    Ok(Box::new(
        RmiSut::build("rmi", data, RetrainPolicy::DeltaFraction(0.05))
            .map_err(|e| BenchError::Sut(e.to_string()))?,
    ))
}

fn main() {
    let s = scenario();
    let data = s.dataset.build().expect("dataset builds");

    // Serial baseline: one SUT, one virtual clock. The Runner routes
    // concurrency 1 to the serial driver.
    let serial = Runner::from_factory(rmi_factory)
        .run(&s)
        .expect("runs")
        .record;
    println!(
        "serial      : {:>10.0} ops/s  ({} ops)",
        serial.mean_throughput(),
        serial.completed()
    );

    // Sharded: the Runner splits the key space at dataset quantiles,
    // builds one factory SUT per shard, drives each shard on its own
    // lane, and merges per-lane results into a record of the exact
    // serial shape.
    let sharded = Runner::from_factory(rmi_factory)
        .config(RunOptions::with_mode(ExecutionMode::Sharded {
            workers: THREADS,
        }))
        .run(&s)
        .expect("runs");
    println!(
        "{} shards    : {:>10.0} ops/s  ({} ops, {:.2}x)",
        sharded.engine.expect("engine stats").lanes,
        sharded.record.mean_throughput(),
        sharded.record.completed(),
        sharded.record.mean_throughput() / serial.mean_throughput()
    );

    // Open-loop overload on a shared B-tree: arrivals keep their own
    // schedule, so the growing queue is charged to the queued operations.
    // A driver that timed service only (coordinated omission) would report
    // flat latencies here and hide the overload entirely.
    let mut open = scenario();
    open.arrival = Some(ArrivalSpec {
        process: ArrivalProcess::Poisson { rate: 80_000.0 },
        modulation: LoadModulation::Constant,
        seed: 5,
    });
    let mut shared = BTreeSut::build(&data).expect("builds");
    let over =
        run_concurrent_kv_scenario(&mut shared, &open, &EngineConfig::default()).expect("runs");
    let q = |p: f64| {
        over.latency
            .quantile(p)
            .map(|ns| ns as f64 / 1e9)
            .unwrap_or(f64::NAN)
    };
    println!(
        "open loop   : p50 {:.6}s  p99 {:.6}s  max-bucket {:.6}s (virtual, from intended start)",
        q(0.50),
        q(0.99),
        over.latency.max() as f64 / 1e9
    );
    println!(
        "\n(latency = completion - intended arrival; queueing delay under overload\n\
         is visible instead of being silently coordinated away)"
    );

    // Massive open-loop multiplexing: the event-heap scheduler runs
    // 100,000 simulated clients on THREADS worker threads — per-client
    // virtual clocks, O(clients) memory, records bit-identical at any
    // worker count.
    let swarm = Runner::from_factory(rmi_factory)
        .config(RunOptions::with_mode(ExecutionMode::OpenLoop {
            clients: 100_000,
            workers: THREADS,
        }))
        .run(&open)
        .expect("runs");
    let stats = swarm.engine.expect("engine stats");
    let qn = |p: f64| {
        stats
            .latency
            .quantile(p)
            .map(|ns| ns as f64 / 1e9)
            .unwrap_or(f64::NAN)
    };
    println!(
        "100k clients: p50 {:.6}s  p99 {:.6}s on {} workers ({} ops)",
        qn(0.50),
        qn(0.99),
        stats.threads,
        swarm.record.completed()
    );
}
