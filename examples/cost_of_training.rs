//! Training-cost trade-off (the paper's Fig. 1d question): how much
//! training buys how much throughput, and when a learned system beats a
//! manually tuned one.
//!
//! ```sh
//! cargo run --release --example cost_of_training
//! ```

use lsbench::core::driver::{run_kv_scenario, DriverConfig};
use lsbench::core::metrics::cost::TrainingTradeoff;
use lsbench::core::metrics::sla::SlaPolicy;
use lsbench::core::report::render_tradeoff;
use lsbench::core::scenario::Scenario;
use lsbench::index::rmi::{Rmi, RmiConfig};
use lsbench::sut::cost::{DbaCostModel, HardwareProfile};
use lsbench::sut::kv::{BTreeSut, LearnedKvSut, RetrainPolicy};
use lsbench::workload::keygen::KeyDistribution;
use lsbench::workload::ops::OperationMix;
use lsbench::workload::phases::{PhasedWorkload, WorkloadPhase};

fn main() {
    let key_range = (0u64, 10_000_000u64);
    let lognormal = KeyDistribution::LogNormal {
        mu: 0.0,
        sigma: 1.2,
    };
    let scenario = Scenario::builder("cost-of-training")
        .dataset(lognormal.clone(), key_range, 150_000, 81)
        .workload(
            PhasedWorkload::single(
                WorkloadPhase::new(
                    "reads",
                    lognormal,
                    key_range,
                    OperationMix::ycsb_c(),
                    20_000,
                ),
                82,
            )
            .expect("valid workload"),
        )
        .sla(SlaPolicy::Fixed { threshold: 1.0 })
        .maintenance_every(u64::MAX)
        .build()
        .expect("valid scenario");
    let data = scenario.dataset.build().expect("dataset builds");
    let pairs: Vec<(u64, u64)> = data.pairs().collect();

    // The traditional baseline anchors the DBA step function.
    let mut btree = BTreeSut::build(&data).expect("builds");
    let baseline =
        run_kv_scenario(&mut btree, &scenario, DriverConfig::default()).expect("run succeeds");
    let dba = DbaCostModel::default_model(baseline.mean_throughput());

    // Train the learned index at five budgets and measure each.
    let mut runs = Vec::new();
    for (leaves, sample) in [(16, 64), (128, 16), (1024, 4), (8192, 1), (32768, 1)] {
        let rmi = Rmi::build(
            &pairs,
            RmiConfig {
                leaf_count: leaves,
                sample_every: sample,
            },
        )
        .expect("rmi builds");
        let mut sut = LearnedKvSut::with_trained_base(
            format!("rmi-{leaves}x{sample}"),
            rmi,
            RetrainPolicy::Never,
        );
        let mut record =
            run_kv_scenario(&mut sut, &scenario, DriverConfig::default()).expect("run succeeds");
        // Project laptop-scale training work to a production-scale
        // deployment (10⁶×) so the dollar axis is meaningful.
        record.final_metrics.training_work =
            record.final_metrics.training_work.saturating_mul(1_000_000);
        runs.push(record);
    }

    for hw in [HardwareProfile::cpu(), HardwareProfile::gpu()] {
        let tradeoff = TrainingTradeoff::new(&runs, &hw, &dba).expect("tradeoff builds");
        println!("--- {} ---", hw.name);
        println!("{}", render_tradeoff(&tradeoff));
    }
}
