//! Out-of-sample evaluation (§V-A): hold-out distributions the system sees
//! exactly once, and the overfitting gap they reveal.
//!
//! ```sh
//! cargo run --release --example holdout_overfitting
//! ```

use lsbench::core::runner::{BoxedKvSut, RunOptions, Runner};
use lsbench::core::scenario::Scenario;
use lsbench::core::BenchError;
use lsbench::sut::kv::{BTreeSut, RetrainPolicy, RmiSut};
use lsbench::workload::dataset::Dataset;
use lsbench::workload::keygen::KeyDistribution;
use lsbench::workload::ops::OperationMix;
use lsbench::workload::phases::{PhasedWorkload, WorkloadPhase};

fn main() {
    // Main run: the learned system trains and retrains on what it sees.
    let mut scenario = Scenario::two_phase_shift(
        "holdout-demo",
        KeyDistribution::LogNormal {
            mu: 0.0,
            sigma: 1.2,
        },
        KeyDistribution::Zipf { theta: 1.1 },
        100_000,
        20_000,
        91,
    )
    .expect("valid scenario");
    // Hold-out: a distribution the system never trained for, one pass only.
    scenario.holdout = Some(
        PhasedWorkload::single(
            WorkloadPhase::new(
                "unseen-sparse-tail",
                KeyDistribution::Normal {
                    center: 0.95,
                    std_frac: 0.01,
                },
                (0, 10_000_000),
                OperationMix::ycsb_c(),
                10_000,
            ),
            92,
        )
        .expect("valid workload"),
    );
    // RunOptions.holdout = true makes the Runner execute the hold-out
    // workload once after the main run and report the comparison.
    let opts = RunOptions {
        holdout: true,
        ..RunOptions::default()
    };

    println!("SUT            in-sample t/s   out-of-sample t/s   generalization ratio");
    type Factory = fn(&Dataset) -> Result<BoxedKvSut, BenchError>;
    let factories: [Factory; 2] = [
        |data| {
            Ok(Box::new(
                RmiSut::build("rmi", data, RetrainPolicy::OnPhaseChange)
                    .map_err(|e| BenchError::Sut(e.to_string()))?,
            ))
        },
        |data| {
            Ok(Box::new(
                BTreeSut::build(data).map_err(|e| BenchError::Sut(e.to_string()))?,
            ))
        },
    ];
    for factory in factories {
        let outcome = Runner::from_factory(factory)
            .config(opts)
            .run(&scenario)
            .expect("run");
        let (_, report) = outcome.holdout.expect("hold-out requested");
        println!(
            "{:<14} {:>12.0} {:>18.0} {:>17.3}",
            report.sut_name,
            report.in_sample_throughput,
            report.out_of_sample_throughput,
            report.generalization_ratio
        );
    }
    println!("\n(a ratio well below 1.0 = the system overfits what it saw; §V-A)");
}
