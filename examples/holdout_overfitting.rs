//! Out-of-sample evaluation (§V-A): hold-out distributions the system sees
//! exactly once, and the overfitting gap they reveal.
//!
//! ```sh
//! cargo run --release --example holdout_overfitting
//! ```

use lsbench::core::driver::{run_kv_scenario, DriverConfig};
use lsbench::core::holdout::{run_holdout, HoldoutReport};
use lsbench::core::scenario::Scenario;
use lsbench::sut::kv::{BTreeSut, RetrainPolicy, RmiSut};
use lsbench::workload::keygen::KeyDistribution;
use lsbench::workload::ops::OperationMix;
use lsbench::workload::phases::{PhasedWorkload, WorkloadPhase};

fn main() {
    // Main run: the learned system trains and retrains on what it sees.
    let mut scenario = Scenario::two_phase_shift(
        "holdout-demo",
        KeyDistribution::LogNormal {
            mu: 0.0,
            sigma: 1.2,
        },
        KeyDistribution::Zipf { theta: 1.1 },
        100_000,
        20_000,
        91,
    )
    .expect("valid scenario");
    // Hold-out: a distribution the system never trained for, one pass only.
    scenario.holdout = Some(
        PhasedWorkload::single(
            WorkloadPhase::new(
                "unseen-sparse-tail",
                KeyDistribution::Normal {
                    center: 0.95,
                    std_frac: 0.01,
                },
                (0, 10_000_000),
                OperationMix::ycsb_c(),
                10_000,
            ),
            92,
        )
        .expect("valid workload"),
    );
    let data = scenario.dataset.build().expect("dataset builds");

    println!("SUT            in-sample t/s   out-of-sample t/s   generalization ratio");
    let mut rmi = RmiSut::build("rmi", &data, RetrainPolicy::OnPhaseChange).expect("rmi builds");
    let main = run_kv_scenario(&mut rmi, &scenario, DriverConfig::default()).expect("run");
    let hold = run_holdout(&mut rmi, &scenario).expect("holdout run");
    let report = HoldoutReport::new(&main, &hold).expect("report builds");
    println!(
        "{:<14} {:>12.0} {:>18.0} {:>17.3}",
        report.sut_name,
        report.in_sample_throughput,
        report.out_of_sample_throughput,
        report.generalization_ratio
    );

    let mut btree = BTreeSut::build(&data).expect("btree builds");
    let main = run_kv_scenario(&mut btree, &scenario, DriverConfig::default()).expect("run");
    let hold = run_holdout(&mut btree, &scenario).expect("holdout run");
    let report = HoldoutReport::new(&main, &hold).expect("report builds");
    println!(
        "{:<14} {:>12.0} {:>18.0} {:>17.3}",
        report.sut_name,
        report.in_sample_throughput,
        report.out_of_sample_throughput,
        report.generalization_ratio
    );
    println!("\n(a ratio well below 1.0 = the system overfits what it saw; §V-A)");
}
