//! Learned query optimization (§II): histogram-based DP optimizer vs.
//! feedback-trained cardinalities vs. a Bao-style bandit steerer, on a
//! star-schema join workload.
//!
//! ```sh
//! cargo run --release --example query_steering
//! ```

use lsbench::core::driver::run_query_workload;
use lsbench::core::metrics::phi::workload_phi;
use lsbench::query::generator::JoinQueryGenerator;
use lsbench::query::table::{Catalog, Table};
use lsbench::sut::query_sut::{
    BanditQuerySut, LearnedCardinalitySut, QueryOp, TraditionalQuerySut,
};

fn main() {
    // A small star schema.
    let mut cat = Catalog::new();
    cat.add(Table::generate("fact", 20_000, 4, 1));
    cat.add(Table::generate("dim_a", 200, 2, 2));
    cat.add(Table::generate("dim_b", 4_000, 2, 3));

    // Two query-workload phases with different shapes.
    let mut g1 = JoinQueryGenerator::new(
        &cat,
        "fact",
        vec!["dim_a".into(), "dim_b".into()],
        (0, 150),
        4,
    )
    .expect("valid generator");
    let mut g2 = JoinQueryGenerator::new(&cat, "fact", vec!["dim_b".into()], (500, 900), 5)
        .expect("valid generator");
    let phase1: Vec<QueryOp> = g1
        .take(100)
        .into_iter()
        .map(|query| QueryOp { query })
        .collect();
    let phase2: Vec<QueryOp> = g2
        .take(100)
        .into_iter()
        .map(|query| QueryOp { query })
        .collect();

    let t1: Vec<_> = phase1
        .iter()
        .flat_map(|q| q.query.relations.clone())
        .collect();
    let t2: Vec<_> = phase2
        .iter()
        .flat_map(|q| q.query.relations.clone())
        .collect();
    println!(
        "workload Φ between phases (1 − Jaccard over query subtrees): {:.3}\n",
        workload_phi(&t1, &t2)
    );
    let phases = vec![
        ("shape-A".to_string(), phase1),
        ("shape-B".to_string(), phase2),
    ];

    println!("SUT                      mean ops/s   label-collection work");
    let mut traditional = TraditionalQuerySut::build(cat.clone()).expect("builds");
    let r =
        run_query_workload(&mut traditional, &phases, 1_000_000.0, u64::MAX).expect("run succeeds");
    println!(
        "{:<24} {:>10.2}   {:>12}",
        r.sut_name,
        r.mean_throughput(),
        r.final_metrics.label_collection_work
    );

    let mut learned = LearnedCardinalitySut::build(cat.clone()).expect("builds");
    let r = run_query_workload(&mut learned, &phases, 1_000_000.0, u64::MAX).expect("run succeeds");
    println!(
        "{:<24} {:>10.2}   {:>12}",
        r.sut_name,
        r.mean_throughput(),
        r.final_metrics.label_collection_work
    );

    let mut bandit = BanditQuerySut::build(cat, 0.1, 6).expect("builds");
    let r = run_query_workload(&mut bandit, &phases, 1_000_000.0, u64::MAX).expect("run succeeds");
    println!(
        "{:<24} {:>10.2}   {:>12}",
        r.sut_name,
        r.mean_throughput(),
        r.final_metrics.label_collection_work
    );
    println!(
        "\nbandit exploration fraction: {:.3}, shapes seen: {}",
        bandit.steerer().exploration_fraction(),
        bandit.steerer().shapes_seen()
    );
}
