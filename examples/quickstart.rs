//! Quickstart: benchmark a learned index against a B+-tree on a workload
//! that shifts its access distribution mid-run.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lsbench::core::metrics::adaptability::AdaptabilityReport;
use lsbench::core::runner::Runner;
use lsbench::core::scenario::Scenario;
use lsbench::core::sut_registry::SutRegistry;
use lsbench::workload::keygen::KeyDistribution;

fn main() {
    // 1. A scenario: 100k-key database, reads that shift abruptly from a
    //    uniform access pattern to a highly concentrated one.
    let scenario = Scenario::two_phase_shift(
        "quickstart",
        KeyDistribution::Uniform,
        KeyDistribution::Normal {
            center: 0.1,
            std_frac: 0.02,
        },
        100_000, // dataset keys
        30_000,  // operations per phase
        42,      // seed — everything is deterministic
    )
    .expect("valid scenario");

    // 2. Two systems under test, resolved by name from the registry: a
    //    learned index (RMI behind a delta buffer that retrains when 5% of
    //    the data is unmerged) and a B+-tree.
    let registry = SutRegistry::default();

    // 3. Run both through the same scenario on the virtual clock. The
    //    Runner builds each SUT from the scenario's dataset and drives it.
    let rmi_run = Runner::from_factory(registry.factory("rmi").expect("registered"))
        .run(&scenario)
        .expect("run")
        .record;
    let btree_run = Runner::from_factory(registry.factory("btree").expect("registered"))
        .run(&scenario)
        .expect("run")
        .record;

    // 4. Traditional metric: average throughput (the paper's Lesson 2 says
    //    this is not enough — but it is where everyone starts).
    println!("mean throughput:");
    for run in [&rmi_run, &btree_run] {
        println!(
            "  {:<8} {:>10.0} ops/s  (training: {:.3}s)",
            run.sut_name,
            run.mean_throughput(),
            run.train.seconds
        );
    }

    // 5. New metric: adaptability (Fig. 1b) — who lags after the shift?
    let rmi_rep = AdaptabilityReport::from_record(&rmi_run).expect("report");
    let btree_rep = AdaptabilityReport::from_record(&btree_run).expect("report");
    println!("\nadaptability (area vs ideal constant-throughput system):");
    println!(
        "  {:<8} {:+10.1}   recovery after shift: {:?}",
        rmi_rep.sut_name, rmi_rep.area_vs_ideal, rmi_rep.recovery_times
    );
    println!(
        "  {:<8} {:+10.1}   recovery after shift: {:?}",
        btree_rep.sut_name, btree_rep.area_vs_ideal, btree_rep.recovery_times
    );
    println!(
        "\ntwo-system area difference (rmi − btree): {:+.1} op·s",
        rmi_rep.area_vs(&btree_rep).expect("comparable")
    );
}
