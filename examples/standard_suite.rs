//! The standard suite (§V-A "benchmark-as-a-service"): one call produces a
//! complete, comparable result for a SUT across all five standard
//! scenarios — the shape an official result submission would take.
//!
//! ```sh
//! cargo run --release --example standard_suite
//! ```

use lsbench::core::suite::{render_comparison, run_suite, SuiteConfig};
use lsbench::core::sut_registry::SutRegistry;

fn main() {
    let cfg = SuiteConfig {
        dataset_size: 30_000,
        ops_per_phase: 3_000,
        seed: 7,
        work_units_per_second: 1_000_000.0,
        threads: 1,
    };

    // SUTs come from the registry — the same names `lsbench list` prints.
    let registry = SutRegistry::default();
    let rmi = run_suite(registry.factory("rmi").expect("registered"), &cfg).expect("suite runs");
    let btree =
        run_suite(registry.factory("btree").expect("registered"), &cfg).expect("suite runs");

    println!("{}", render_comparison(&[rmi, btree]));
    println!(
        "(columns: classic mean throughput; Fig.1b normalized area; Fig.1c \
         violation %\n and adjustment speed; Lesson-3 training seconds; failed \
         ops; §V-A generalization)"
    );
}
