//! The standard suite (§V-A "benchmark-as-a-service"): one call produces a
//! complete, comparable result for a SUT across all five standard
//! scenarios — the shape an official result submission would take.
//!
//! The scenarios load from the shipped `scenarios/s*.spec` files — the
//! same definitions `lsbench scenarios` lists by name — so the suite a
//! result submission ran is fully described by data, not code.
//!
//! ```sh
//! cargo run --release --example standard_suite
//! ```

use lsbench::core::scenario::Scenario;
use lsbench::core::spec::ScenarioRegistry;
use lsbench::core::suite::{render_comparison, run_scenarios};
use lsbench::core::sut_registry::SutRegistry;

const SUITE_FILES: [&str; 5] = [
    "scenarios/s1-specialization.spec",
    "scenarios/s2-abrupt-shift.spec",
    "scenarios/s3-gradual-writes.spec",
    "scenarios/s4-scans.spec",
    "scenarios/s5-bursty-load.spec",
];

fn main() {
    let scenarios: Vec<Scenario> = SUITE_FILES
        .iter()
        .map(|f| ScenarioRegistry::load_file(f).unwrap_or_else(|e| panic!("{f}:{e}")))
        .collect();

    // SUTs come from the registry — the same names `lsbench list` prints.
    let registry = SutRegistry::default();
    let rmi = run_scenarios(registry.factory("rmi").expect("registered"), &scenarios, 1)
        .expect("suite runs");
    let btree = run_scenarios(
        registry.factory("btree").expect("registered"),
        &scenarios,
        1,
    )
    .expect("suite runs");

    println!("{}", render_comparison(&[rmi, btree]));
    println!(
        "(columns: classic mean throughput; Fig.1b normalized area; Fig.1c \
         violation %\n and adjustment speed; Lesson-3 training seconds; failed \
         ops; §V-A generalization)"
    );
}
