//! Full dynamic-scenario walkthrough: five SUTs, a three-phase workload
//! with a gradual transition and an insert burst, and all four metric
//! families (specialization, adaptability, SLA bands, cost).
//!
//! The scenario itself is data, not code: it loads from
//! `scenarios/workload_shift.spec` through the spec parser, so editing
//! that file reshapes this whole example without recompiling.
//!
//! ```sh
//! cargo run --release --example workload_shift
//! ```

use lsbench::core::driver::{run_kv_scenario, DriverConfig};
use lsbench::core::metrics::adaptability::AdaptabilityReport;
use lsbench::core::metrics::cost::CostReport;
use lsbench::core::metrics::phi::{distribution_phis, DataPhiMethod};
use lsbench::core::metrics::sla::SlaReport;
use lsbench::core::metrics::specialization::SpecializationReport;
use lsbench::core::record::RunRecord;
use lsbench::core::report::{render_adaptability, render_sla, render_specialization};
use lsbench::core::scenario::Scenario;
use lsbench::core::spec::ScenarioRegistry;
use lsbench::sut::cost::HardwareProfile;
use lsbench::sut::kv::{AlexSut, BTreeSut, PgmSut, RetrainPolicy, RmiSut, SplineSut};
use lsbench::sut::sut::SystemUnderTest;
use lsbench::workload::ops::Operation;

const SPEC_FILE: &str = "scenarios/workload_shift.spec";

fn scenario() -> Scenario {
    ScenarioRegistry::load_file(SPEC_FILE).unwrap_or_else(|e| panic!("{SPEC_FILE}:{e}"))
}

fn main() {
    let s = scenario();
    let data = s.dataset.build().expect("dataset builds");
    let phis = distribution_phis(
        &s.workload
            .phases()
            .iter()
            .map(|p| p.distribution.clone())
            .collect::<Vec<_>>(),
        s.dataset.key_range,
        DataPhiMethod::KolmogorovSmirnov,
        79,
    )
    .expect("phi computes");

    // Run every SUT through the same scenario.
    let mut records: Vec<RunRecord> = Vec::new();
    let mut run = |sut: &mut dyn SystemUnderTest<Operation>| {
        let r = run_kv_scenario(sut, &s, DriverConfig::default()).expect("run succeeds");
        println!(
            "{:<14} mean throughput {:>9.0} ops/s, failures {}, train {:.3}s",
            r.sut_name,
            r.mean_throughput(),
            r.failures(),
            r.train.seconds
        );
        records.push(r);
    };
    run(&mut BTreeSut::build(&data).expect("builds"));
    run(&mut RmiSut::build("rmi", &data, RetrainPolicy::DeltaFraction(0.05)).expect("builds"));
    run(&mut PgmSut::build("pgm", &data, RetrainPolicy::DeltaFraction(0.05)).expect("builds"));
    run(
        &mut SplineSut::build("spline", &data, RetrainPolicy::DeltaFraction(0.05)).expect("builds"),
    );
    run(&mut AlexSut::build(&data).expect("builds"));

    // Specialization report for the learned index (Fig. 1a).
    println!();
    let rmi_record = &records[1];
    let spec =
        SpecializationReport::from_record(rmi_record, &phis, 400, &[]).expect("report builds");
    println!("{}", render_specialization(&spec));

    // Adaptability comparison (Fig. 1b).
    let reports: Vec<AdaptabilityReport> = records
        .iter()
        .map(|r| AdaptabilityReport::from_record(r).expect("report builds"))
        .collect();
    println!(
        "{}",
        render_adaptability(&reports.iter().collect::<Vec<_>>())
    );

    // SLA bands for the learned index, calibrated from the B+-tree run
    // (Fig. 1c).
    let threshold = s.sla.resolve(Some(&records[0])).expect("resolvable");
    let interval = rmi_record.exec_duration() / 40.0;
    let sla =
        SlaReport::from_record(rmi_record, threshold, interval, 2_000).expect("report builds");
    println!("{}", render_sla(&sla));

    // Cost breakdown on CPU and GPU (Fig. 1d).
    let cost = CostReport::from_record(
        rmi_record,
        &[HardwareProfile::cpu(), HardwareProfile::gpu()],
    )
    .expect("report builds");
    println!("{}", lsbench::core::report::render_cost(&cost));
}
