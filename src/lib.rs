//! # lsbench — a benchmark for learned data systems
//!
//! A complete implementation of the benchmark proposed in *Towards a
//! Benchmark for Learned Systems* (ICDE 2021): dynamic multi-phase
//! scenarios, the four new metric families of the paper's Fig. 1
//! (specialization, adaptability, SLA bands, cost), hold-out evaluation,
//! the dataset/workload quality scorer, and a standard five-scenario
//! suite — together with from-scratch learned and traditional systems
//! under test (RMI, PGM-index, RadixSpline, ALEX-style adaptive index,
//! B+-tree, hash index, a mini query engine with learned cardinality
//! estimation and Bao-style plan steering).
//!
//! This crate re-exports the whole workspace; see the sub-crates for the
//! full APIs:
//!
//! * [`core`] — scenarios, the driver, metrics, reports, the suite.
//! * [`sut`] — the `SystemUnderTest` interface and every adapter.
//! * [`index`] / [`query`] — the systems themselves.
//! * [`workload`] — dynamic workload and dataset generation.
//! * [`stats`] — the statistical substrate (KS, MMD, Jaccard, box plots).
//!
//! ## Example
//!
//! Run a learned index and a B+-tree through the same distribution-shift
//! scenario and compare their adaptability:
//!
//! ```
//! use lsbench::core::driver::{run_kv_scenario, DriverConfig};
//! use lsbench::core::metrics::adaptability::AdaptabilityReport;
//! use lsbench::core::scenario::Scenario;
//! use lsbench::sut::kv::{BTreeSut, RetrainPolicy, RmiSut};
//! use lsbench::workload::keygen::KeyDistribution;
//!
//! let scenario = Scenario::two_phase_shift(
//!     "doc-example",
//!     KeyDistribution::Uniform,
//!     KeyDistribution::Zipf { theta: 1.2 },
//!     5_000, // dataset keys
//!     1_000, // operations per phase
//!     42,    // seed — runs are bit-reproducible
//! )
//! .unwrap();
//! let data = scenario.dataset.build().unwrap();
//!
//! let mut rmi = RmiSut::build("rmi", &data, RetrainPolicy::DeltaFraction(0.05)).unwrap();
//! let mut btree = BTreeSut::build(&data).unwrap();
//! let rmi_run = run_kv_scenario(&mut rmi, &scenario, DriverConfig::default()).unwrap();
//! let btree_run = run_kv_scenario(&mut btree, &scenario, DriverConfig::default()).unwrap();
//!
//! // Lesson 3: training is a first-class result.
//! assert!(rmi_run.train.work > 0);
//! assert_eq!(btree_run.train.work, 0);
//!
//! // Fig. 1b: compare cumulative-completion curves.
//! let a = AdaptabilityReport::from_record(&rmi_run).unwrap();
//! let b = AdaptabilityReport::from_record(&btree_run).unwrap();
//! let area = a.area_vs(&b).unwrap();
//! assert!(area.is_finite());
//! ```

#![warn(missing_docs)]

pub use lsbench_core as core;
pub use lsbench_index as index;
pub use lsbench_query as query;
pub use lsbench_stats as stats;
pub use lsbench_sut as sut;
pub use lsbench_workload as workload;
