//! `lsbench` — command-line front end for the learned-systems benchmark.
//!
//! ```text
//! lsbench suite [--size N] [--ops N] [--seed N] [--threads N] [--sut NAME]...
//! lsbench quality --dist NAME [--param X]
//! lsbench shift --sut NAME [--size N] [--ops N] [--threads N]
//! lsbench list
//! ```

use lsbench::core::driver::{run_kv_scenario, DriverConfig};
use lsbench::core::engine::{run_sharded_kv_scenario, shard_dataset, EngineConfig};
use lsbench::core::metrics::adaptability::AdaptabilityReport;
use lsbench::core::report::{render_adaptability, to_json, write_artifact};
use lsbench::core::scenario::Scenario;
use lsbench::core::suite::{render_comparison, run_suite, SuiteConfig, SuiteResult};
use lsbench::core::BenchError;
use lsbench::sut::kv::{
    AlexSut, BTreeSut, HashSut, PgmSut, RetrainPolicy, RmiSut, SortedArraySut, SplineSut,
};
use lsbench::sut::sut::SystemUnderTest;
use lsbench::workload::dataset::Dataset;
use lsbench::workload::keygen::{KeyDistribution, KeyGenerator};
use lsbench::workload::ops::Operation;
use lsbench::workload::quality::score_dataset;
use std::process::ExitCode;

const SUT_NAMES: &[&str] = &[
    "btree",
    "sorted-array",
    "hash",
    "alex",
    "rmi",
    "pgm",
    "spline",
];

fn usage() -> ExitCode {
    eprintln!(
        "lsbench — benchmark for learned data systems

USAGE:
  lsbench suite [--size N] [--ops N] [--seed N] [--threads N] [--sut NAME]...
      Run the standard 5-scenario suite (default: all SUTs) and print the
      cross-SUT comparison. Artifacts land in target/lsbench-results/.
      --threads N > 1 key-range-shards every scenario across N worker
      threads on the concurrent engine.

  lsbench shift --sut NAME [--size N] [--ops N] [--seed N] [--threads N]
      Run the canonical two-phase distribution-shift scenario for one SUT
      and print its adaptability report. --threads N > 1 runs it sharded
      on the concurrent engine and also prints merged latency quantiles.

  lsbench quality --dist NAME [--theta X]
      Score a key distribution with the §V-C quality tool.
      NAME: uniform | zipf | lognormal | hotspot | clustered | seq

  lsbench list
      List available SUTs and distributions.
"
    );
    ExitCode::from(2)
}

fn parse_flag(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_num<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    parse_flag(args, flag)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn build_sut(
    name: &str,
    data: &Dataset,
) -> lsbench::core::Result<Box<dyn SystemUnderTest<Operation> + Send>> {
    let err = |e: lsbench::sut::SutError| BenchError::Sut(e.to_string());
    Ok(match name {
        "btree" => Box::new(BTreeSut::build(data).map_err(err)?),
        "sorted-array" => Box::new(SortedArraySut::build(data).map_err(err)?),
        "hash" => Box::new(HashSut::build(data).map_err(err)?),
        "alex" => Box::new(AlexSut::build(data).map_err(err)?),
        "rmi" => {
            Box::new(RmiSut::build("rmi", data, RetrainPolicy::DeltaFraction(0.05)).map_err(err)?)
        }
        "pgm" => {
            Box::new(PgmSut::build("pgm", data, RetrainPolicy::DeltaFraction(0.05)).map_err(err)?)
        }
        "spline" => Box::new(
            SplineSut::build("spline", data, RetrainPolicy::DeltaFraction(0.05)).map_err(err)?,
        ),
        other => {
            return Err(BenchError::InvalidScenario(format!(
                "unknown SUT '{other}' (see `lsbench list`)"
            )))
        }
    })
}

fn cmd_suite(args: &[String]) -> ExitCode {
    let cfg = SuiteConfig {
        dataset_size: parse_num(args, "--size", 100_000),
        ops_per_phase: parse_num(args, "--ops", 10_000),
        seed: parse_num(args, "--seed", 0x5EED),
        work_units_per_second: 1_000_000.0,
        threads: parse_num(args, "--threads", 1),
    };
    let chosen: Vec<String> = {
        let mut names: Vec<String> = args
            .windows(2)
            .filter(|w| w[0] == "--sut")
            .map(|w| w[1].clone())
            .collect();
        if names.is_empty() {
            names = SUT_NAMES.iter().map(|s| s.to_string()).collect();
        }
        names
    };
    let mut results: Vec<SuiteResult> = Vec::new();
    for name in &chosen {
        eprint!("running {name} ... ");
        let run = run_suite(|data| build_sut(name, data), &cfg);
        match run {
            Ok(r) => {
                eprintln!("done");
                results.push(r);
            }
            Err(e) => {
                eprintln!("failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("{}", render_comparison(&results));
    if let Ok(json) = to_json(&results) {
        if let Ok(path) = write_artifact("cli_suite.json", &json) {
            eprintln!("[saved {}]", path.display());
        }
    }
    ExitCode::SUCCESS
}

fn cmd_shift(args: &[String]) -> ExitCode {
    let Some(sut_name) = parse_flag(args, "--sut") else {
        eprintln!("--sut NAME is required (see `lsbench list`)");
        return ExitCode::from(2);
    };
    let scenario = match Scenario::two_phase_shift(
        "cli-shift",
        KeyDistribution::LogNormal {
            mu: 0.0,
            sigma: 1.2,
        },
        KeyDistribution::Normal {
            center: 0.9,
            std_frac: 0.03,
        },
        parse_num(args, "--size", 100_000),
        parse_num(args, "--ops", 20_000),
        parse_num(args, "--seed", 42),
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("invalid scenario: {e}");
            return ExitCode::FAILURE;
        }
    };
    let data = match scenario.dataset.build() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("dataset generation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let threads: usize = parse_num(args, "--threads", 1);
    let record = if threads <= 1 {
        let mut sut = match build_sut(&sut_name, &data) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        match run_kv_scenario(sut.as_mut(), &scenario, DriverConfig::default()) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("run failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let sharded = shard_dataset(&data, threads).and_then(|(router, shards)| {
            let mut suts = shards
                .iter()
                .map(|d| build_sut(&sut_name, d))
                .collect::<lsbench::core::Result<Vec<_>>>()?;
            run_sharded_kv_scenario(
                &mut suts,
                &router,
                &scenario,
                &EngineConfig::with_concurrency(threads),
            )
        });
        match sharded {
            Ok(report) => {
                let q = |p: f64| {
                    report
                        .latency
                        .quantile(p)
                        .map(|ns| ns as f64 / 1e9)
                        .unwrap_or(f64::NAN)
                };
                println!(
                    "[engine] {} threads, {} lanes, p50 {:.6}s p99 {:.6}s (virtual)",
                    report.threads,
                    report.lanes,
                    q(0.50),
                    q(0.99)
                );
                report.record
            }
            Err(e) => {
                eprintln!("run failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    println!(
        "{}: {:.0} ops/s mean, {} completed, {} failures, training {:.3}s",
        record.sut_name,
        record.mean_throughput(),
        record.completed(),
        record.failures(),
        record.train.seconds
    );
    match AdaptabilityReport::from_record(&record) {
        Ok(rep) => println!("{}", render_adaptability(&[&rep])),
        Err(e) => eprintln!("metrics failed: {e}"),
    }
    ExitCode::SUCCESS
}

fn cmd_quality(args: &[String]) -> ExitCode {
    let Some(dist_name) = parse_flag(args, "--dist") else {
        eprintln!("--dist NAME is required (see `lsbench list`)");
        return ExitCode::from(2);
    };
    let theta: f64 = parse_num(args, "--theta", 1.1);
    let dist = match dist_name.as_str() {
        "uniform" => KeyDistribution::Uniform,
        "zipf" => KeyDistribution::Zipf { theta },
        "lognormal" => KeyDistribution::LogNormal {
            mu: 0.0,
            sigma: 1.2,
        },
        "hotspot" => KeyDistribution::Hotspot {
            hot_span: 0.05,
            hot_fraction: 0.95,
        },
        "clustered" => KeyDistribution::Clustered {
            clusters: 4,
            cluster_std_frac: 0.01,
        },
        "seq" => KeyDistribution::SequentialNoise { noise_frac: 0.01 },
        other => {
            eprintln!("unknown distribution '{other}'");
            return ExitCode::from(2);
        }
    };
    let keys = match KeyGenerator::new(dist, 0, 10_000_000, 7) {
        Ok(mut g) => g.sample_f64(30_000),
        Err(e) => {
            eprintln!("invalid distribution: {e}");
            return ExitCode::FAILURE;
        }
    };
    let r = score_dataset(&keys);
    println!(
        "{dist_name}: skew {:.3}, clustering {:.3}, overall {:.3}",
        r.skew_score, r.clustering_score, r.overall
    );
    println!("(higher = better benchmark material; uniform scores near 0)");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(|s| s.as_str()) {
        Some("suite") => cmd_suite(&args[1..]),
        Some("shift") => cmd_shift(&args[1..]),
        Some("quality") => cmd_quality(&args[1..]),
        Some("list") => {
            println!("SUTs: {}", SUT_NAMES.join(", "));
            println!("distributions: uniform, zipf, lognormal, hotspot, clustered, seq");
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
