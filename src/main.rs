//! `lsbench` — command-line front end for the learned-systems benchmark.
//!
//! ```text
//! lsbench suite [--size N] [--ops N] [--seed N] [--threads N] [--sut NAME]... [--faults P] [--trace]
//! lsbench run --scenario NAME|FILE --sut NAME [--mode M] [--threads N] [--clients N] [--faults P] [--trace]
//! lsbench run --scenario NAME|FILE --remote HOST:PORT [--threads N] [--faults P]
//! lsbench capacity --scenario NAME|FILE --sut NAME --sla p99:MS [--remote HOST:PORT]
//! lsbench sweep --scenario NAME|FILE --sut A[,B,...] [--drift LO..HIxN] [--json]
//! lsbench serve --sut NAME --port P [--host H]
//! lsbench shift --sut NAME [--size N] [--ops N] [--threads N] [--trace]
//! lsbench quality --dist NAME [--param X]
//! lsbench trace import|replay|fit|record FILE ... [--speed X] [--out FILE]
//! lsbench archive run --scenario NAME|FILE --sut NAME [--threads N] [--store DIR]
//! lsbench archive list|show [ID] [--store DIR]
//! lsbench compare BASELINE CANDIDATE [--store DIR] [--json]
//! lsbench regress --baseline ID --candidate ID --policy FILE [--store DIR]
//! lsbench scenarios | validate FILE|DIR... | export NAME | list
//! ```
//!
//! SUT names are resolved through [`SutRegistry`]; scenario names and
//! `scenarios/*.spec` files are resolved through [`ScenarioRegistry`];
//! `--faults` takes a built-in chaos-plan name or a fault-plan file and
//! attaches it to the scenario(s) (deterministic fault injection — see
//! [`lsbench::core::faults`]). `--trace` turns on the observability
//! layer: runs emit a deterministic virtual-clock event trace (written to
//! `target/lsbench-results/trace.jsonl`) and print a wall-clock span tree.
//!
//! `lsbench serve` hosts a registered SUT out-of-process behind the
//! length-prefixed wire protocol ([`lsbench::core::wire`]); `--remote
//! HOST:PORT` on `run` / `archive run` drives such a server through the
//! pipelined [`RemoteSut`] client pool instead of an in-process SUT. The
//! in-process mode stays the conformance oracle: the same scenario run
//! remotely and locally must produce identical records.
//!
//! The `archive`/`compare`/`regress` family is the longitudinal layer
//! ([`lsbench::core::results`]): `archive run` executes a scenario and
//! saves the complete run record as a schema-versioned, content-addressed
//! artifact under `.lsbench/results/`; `compare` computes the paper's
//! paired metrics (Fig. 1a–1d) head-to-head between two saved runs; and
//! `regress` gates a candidate against a baseline under a policy file,
//! exiting non-zero on violation and emitting `BENCH_summary.json`.

use lsbench::core::capacity::{
    capacity_search, render_capacity_report, with_arrival_rate, CapacityConfig, CapacityPoint,
    SlaTarget,
};
use lsbench::core::driver::{run_kv_trace, run_kv_trace_open_loop, ReplayConfig};
use lsbench::core::faults::{resolve_fault_plan, FaultPlan};
use lsbench::core::metrics::adaptability::AdaptabilityReport;
use lsbench::core::obs::{render_spans, ObsConfig};
use lsbench::core::report::{render_adaptability, to_json, write_artifact};
use lsbench::core::results::{
    compare, evaluate_regression, parse_regression_policy, render_comparison_report,
    render_regression, render_transport_header, write_bench_summary, CapacityArtifact,
    CapacityManifest, ResultStore, RunArtifact, RunManifest, SuiteArtifact, SweepArtifact,
    SweepManifest, Transport,
};
use lsbench::core::runner::{ExecutionMode, RunOptions, RunOutcome, Runner};
use lsbench::core::scenario::{ClockMode, ModePreference, Scenario};
use lsbench::core::spec::{render_scenario, ScenarioRegistry};
use lsbench::core::suite::{
    render_comparison, run_scenarios_observed, standard_scenarios, SuiteConfig, SuiteResult,
};
use lsbench::core::sut_registry::SutRegistry;
use lsbench::core::sweep::{render_sweep_report, sweep_curve, DriftLadder};
use lsbench::core::trace::{
    export_csv, export_jsonl, fit_scenario, import_str, ImportedTrace, TraceFormat,
};
use lsbench::core::wire::{RemoteOptions, RemoteSut, WireServer, PROTOCOL_VERSION};
use lsbench::core::BenchError;
use lsbench::sut::sut::SystemUnderTest;
use lsbench::workload::keygen::{KeyDistribution, KeyGenerator, CANONICAL_DISTRIBUTIONS};
use lsbench::workload::quality::score_dataset;
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "lsbench — benchmark for learned data systems

USAGE:
  lsbench suite [--size N] [--ops N] [--seed N] [--threads N] [--sut NAME]...
                [--faults NAME|FILE] [--trace] [--save] [--store DIR]
      Run the standard 5-scenario suite (default: all SUTs) and print the
      cross-SUT comparison. Artifacts land in target/lsbench-results/.
      --threads N > 1 key-range-shards every scenario across N worker
      threads on the concurrent engine. --faults attaches a deterministic
      fault plan (chaos-errors, chaos-latency, chaos-timeouts, or a plan
      file) to every scenario. --trace records the virtual-clock event
      trace (trace.jsonl) and prints per-scenario span trees. --save
      archives every run record into the results store for later
      `lsbench compare` / `lsbench regress`.

  lsbench run --scenario NAME|FILE --sut NAME [--mode M] [--clock C]
              [--threads N] [--clients N] [--trace] [--size N] [--ops N]
              [--seed N] [--faults NAME|FILE] [--remote HOST:PORT]
      Run one scenario — a built-in name (see `lsbench scenarios`) or a
      .spec file — for one SUT. --size/--ops/--seed rescale built-in
      scenarios; spec files always run exactly as written. --mode picks
      the execution mode (serial, shared, sharded, open-loop); without it
      the scenario's `[run] mode` / `[open_loop]` section decides, then
      --threads N > 1 implies sharded, else serial. --clock picks the
      reporting clock (sim, wall); without it the scenario's `[run]
      clock` decides, defaulting to sim. Wall mode additionally measures
      host time coordinated-omission-safely beside the virtual record —
      the work-unit record itself is bit-identical across clocks.
      --clients N sets (and implies) the open-loop client population
      multiplexed onto the worker pool. --faults attaches a deterministic
      fault plan on top of whatever [[fault]] blocks the spec itself
      carries (the flag wins). --remote drives a `lsbench serve` server
      over the wire protocol instead of an in-process SUT (the server
      chooses the SUT; --sut is ignored).

  lsbench capacity --scenario NAME|FILE --sut NAME --sla pNN:MS
                   [--clients N] [--threads N] [--rate R] [--probes N]
                   [--tolerance X] [--size N] [--ops N] [--seed N]
                   [--faults NAME|FILE] [--remote HOST:PORT]
                   [--store DIR] [--json]
      Binary-search the maximum sustainable open-loop arrival rate under
      a latency SLA (`p99:5` = p99 at most 5ms, virtual time). Each probe
      runs the scenario open-loop on a fresh SUT with the arrival rate
      substituted, bracketing then bisecting to the SLA knee; every probe
      lands in the printed throughput-latency curve. The report is
      archived as a schema-versioned capacity artifact under the results
      store's capacity/ directory. --rate sets the first probed rate
      (default 1000 ops/s), --probes caps probe runs (default 12),
      --tolerance sets the relative bracket width to stop at (default
      0.05). With --remote every probe drives a `lsbench serve` server.

  lsbench sweep --scenario NAME|FILE --sut A[,B,...] [--drift LO..HIxN]
                [--mode M] [--clock C] [--threads N] [--clients N]
                [--faults NAME|FILE] [--remote HOST:PORT]
                [--store DIR] [--json]
      Grade the scenario's drift by intensity: expand the --drift axis
      (default 0..1x5) into an N-rung ladder — rung α replays every phase
      pulled toward the first phase so that α=0 is a static control and
      α=1 is the scenario as written — run every (SUT, α) cell, and print
      per-SUT curves of adaptability area, adjustment speed, SLA
      violation rate, and specialization spread against α, with the
      linear distribution-shift bound as a theory overlay (rungs that
      degrade faster are flagged). Multiple lanes: repeat --sut or pass a
      comma list. The curves are archived as a schema-versioned sweep
      artifact under the results store's sweep/ directory; --json prints
      the artifact instead of the text report. The ladder requires every
      phase to share the first phase's distribution shape.

  lsbench serve --sut NAME --port P [--host H]
      Host a registered SUT out-of-process: listen on H:P (default host
      127.0.0.1; port 0 picks a free port) and serve the full SUT surface
      over the versioned length-prefixed wire protocol. Clients ship the
      scenario spec in the Load request, so one server handles any
      scenario. Runs until killed.

  lsbench shift --sut NAME [--size N] [--ops N] [--seed N] [--threads N] [--trace]
      Run the canonical two-phase distribution-shift scenario for one SUT
      and print its adaptability report. --threads N > 1 runs it sharded
      on the concurrent engine and also prints merged latency quantiles.
      --trace writes shift_trace.jsonl and prints the span tree.

  lsbench quality --dist NAME [--theta X]
      Score a key distribution with the §V-C quality tool.
      NAME: see `lsbench list`

  lsbench archive run --scenario NAME|FILE --sut NAME [--threads N]
                      [--size N] [--ops N] [--seed N] [--faults NAME|FILE]
                      [--store DIR] [--remote HOST:PORT]
      Run one scenario and save the complete run record as a
      schema-versioned, content-addressed artifact (default store:
      .lsbench/results/ at the workspace root). With --remote the run
      executes against a `lsbench serve` server and the manifest records
      the remote transport, so `lsbench compare` can surface
      remote-vs-local pairings.

  lsbench archive list [--store DIR]
      List stored artifacts (digest, SUT, scenario, workers, transport,
      ops).

  lsbench archive show ID [--store DIR]
      Print one artifact's manifest and record summary. ID is a file
      path, a digest (prefix), or a unique substring of the file name.

  lsbench compare BASELINE CANDIDATE [--store DIR] [--json]
      Head-to-head comparison of two saved runs: Fig. 1b adaptability
      area difference, per-phase Fig. 1a box-stat deltas, Fig. 1c SLA
      deltas (threshold calibrated from BASELINE), fault accounting, and
      Fig. 1d cost-per-query ratio. --json emits the serialized report.

  lsbench regress --baseline ID --candidate ID --policy FILE
                  [--store DIR] [--json]
      Gate the candidate against the baseline under a regression policy
      (spec-style file; see policies/default.policy). Writes
      BENCH_summary.json and exits non-zero on any policy violation.

  lsbench trace import FILE [--format csv|jsonl] [--out FILE] [--speed X]
      Parse and validate a keyed-operation trace (CSV or JSON-lines;
      format inferred from the extension) and print its summary:
      op counts, distinct keys, key range, and whether it carries
      timestamps (open-loop replay) or not (closed-loop fallback).
      Errors are positioned (file:line N: field: reason). --out rewrites
      the trace in canonical form; --speed rescales timestamps.

  lsbench trace replay FILE --sut NAME [--speed X] [--mode open-loop]
                      [--clients N] [--threads N] [--format csv|jsonl]
                      [--archive] [--store DIR]
      Replay an imported trace against a SUT on the virtual clock.
      Timestamped traces replay open-loop at the recorded arrival times
      (divided by --speed); timestamp-less traces replay closed-loop.
      --mode open-loop / --clients N multiplexes the trace over an
      open-loop client population (bit-identical for any --threads).
      --archive saves the record into the results store so replays can
      feed `lsbench compare` / `lsbench regress`.

  lsbench trace fit FILE [--name NAME] [--seed N] [--out FILE]
                   [--format csv|jsonl]
      Fit a scenario spec to a trace: change-point phase segmentation
      over windowed op-mix/key statistics, then per-phase mix, key-range,
      and distribution estimation (hotspot / Zipf / uniform) plus a
      repetition-factor report. Prints canonical spec text (or writes
      --out) that `lsbench validate` and `lsbench run` accept as-is.

  lsbench trace record --scenario NAME|FILE --out FILE [--rate R]
                       [--format csv|jsonl] [--size N] [--ops N] [--seed N]
      Record a scenario's generated operation stream as a trace file.
      --rate R stamps constant-rate timestamps (R ops/s) so the
      recording replays open-loop.

  lsbench scenarios
      List built-in scenarios (resolvable by name in `lsbench run`).

  lsbench validate FILE|DIR...
      Parse and validate scenario spec files, printing positioned
      errors (file:line: field: reason). Directories are scanned for
      *.spec. Exits non-zero if any file is invalid.

  lsbench export NAME [--size N] [--ops N] [--seed N]
      Print a built-in scenario as canonical spec text (the format
      shipped in scenarios/).

  lsbench list
      List registered SUTs and distributions.
"
    );
    ExitCode::from(2)
}

fn parse_flag(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_num<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    parse_flag(args, flag)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn obs_config(args: &[String]) -> ObsConfig {
    if has_flag(args, "--trace") {
        ObsConfig::traced()
    } else {
        ObsConfig::default()
    }
}

/// Resolves `--faults NAME|FILE` to a plan, or `None` when the flag is
/// absent. `Err` means the argument was present but did not resolve.
fn fault_plan_arg(args: &[String]) -> Result<Option<FaultPlan>, ExitCode> {
    let Some(arg) = parse_flag(args, "--faults") else {
        return Ok(None);
    };
    match resolve_fault_plan(&arg) {
        Ok(plan) => Ok(Some(plan)),
        Err(e) => {
            eprintln!("{e}");
            Err(ExitCode::from(2))
        }
    }
}

/// Attaches a fault plan to a scenario and re-validates (a plan can name
/// phases or op windows the scenario does not have).
fn attach_faults(scenario: &mut Scenario, plan: &FaultPlan) -> Result<(), ExitCode> {
    scenario.faults = Some(plan.clone());
    if let Err(e) = scenario.validate() {
        eprintln!("fault plan does not fit scenario '{}': {e}", scenario.name);
        return Err(ExitCode::from(2));
    }
    Ok(())
}

/// The flags every run-executing subcommand (`run`, `suite`, `archive
/// run`, `capacity`, `shift`) shares, parsed once with one error style
/// instead of per-command copies: scenario/SUT selection, transport,
/// execution mode, worker threads, open-loop clients, fault plan, and
/// observability.
struct CommonRunArgs {
    scenario: Option<String>,
    /// Every `--sut` occurrence; single-SUT commands use the first.
    suts: Vec<String>,
    remote: Option<String>,
    mode: Option<ModePreference>,
    clock: Option<ClockMode>,
    threads: usize,
    clients: Option<usize>,
    faults: Option<FaultPlan>,
    obs: ObsConfig,
}

impl CommonRunArgs {
    /// Parses the shared flags. Flag errors print to stderr and exit with
    /// the usage code, same as every other CLI error.
    fn parse(args: &[String]) -> Result<Self, ExitCode> {
        let mode = match parse_flag(args, "--mode") {
            None => None,
            Some(name) => match ModePreference::parse(&name) {
                Some(m) => Some(m),
                None => {
                    eprintln!(
                        "unknown mode '{name}' (expected \"serial\", \"shared\", \"sharded\", \
                         or \"open-loop\")"
                    );
                    return Err(ExitCode::from(2));
                }
            },
        };
        let clock = match parse_flag(args, "--clock") {
            None => None,
            Some(name) => match ClockMode::parse(&name) {
                Some(c) => Some(c),
                None => {
                    eprintln!("unknown clock '{name}' (expected \"sim\" or \"wall\")");
                    return Err(ExitCode::from(2));
                }
            },
        };
        let clients = match parse_flag(args, "--clients") {
            None => None,
            Some(v) => match v.parse::<usize>() {
                Ok(n) if n >= 1 => Some(n),
                _ => {
                    eprintln!("--clients must be a positive integer, got '{v}'");
                    return Err(ExitCode::from(2));
                }
            },
        };
        Ok(CommonRunArgs {
            scenario: parse_flag(args, "--scenario"),
            suts: args
                .windows(2)
                .filter(|w| w[0] == "--sut")
                .map(|w| w[1].clone())
                .collect(),
            remote: parse_flag(args, "--remote"),
            mode,
            clock,
            threads: parse_num(args, "--threads", 1),
            clients,
            faults: fault_plan_arg(args)?,
            obs: obs_config(args),
        })
    }

    /// The required `--scenario` argument, resolved through the registry
    /// with the shared `--faults` plan attached.
    fn resolve_scenario(&self, args: &[String]) -> Result<Scenario, ExitCode> {
        let Some(scenario_arg) = &self.scenario else {
            eprintln!("--scenario NAME|FILE is required (see `lsbench scenarios`)");
            return Err(ExitCode::from(2));
        };
        let mut scenario = scenario_registry(args).resolve(scenario_arg).map_err(|e| {
            eprintln!("{e}");
            ExitCode::from(2)
        })?;
        if let Some(plan) = &self.faults {
            attach_faults(&mut scenario, plan)?;
        }
        Ok(scenario)
    }

    /// The required `--sut` argument (unless `--remote` stands in).
    fn require_sut(&self) -> Result<String, ExitCode> {
        match self.suts.first() {
            Some(name) => Ok(name.clone()),
            None => {
                eprintln!(
                    "--sut NAME is required unless --remote HOST:PORT is given \
                     (see `lsbench list`)"
                );
                Err(ExitCode::from(2))
            }
        }
    }

    /// Resolves the execution mode for `scenario`. Precedence: the
    /// `--mode` flag, then the scenario's `[run] mode` preference, then
    /// its `[open_loop]` section (or an explicit `--clients`), then
    /// `--threads N > 1` implying sharded, defaulting to serial.
    fn execution_mode(&self, scenario: &Scenario) -> ExecutionMode {
        let workers = self.threads.max(1);
        let open_loop = || ExecutionMode::OpenLoop {
            clients: self
                .clients
                .or(scenario.open_loop.map(|o| o.clients as usize))
                .unwrap_or(DEFAULT_CLIENTS),
            workers,
        };
        match self.mode.or(scenario.mode) {
            Some(ModePreference::Serial) => ExecutionMode::Serial,
            Some(ModePreference::Shared) => ExecutionMode::SharedLock { workers },
            Some(ModePreference::Sharded) => ExecutionMode::Sharded { workers },
            Some(ModePreference::OpenLoop) => open_loop(),
            None if scenario.open_loop.is_some() || self.clients.is_some() => open_loop(),
            None if workers > 1 => ExecutionMode::Sharded { workers },
            None => ExecutionMode::Serial,
        }
    }

    /// Resolves the clock mode for `scenario`. Precedence: the `--clock`
    /// flag, then the scenario's `[run] clock` preference, then sim.
    fn clock_mode(&self, scenario: &Scenario) -> ClockMode {
        self.clock.or(scenario.clock).unwrap_or_default()
    }

    /// [`RunOptions`] for `scenario`: the resolved execution mode plus
    /// the resolved clock and the shared observability config.
    fn run_options(&self, scenario: &Scenario) -> RunOptions {
        RunOptions {
            obs: self.obs,
            clock: self.clock_mode(scenario),
            ..RunOptions::with_mode(self.execution_mode(scenario))
        }
    }
}

/// Open-loop client population when neither `--clients` nor the
/// scenario's `[open_loop]` section names one.
const DEFAULT_CLIENTS: usize = 1000;

/// Worker count recorded in archive manifests: the thread count the mode
/// actually runs with (1 = serial driver).
fn mode_workers(mode: ExecutionMode) -> usize {
    match mode {
        ExecutionMode::Serial => 1,
        ExecutionMode::SharedLock { workers }
        | ExecutionMode::Sharded { workers }
        | ExecutionMode::OpenLoop { workers, .. } => workers,
    }
}

fn cmd_suite(args: &[String]) -> ExitCode {
    let common = match CommonRunArgs::parse(args) {
        Ok(c) => c,
        Err(code) => return code,
    };
    let registry = SutRegistry::default();
    let cfg = SuiteConfig {
        dataset_size: parse_num(args, "--size", 100_000),
        ops_per_phase: parse_num(args, "--ops", 10_000),
        seed: parse_num(args, "--seed", 0x5EED),
        work_units_per_second: 1_000_000.0,
        threads: common.threads,
    };
    let chosen: Vec<String> = if common.suts.is_empty() {
        registry.names().iter().map(|s| s.to_string()).collect()
    } else {
        common.suts.clone()
    };
    let obs = common.obs;
    let scenarios = match standard_scenarios(&cfg) {
        Ok(mut scenarios) => {
            if let Some(plan) = &common.faults {
                for scenario in &mut scenarios {
                    if let Err(code) = attach_faults(scenario, plan) {
                        return code;
                    }
                }
            }
            scenarios
        }
        Err(e) => {
            eprintln!("cannot build suite scenarios: {e}");
            return ExitCode::FAILURE;
        }
    };
    let store = if has_flag(args, "--save") {
        match open_store(args) {
            Ok(s) => Some(s),
            Err(code) => return code,
        }
    } else {
        None
    };
    let mut results: Vec<SuiteResult> = Vec::new();
    let mut trace_lines = String::new();
    for name in &chosen {
        let factory = match registry.factory(name) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        };
        eprint!("running {name} ... ");
        match run_scenarios_observed(factory, &scenarios, cfg.threads, obs) {
            Ok((result, observation)) => {
                eprintln!("done");
                for (scenario, trace) in &observation.traces {
                    match trace.to_jsonl_tagged(&[("sut", name), ("scenario", scenario)]) {
                        Ok(lines) => trace_lines.push_str(&lines),
                        Err(e) => eprintln!("trace render failed: {e}"),
                    }
                }
                for (scenario, spans) in &observation.spans {
                    println!("[spans] {name} / {scenario}");
                    print!("{}", render_spans(spans));
                }
                if let Some(store) = &store {
                    for (scenario_name, record) in &observation.records {
                        let Some(scenario) = scenarios.iter().find(|s| &s.name == scenario_name)
                        else {
                            continue;
                        };
                        let manifest = RunManifest::for_run(scenario, name, cfg.threads);
                        let artifact = RunArtifact::new(manifest, record.clone());
                        match store.save(&artifact) {
                            Ok(path) => eprintln!("[archived {}]", path.display()),
                            Err(e) => {
                                eprintln!("archive failed: {e}");
                                return ExitCode::FAILURE;
                            }
                        }
                    }
                }
                results.push(result);
            }
            Err(e) => {
                eprintln!("failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("{}", render_comparison(&results));
    if let Ok(json) = to_json(&SuiteArtifact::new(results.clone())) {
        if let Ok(path) = write_artifact("cli_suite.json", &json) {
            eprintln!("[saved {}]", path.display());
        }
    }
    if !trace_lines.is_empty() {
        match write_artifact("trace.jsonl", &trace_lines) {
            Ok(path) => eprintln!("[saved {}]", path.display()),
            Err(e) => eprintln!("trace write failed: {e}"),
        }
    }
    ExitCode::SUCCESS
}

fn cmd_shift(args: &[String]) -> ExitCode {
    let common = match CommonRunArgs::parse(args) {
        Ok(c) => c,
        Err(code) => return code,
    };
    let registry = SutRegistry::default();
    let sut_name = match common.require_sut() {
        Ok(name) => name,
        Err(code) => return code,
    };
    let factory = match registry.factory(&sut_name) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let scenario = match Scenario::two_phase_shift(
        "cli-shift",
        KeyDistribution::LogNormal {
            mu: 0.0,
            sigma: 1.2,
        },
        KeyDistribution::Normal {
            center: 0.9,
            std_frac: 0.03,
        },
        parse_num(args, "--size", 100_000),
        parse_num(args, "--ops", 20_000),
        parse_num(args, "--seed", 42),
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("invalid scenario: {e}");
            return ExitCode::FAILURE;
        }
    };
    let opts = common.run_options(&scenario);
    let outcome = match Runner::from_factory(factory).config(opts).run(&scenario) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    report_outcome(&outcome, &sut_name, &scenario, "shift_trace.jsonl");
    ExitCode::SUCCESS
}

/// Prints the standard single-run summary: engine stats, record counters,
/// the adaptability report when the scenario has enough phases for one,
/// span trees, and the event trace artifact.
fn report_outcome(
    outcome: &lsbench::core::runner::RunOutcome,
    sut_name: &str,
    scenario: &Scenario,
    trace_file: &str,
) {
    if let Some(stats) = &outcome.engine {
        let q = |p: f64| {
            stats
                .latency
                .quantile(p)
                .map(|ns| ns as f64 / 1e9)
                .unwrap_or(f64::NAN)
        };
        println!(
            "[engine] {} threads, {} lanes, p50 {:.6}s p99 {:.6}s (virtual)",
            stats.threads,
            stats.lanes,
            q(0.50),
            q(0.99)
        );
    }
    if let Some(wall) = &outcome.wall {
        if wall.latency.total() > 0 {
            let q = |p: f64| {
                wall.latency
                    .quantile(p)
                    .map(|ns| ns as f64 / 1e6)
                    .unwrap_or(f64::NAN)
            };
            println!(
                "[wall] {:.3}s elapsed, {:.0} ops/s, p50 {:.4}ms p99 {:.4}ms (host clock)",
                wall.elapsed_seconds,
                wall.throughput,
                q(0.50),
                q(0.99)
            );
        } else {
            println!(
                "[wall] {:.3}s elapsed, {:.0} ops/s (host clock, coarse)",
                wall.elapsed_seconds, wall.throughput
            );
        }
    }
    let record = &outcome.record;
    println!(
        "{}: {:.0} ops/s mean, {} completed, {} failures, training {:.3}s",
        record.sut_name,
        record.mean_throughput(),
        record.completed(),
        record.failures(),
        record.train.seconds
    );
    let faults = &record.faults;
    if faults.injected + faults.retries + faults.timeouts + faults.crashes > 0 {
        println!(
            "[faults] injected {}, retries {}, timeouts {}, crashes {}",
            faults.injected, faults.retries, faults.timeouts, faults.crashes
        );
    }
    if let Ok(rep) = AdaptabilityReport::from_record(record) {
        println!("{}", render_adaptability(&[&rep]));
    }
    if !outcome.spans.is_empty() {
        println!("[spans] {sut_name} / {}", scenario.name);
        print!("{}", render_spans(&outcome.spans));
    }
    if let Some(trace) = &outcome.trace {
        match trace
            .to_jsonl_tagged(&[("sut", sut_name), ("scenario", scenario.name.as_str())])
            .and_then(|lines| write_artifact(trace_file, &lines))
        {
            Ok(path) => eprintln!("[saved {}]", path.display()),
            Err(e) => eprintln!("trace write failed: {e}"),
        }
    }
}

/// The scenario registry at the scale given by `--size`/`--ops`/`--seed`
/// (defaults match the standard suite).
fn scenario_registry(args: &[String]) -> ScenarioRegistry {
    let default = SuiteConfig::default();
    ScenarioRegistry::with_config(SuiteConfig {
        dataset_size: parse_num(args, "--size", default.dataset_size),
        ops_per_phase: parse_num(args, "--ops", default.ops_per_phase),
        seed: parse_num(args, "--seed", default.seed),
        ..default
    })
}

/// Executes one resolved scenario locally or remotely with the shared
/// options — the common tail of `run`, `archive run`, and every capacity
/// probe. Returns the outcome, the (possibly server-reported) SUT name,
/// and the transport used.
fn execute_scenario(
    common: &CommonRunArgs,
    scenario: &Scenario,
    opts: RunOptions,
    quiet: bool,
) -> Result<(RunOutcome, String, Transport), ExitCode> {
    if let Some(endpoint) = &common.remote {
        let (outcome, sut_name) = run_remote(scenario, endpoint, opts, quiet)?;
        let transport = Transport::Remote {
            endpoint: endpoint.clone(),
        };
        return Ok((outcome, sut_name, transport));
    }
    let sut_name = common.require_sut()?;
    let registry = SutRegistry::default();
    let factory = registry.factory(&sut_name).map_err(|e| {
        eprintln!("{e}");
        ExitCode::from(2)
    })?;
    if !quiet {
        eprintln!(
            "running {} on {} ({} phases, {} ops, mode {}) ...",
            scenario.name,
            sut_name,
            scenario.workload.phases().len(),
            scenario.workload.total_ops(),
            opts.mode.label()
        );
    }
    let outcome = Runner::from_factory(factory)
        .config(opts)
        .run(scenario)
        .map_err(|e| {
            eprintln!("run failed: {e}");
            ExitCode::FAILURE
        })?;
    Ok((outcome, sut_name, Transport::Local))
}

fn cmd_run(args: &[String]) -> ExitCode {
    let common = match CommonRunArgs::parse(args) {
        Ok(c) => c,
        Err(code) => return code,
    };
    if common.remote.is_none() && common.suts.is_empty() {
        eprintln!("--sut NAME is required unless --remote HOST:PORT is given (see `lsbench list`)");
        return ExitCode::from(2);
    }
    let scenario = match common.resolve_scenario(args) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let opts = common.run_options(&scenario);
    let (outcome, sut_name, _) = match execute_scenario(&common, &scenario, opts, false) {
        Ok(v) => v,
        Err(code) => return code,
    };
    report_outcome(&outcome, &sut_name, &scenario, "run_trace.jsonl");
    ExitCode::SUCCESS
}

/// Runs a scenario against a `lsbench serve` endpoint: connects the
/// pipelined client pool, ships the canonical rendered spec in the Load
/// request (the server builds the dataset and its configured SUT), and
/// drives the run through the same [`Runner`] as an in-process SUT.
/// Returns the outcome plus the server-reported SUT name.
fn run_remote(
    scenario: &Scenario,
    endpoint: &str,
    opts: RunOptions,
    quiet: bool,
) -> Result<(RunOutcome, String), ExitCode> {
    let mut remote = RemoteSut::connect(endpoint, RemoteOptions::default()).map_err(|e| {
        eprintln!("cannot connect to {endpoint}: {e}");
        ExitCode::from(2)
    })?;
    if !quiet {
        eprintln!(
            "running {} remotely on '{}' at {endpoint} (protocol v{PROTOCOL_VERSION}, {} phases, {} ops, mode {}) ...",
            scenario.name,
            remote.name(),
            scenario.workload.phases().len(),
            scenario.workload.total_ops(),
            opts.mode.label()
        );
    }
    remote.load(&render_scenario(scenario)).map_err(|e| {
        eprintln!("remote load failed: {e}");
        ExitCode::FAILURE
    })?;
    let outcome = Runner::new(&mut remote)
        .config(opts)
        .run(scenario)
        .map_err(|e| {
            eprintln!("remote run failed: {e}");
            ExitCode::FAILURE
        })?;
    let sut_name = remote.name().to_string();
    Ok((outcome, sut_name))
}

/// `lsbench serve`: host a registered SUT behind the wire protocol until
/// the process is killed.
fn cmd_serve(args: &[String]) -> ExitCode {
    let Some(sut_name) = parse_flag(args, "--sut") else {
        eprintln!("--sut NAME is required (see `lsbench list`)");
        return ExitCode::from(2);
    };
    let Some(port) = parse_flag(args, "--port") else {
        eprintln!("--port P is required (0 picks a free port)");
        return ExitCode::from(2);
    };
    let host = parse_flag(args, "--host").unwrap_or_else(|| "127.0.0.1".to_string());
    let server = match WireServer::bind(format!("{host}:{port}"), SutRegistry::default(), &sut_name)
    {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot serve: {e}");
            return ExitCode::from(2);
        }
    };
    match server.local_addr() {
        Ok(addr) => {
            println!("lsbench serve: hosting '{sut_name}' on {addr} (protocol v{PROTOCOL_VERSION})")
        }
        Err(e) => {
            eprintln!("cannot resolve listen address: {e}");
            return ExitCode::FAILURE;
        }
    }
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("server error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Opens the results store named by `--store DIR`, or the default
/// workspace store when the flag is absent.
fn open_store(args: &[String]) -> Result<ResultStore, ExitCode> {
    let opened = match parse_flag(args, "--store") {
        Some(dir) => ResultStore::open(dir),
        None => ResultStore::open_default(),
    };
    opened.map_err(|e| {
        eprintln!("{e}");
        ExitCode::FAILURE
    })
}

/// Positional (non-flag) arguments, skipping the values of value-taking
/// flags so `compare A B --store DIR` sees exactly `[A, B]`.
fn positional_args(args: &[String]) -> Vec<String> {
    const VALUE_FLAGS: &[&str] = &[
        "--store",
        "--policy",
        "--baseline",
        "--candidate",
        "--scenario",
        "--sut",
        "--threads",
        "--size",
        "--ops",
        "--seed",
        "--faults",
        "--remote",
        "--port",
        "--host",
        "--mode",
        "--clock",
        "--clients",
        "--sla",
        "--drift",
        "--rate",
        "--probes",
        "--tolerance",
        "--speed",
        "--out",
        "--format",
        "--name",
    ];
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if VALUE_FLAGS.contains(&args[i].as_str()) {
            i += 2;
        } else if args[i].starts_with("--") {
            i += 1;
        } else {
            out.push(args[i].clone());
            i += 1;
        }
    }
    out
}

fn cmd_archive(args: &[String]) -> ExitCode {
    match args.first().map(|s| s.as_str()) {
        Some("run") => cmd_archive_run(&args[1..]),
        Some("list") => cmd_archive_list(&args[1..]),
        Some("show") => cmd_archive_show(&args[1..]),
        _ => {
            eprintln!("usage: lsbench archive run|list|show ... (see `lsbench` for details)");
            ExitCode::from(2)
        }
    }
}

/// `lsbench archive run`: exactly `lsbench run`, plus saving the record
/// (with its reproduction manifest and engine statistics) into the
/// results store.
fn cmd_archive_run(args: &[String]) -> ExitCode {
    let common = match CommonRunArgs::parse(args) {
        Ok(c) => c,
        Err(code) => return code,
    };
    if common.remote.is_none() && common.suts.is_empty() {
        eprintln!("--sut NAME is required unless --remote HOST:PORT is given (see `lsbench list`)");
        return ExitCode::from(2);
    }
    let store = match open_store(args) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let scenario = match common.resolve_scenario(args) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let opts = common.run_options(&scenario);
    let (outcome, sut_name, transport) = match execute_scenario(&common, &scenario, opts, false) {
        Ok(v) => v,
        Err(code) => return code,
    };
    report_outcome(&outcome, &sut_name, &scenario, "run_trace.jsonl");
    let manifest = RunManifest::for_run(&scenario, &sut_name, mode_workers(opts.mode))
        .with_transport(transport)
        .with_clock(opts.clock);
    let artifact = RunArtifact::new(manifest, outcome.record)
        .with_engine(outcome.engine)
        .with_wall(outcome.wall);
    match store.save(&artifact) {
        Ok(path) => {
            println!("archived {} (digest {})", path.display(), artifact.digest);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("archive failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `lsbench capacity`: binary-search the maximum sustainable open-loop
/// arrival rate under a latency SLA, probing with full runs on fresh
/// SUTs, and archive the resulting knee curve.
fn cmd_capacity(args: &[String]) -> ExitCode {
    let common = match CommonRunArgs::parse(args) {
        Ok(c) => c,
        Err(code) => return code,
    };
    if common.remote.is_none() && common.suts.is_empty() {
        eprintln!("--sut NAME is required unless --remote HOST:PORT is given (see `lsbench list`)");
        return ExitCode::from(2);
    }
    let Some(sla_arg) = parse_flag(args, "--sla") else {
        eprintln!("--sla pNN:MS is required (e.g. --sla p99:5 for p99 <= 5ms)");
        return ExitCode::from(2);
    };
    let sla = match SlaTarget::parse(&sla_arg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let store = match open_store(args) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let scenario = match common.resolve_scenario(args) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let clients = common
        .clients
        .or(scenario.open_loop.map(|o| o.clients as usize))
        .unwrap_or(DEFAULT_CLIENTS);
    let workers = common.threads.max(1);
    let config = CapacityConfig {
        sla,
        initial_rate: parse_num(args, "--rate", 1000.0),
        max_probes: parse_num(args, "--probes", 12),
        tolerance: parse_num(args, "--tolerance", 0.05),
    };
    eprintln!(
        "capacity search: {} under {} ({clients} clients, {workers} workers, \
         start {} ops/s, <= {} probes) ...",
        scenario.name,
        sla.describe(),
        config.initial_rate,
        config.max_probes
    );
    // Each probe is a fresh SUT at a substituted arrival rate; the probe
    // fails the whole search rather than guessing past a broken run.
    let mut probe_sut = String::new();
    let probe_result = capacity_search(&config, |rate| {
        let probe_scenario = with_arrival_rate(&scenario, rate);
        let opts = RunOptions::with_mode(ExecutionMode::OpenLoop { clients, workers });
        let (outcome, sut_name, _) = execute_scenario(&common, &probe_scenario, opts, true)
            .map_err(|_| BenchError::Sut(format!("probe at {rate} ops/s failed")))?;
        probe_sut = sut_name;
        let engine = outcome.engine.as_ref().ok_or_else(|| {
            BenchError::Metric("open-loop probe produced no engine stats".to_string())
        })?;
        let point = CapacityPoint::from_run(rate, &sla, engine, &outcome.record)?;
        eprintln!(
            "  probe {:>12.2} ops/s -> p{} {:.4}ms, {} completed: {}",
            point.rate,
            sla.quantile * 100.0,
            point.latency_seconds * 1000.0,
            point.completed,
            if point.met { "met" } else { "VIOLATED" }
        );
        Ok(point)
    });
    let report = match probe_result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("capacity search failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if has_flag(args, "--json") {
        match to_json(&report) {
            Ok(json) => println!("{json}"),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        print!("{}", render_capacity_report(&report));
    }
    let transport = match &common.remote {
        Some(endpoint) => Transport::Remote {
            endpoint: endpoint.clone(),
        },
        None => Transport::Local,
    };
    let manifest = CapacityManifest::for_search(&scenario, &probe_sut, &sla_arg, clients, workers)
        .with_transport(transport);
    let artifact = CapacityArtifact::new(manifest, report);
    match store.save_capacity(&artifact) {
        Ok(path) => {
            println!("archived {} (digest {})", path.display(), artifact.digest);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("archive failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `lsbench sweep`: grade a scenario's drift by intensity — expand the
/// `--drift lo..hixN` ladder, run every (SUT, α) cell through the normal
/// runner, print the metric-vs-α curves with the linear shift-bound
/// overlay, and archive the curves as a sweep artifact.
fn cmd_sweep(args: &[String]) -> ExitCode {
    let common = match CommonRunArgs::parse(args) {
        Ok(c) => c,
        Err(code) => return code,
    };
    // `--sut a --sut b` and `--sut a,b` both spell a multi-SUT sweep.
    let suts: Vec<String> = common
        .suts
        .iter()
        .flat_map(|s| s.split(','))
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if common.remote.is_none() && suts.is_empty() {
        eprintln!("--sut NAME is required unless --remote HOST:PORT is given (see `lsbench list`)");
        return ExitCode::from(2);
    }
    let store = match open_store(args) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let scenario = match common.resolve_scenario(args) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let axis = parse_flag(args, "--drift").unwrap_or_else(|| "0..1x5".to_string());
    let ladder = match DriftLadder::build(&scenario, &axis) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    // With --remote the server picks the single SUT; locally each named
    // SUT is one lane of the sweep.
    let lanes: Vec<Option<String>> = if common.remote.is_some() {
        vec![None]
    } else {
        suts.into_iter().map(Some).collect()
    };
    eprintln!(
        "drift sweep: {} over {} ({} rungs x {} SUT lane(s)) ...",
        scenario.name,
        ladder.axis,
        ladder.rungs.len(),
        lanes.len()
    );
    let mut curves = Vec::with_capacity(lanes.len());
    let mut curve_suts = Vec::with_capacity(lanes.len());
    for lane in lanes {
        let lane_common = CommonRunArgs {
            scenario: common.scenario.clone(),
            suts: lane.clone().into_iter().collect(),
            remote: common.remote.clone(),
            mode: common.mode,
            clock: common.clock,
            threads: common.threads,
            clients: common.clients,
            faults: common.faults.clone(),
            obs: common.obs,
        };
        let mut lane_sut = lane.unwrap_or_default();
        let mut records = Vec::with_capacity(ladder.rungs.len());
        for (&alpha, rung) in ladder.alphas.iter().zip(&ladder.rungs) {
            let opts = lane_common.run_options(rung);
            let (outcome, sut_name, _) = match execute_scenario(&lane_common, rung, opts, true) {
                Ok(v) => v,
                Err(code) => return code,
            };
            eprintln!(
                "  {sut_name} α={alpha:.3}: {} completed",
                outcome.record.completed()
            );
            lane_sut = sut_name;
            records.push(outcome.record);
        }
        let curve = match sweep_curve(&lane_sut, &ladder.alphas, &ladder.rungs, &records) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("sweep curve for {lane_sut} failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        curve_suts.push(lane_sut);
        curves.push(curve);
    }
    let transport = match &common.remote {
        Some(endpoint) => Transport::Remote {
            endpoint: endpoint.clone(),
        },
        None => Transport::Local,
    };
    let manifest = SweepManifest::for_sweep(&scenario, &curve_suts, &ladder.axis, &ladder.alphas)
        .with_transport(transport)
        .with_clock(common.clock_mode(&scenario));
    let artifact = SweepArtifact::new(manifest, curves);
    if has_flag(args, "--json") {
        match artifact.to_json() {
            Ok(json) => print!("{json}"),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        print!(
            "{}",
            render_sweep_report(&scenario.name, &ladder.axis, &artifact.curves)
        );
    }
    match store.save_sweep(&artifact) {
        Ok(path) => {
            println!("archived {} (digest {})", path.display(), artifact.digest);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("archive failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_archive_list(args: &[String]) -> ExitCode {
    let store = match open_store(args) {
        Ok(s) => s,
        Err(code) => return code,
    };
    match store.list() {
        Ok(entries) => {
            if entries.is_empty() {
                println!("(no artifacts in {})", store.dir().display());
                return ExitCode::SUCCESS;
            }
            println!(
                "{:<16} {:<14} {:<22} {:>7} {:<24} {:>9}",
                "digest", "sut", "scenario", "workers", "transport", "ops"
            );
            for e in &entries {
                println!(
                    "{:<16} {:<14} {:<22} {:>7} {:<24} {:>9}",
                    e.digest,
                    e.sut,
                    e.scenario,
                    e.concurrency,
                    e.transport.to_string(),
                    e.completed
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_archive_show(args: &[String]) -> ExitCode {
    let Some(id) = positional_args(args).into_iter().next() else {
        eprintln!("usage: lsbench archive show ID [--store DIR]");
        return ExitCode::from(2);
    };
    let store = match open_store(args) {
        Ok(s) => s,
        Err(code) => return code,
    };
    match store.load(&id) {
        Ok(a) => {
            let m = &a.manifest;
            println!("digest:        {}", a.digest);
            println!("schema:        v{}", a.schema_version);
            println!("sut:           {}", m.sut);
            println!("scenario:      {}", m.scenario);
            println!("workers:       {}", m.concurrency);
            println!("transport:     {}", m.transport);
            println!("crate version: {}", m.crate_version);
            let r = &a.record;
            println!(
                "record:        {} completed, {} failures, {:.0} ops/s mean, train {:.3}s",
                r.completed(),
                r.failures(),
                r.mean_throughput(),
                r.train.seconds
            );
            println!("--- rendered spec ---");
            print!("{}", m.spec);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_compare(args: &[String]) -> ExitCode {
    let ids = positional_args(args);
    let [baseline_id, candidate_id] = ids.as_slice() else {
        eprintln!("usage: lsbench compare BASELINE CANDIDATE [--store DIR] [--json]");
        return ExitCode::from(2);
    };
    let store = match open_store(args) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let load = |id: &str| {
        store.load(id).map_err(|e| {
            eprintln!("{e}");
            ExitCode::FAILURE
        })
    };
    let (baseline, candidate) = match (load(baseline_id), load(candidate_id)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    match compare(&baseline.record, &candidate.record) {
        Ok(report) => {
            let transport_header = render_transport_header(&baseline.manifest, &candidate.manifest);
            if has_flag(args, "--json") {
                eprint!("{transport_header}");
                match to_json(&report) {
                    Ok(json) => println!("{json}"),
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                }
            } else {
                print!("{transport_header}");
                print!("{}", render_comparison_report(&report));
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("comparison failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_regress(args: &[String]) -> ExitCode {
    let Some(baseline_id) = parse_flag(args, "--baseline") else {
        eprintln!("--baseline ID is required");
        return ExitCode::from(2);
    };
    let Some(candidate_id) = parse_flag(args, "--candidate") else {
        eprintln!("--candidate ID is required");
        return ExitCode::from(2);
    };
    let Some(policy_file) = parse_flag(args, "--policy") else {
        eprintln!("--policy FILE is required (see policies/default.policy)");
        return ExitCode::from(2);
    };
    let policy_text = match std::fs::read_to_string(&policy_file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {policy_file}: {e}");
            return ExitCode::from(2);
        }
    };
    let policy = match parse_regression_policy(&policy_text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{policy_file}:{e}");
            return ExitCode::from(2);
        }
    };
    let store = match open_store(args) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let load = |id: &str| {
        store.load(id).map_err(|e| {
            eprintln!("{e}");
            ExitCode::FAILURE
        })
    };
    let (baseline, candidate) = match (load(&baseline_id), load(&candidate_id)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    let comparison = match compare(&baseline.record, &candidate.record) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("comparison failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let verdict = evaluate_regression(&comparison, &policy);
    if has_flag(args, "--json") {
        match to_json(&verdict) {
            Ok(json) => println!("{json}"),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        print!("{}", render_regression(&verdict));
    }
    match write_bench_summary(&verdict) {
        Ok(path) => eprintln!("[saved {}]", path.display()),
        Err(e) => {
            eprintln!("summary write failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    if verdict.passed {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_scenarios() -> ExitCode {
    let registry = ScenarioRegistry::default();
    println!("built-in scenarios (run with `lsbench run --scenario NAME`):");
    for (name, description) in registry.descriptions() {
        println!("  {name:<18} {description}");
    }
    println!("spec files: `lsbench run --scenario path/to/file.spec` (see scenarios/)");
    ExitCode::SUCCESS
}

/// Collects spec files from a path argument: a file is taken as-is, a
/// directory contributes its `*.spec` entries sorted by name.
fn collect_specs(arg: &str, out: &mut Vec<String>) -> Result<(), String> {
    let path = Path::new(arg);
    if path.is_dir() {
        let entries = std::fs::read_dir(path).map_err(|e| format!("cannot read {arg}: {e}"))?;
        let mut found: Vec<String> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "spec"))
            .map(|p| p.display().to_string())
            .collect();
        if found.is_empty() {
            return Err(format!("no .spec files in {arg}"));
        }
        found.sort();
        out.extend(found);
        Ok(())
    } else if path.is_file() {
        out.push(arg.to_string());
        Ok(())
    } else {
        Err(format!("no such file or directory: {arg}"))
    }
}

fn cmd_validate(args: &[String]) -> ExitCode {
    if args.is_empty() {
        eprintln!("usage: lsbench validate FILE|DIR...");
        return ExitCode::from(2);
    }
    let mut files = Vec::new();
    for arg in args {
        if let Err(e) = collect_specs(arg, &mut files) {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    }
    let mut failures = 0usize;
    for file in &files {
        match ScenarioRegistry::load_file(file) {
            Ok(s) => println!(
                "{file}: OK ({}, {} phases, {} ops)",
                s.name,
                s.workload.phases().len(),
                s.workload.total_ops()
            ),
            Err(e) => {
                println!("{file}:{e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} of {} file(s) invalid", files.len());
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_export(args: &[String]) -> ExitCode {
    let Some(name) = args.iter().find(|a| !a.starts_with("--")).cloned() else {
        eprintln!("usage: lsbench export NAME [--size N] [--ops N] [--seed N]");
        return ExitCode::from(2);
    };
    match scenario_registry(args).get(&name) {
        Ok(s) => {
            print!("{}", render_scenario(&s));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}

/// Reads and imports a trace file, resolving the format from `--format`
/// or the file extension. Errors print positioned, `validate`-style:
/// `file:line N: field: reason`.
fn load_trace(file: &str, args: &[String]) -> Result<ImportedTrace, ExitCode> {
    let format = match parse_flag(args, "--format") {
        Some(name) => match TraceFormat::from_name(&name) {
            Some(f) => f,
            None => {
                eprintln!("unknown trace format '{name}' (expected \"csv\" or \"jsonl\")");
                return Err(ExitCode::from(2));
            }
        },
        None => match TraceFormat::from_path(file) {
            Some(f) => f,
            None => {
                eprintln!("cannot infer trace format of {file} (use --format csv|jsonl)");
                return Err(ExitCode::from(2));
            }
        },
    };
    let text = std::fs::read_to_string(file).map_err(|e| {
        eprintln!("cannot read {file}: {e}");
        ExitCode::from(2)
    })?;
    let mut imported = import_str(&text, format).map_err(|e| {
        eprintln!("{file}:{e}");
        ExitCode::FAILURE
    })?;
    if let Some(speed) = parse_flag(args, "--speed") {
        let speed: f64 = match speed.parse() {
            Ok(v) => v,
            Err(_) => {
                eprintln!("--speed must be a number, got '{speed}'");
                return Err(ExitCode::from(2));
            }
        };
        imported.scale_speed(speed).map_err(|e| {
            eprintln!("{e}");
            ExitCode::from(2)
        })?;
    }
    Ok(imported)
}

/// Writes a trace in canonical form to `path`, format from the path's
/// extension (or `--format`).
fn write_trace(trace: &lsbench::workload::Trace, path: &str, args: &[String]) -> ExitCode {
    let format = parse_flag(args, "--format")
        .and_then(|n| TraceFormat::from_name(&n))
        .or_else(|| TraceFormat::from_path(path))
        .unwrap_or(TraceFormat::Csv);
    let text = match format {
        TraceFormat::Csv => export_csv(trace),
        TraceFormat::Jsonl => export_jsonl(trace),
    };
    match std::fs::write(path, text) {
        Ok(()) => {
            eprintln!("wrote {} ops to {path}", trace.len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot write {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_trace_stats(stats: &lsbench::core::trace::import::TraceStats, had_timestamps: bool) {
    println!(
        "{} ops (read {}, insert {}, update {}, scan {}, delete {})",
        stats.ops,
        stats.by_kind[0],
        stats.by_kind[1],
        stats.by_kind[2],
        stats.by_kind[3],
        stats.by_kind[4]
    );
    println!(
        "{} distinct keys in [{}, {}]",
        stats.distinct_keys, stats.key_range.0, stats.key_range.1
    );
    if had_timestamps {
        println!(
            "timestamped: {:.6}s span, replays open-loop",
            stats.duration
        );
    } else {
        println!("no timestamps: replays closed-loop");
    }
}

/// `lsbench trace import`: parse, validate, and summarize a trace file,
/// optionally re-exporting it in canonical form.
fn cmd_trace_import(args: &[String]) -> ExitCode {
    let Some(file) = positional_args(args).first().cloned() else {
        eprintln!("usage: lsbench trace import FILE [--format csv|jsonl] [--out FILE]");
        return ExitCode::from(2);
    };
    let imported = match load_trace(&file, args) {
        Ok(t) => t,
        Err(code) => return code,
    };
    print_trace_stats(&imported.stats(), imported.had_timestamps);
    if let Some(out) = parse_flag(args, "--out") {
        return write_trace(&imported.trace, &out, args);
    }
    ExitCode::SUCCESS
}

/// `lsbench trace replay`: replay an imported trace against a SUT —
/// closed-loop by default, open-loop with `--mode open-loop` /
/// `--clients` — optionally archiving the record into the results store.
fn cmd_trace_replay(args: &[String]) -> ExitCode {
    let Some(file) = positional_args(args).first().cloned() else {
        eprintln!(
            "usage: lsbench trace replay FILE --sut NAME [--speed X] [--mode open-loop] \
             [--clients N] [--threads N] [--archive] [--store DIR]"
        );
        return ExitCode::from(2);
    };
    let common = match CommonRunArgs::parse(args) {
        Ok(c) => c,
        Err(code) => return code,
    };
    let sut_name = match common.require_sut() {
        Ok(name) => name,
        Err(code) => return code,
    };
    let imported = match load_trace(&file, args) {
        Ok(t) => t,
        Err(code) => return code,
    };
    // The dataset a trace replays over: the trace's own key population.
    let data = lsbench::workload::Dataset::from_keys(
        imported
            .trace
            .entries()
            .iter()
            .map(|e| e.op.key())
            .collect(),
    );
    let mut sut = match SutRegistry::default().build(&sut_name, &data) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let config = ReplayConfig::default();
    let open_loop =
        matches!(common.mode, Some(ModePreference::OpenLoop)) || common.clients.is_some();
    let record = if open_loop {
        let clients = common.clients.unwrap_or(DEFAULT_CLIENTS);
        eprintln!(
            "replaying {} ops open-loop on {sut_name} ({clients} clients) ...",
            imported.trace.len()
        );
        run_kv_trace_open_loop(sut.as_mut(), &imported.trace, &config, clients)
    } else {
        eprintln!(
            "replaying {} ops closed-loop on {sut_name} ...",
            imported.trace.len()
        );
        run_kv_trace(sut.as_mut(), &imported.trace, &config)
    };
    let record = match record {
        Ok(r) => r,
        Err(e) => {
            eprintln!("replay failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{}: {:.0} ops/s mean, {} completed, {} failures",
        record.sut_name,
        record.mean_throughput(),
        record.completed(),
        record.failures()
    );
    if has_flag(args, "--archive") {
        let store = match open_store(args) {
            Ok(s) => s,
            Err(code) => return code,
        };
        // Replays have no Scenario, so the manifest carries a stable
        // descriptor instead of rendered spec text.
        let clients = common.clients.unwrap_or(DEFAULT_CLIENTS);
        let stem = Path::new(&file)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| file.clone());
        let manifest = RunManifest {
            sut: sut_name.clone(),
            scenario: format!("trace-{stem}"),
            spec: format!(
                "# trace replay\nfile = \"{file}\"\nspeed = \"{}\"\nmode = \"{}\"\n",
                parse_flag(args, "--speed").unwrap_or_else(|| "1".to_string()),
                if open_loop {
                    format!("open-loop:{clients}")
                } else {
                    "closed-loop".to_string()
                }
            ),
            concurrency: common.threads.max(1),
            crate_version: env!("CARGO_PKG_VERSION").to_string(),
            transport: Transport::Local,
            clock: ClockMode::Sim,
        };
        let artifact = RunArtifact::new(manifest, record);
        match store.save(&artifact) {
            Ok(path) => println!("archived {} (digest {})", path.display(), artifact.digest),
            Err(e) => {
                eprintln!("archive failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// `lsbench trace fit`: fit a `.spec` scenario to a trace and print (or
/// write) the canonical spec text plus a fit report.
fn cmd_trace_fit(args: &[String]) -> ExitCode {
    let Some(file) = positional_args(args).first().cloned() else {
        eprintln!("usage: lsbench trace fit FILE [--name NAME] [--seed N] [--out FILE]");
        return ExitCode::from(2);
    };
    let imported = match load_trace(&file, args) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let name = parse_flag(args, "--name").unwrap_or_else(|| "fitted-trace".to_string());
    let seed: u64 = parse_num(args, "--seed", 0x5EED);
    let (scenario, report) = match fit_scenario(&imported.trace, &name, seed) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("fit failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "fit: {} phase(s), repetition factor: distinct ratio {:.3}, top-10 template mass {:.3}",
        report.phases.len(),
        report.distinct_ratio,
        report.top_template_mass
    );
    for p in &report.phases {
        eprintln!(
            "  {}: {} ops, {:?}, key_range [{}, {}), distinct {:.3}, top1 {:.4}",
            p.name,
            p.ops,
            p.distribution,
            p.key_range.0,
            p.key_range.1,
            p.distinct_ratio,
            p.top1_mass
        );
    }
    let spec = render_scenario(&scenario);
    match parse_flag(args, "--out") {
        Some(out) => match std::fs::write(&out, &spec) {
            Ok(()) => {
                eprintln!("wrote fitted spec to {out}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("cannot write {out}: {e}");
                ExitCode::FAILURE
            }
        },
        None => {
            print!("{spec}");
            ExitCode::SUCCESS
        }
    }
}

/// `lsbench trace record`: record a scenario's generated operation stream
/// as a trace file — the bridge from generators to shareable traces.
/// `--rate R` stamps constant-rate timestamps (R ops/s) so the recording
/// replays open-loop.
fn cmd_trace_record(args: &[String]) -> ExitCode {
    let common = match CommonRunArgs::parse(args) {
        Ok(c) => c,
        Err(code) => return code,
    };
    let Some(out) = parse_flag(args, "--out") else {
        eprintln!(
            "usage: lsbench trace record --scenario NAME|FILE --out FILE \
             [--rate R] [--format csv|jsonl]"
        );
        return ExitCode::from(2);
    };
    let scenario = match common.resolve_scenario(args) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let trace = match lsbench::workload::Trace::record(&scenario.workload) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot record {}: {e}", scenario.name);
            return ExitCode::FAILURE;
        }
    };
    let trace = match parse_flag(args, "--rate") {
        None => trace,
        Some(rate) => {
            let rate: f64 = match rate.parse() {
                Ok(v) if v > 0.0 => v,
                _ => {
                    eprintln!("--rate must be a positive number, got '{rate}'");
                    return ExitCode::from(2);
                }
            };
            let mut stamped = lsbench::workload::Trace::new(trace.phase_names().to_vec());
            for (i, entry) in trace.entries().iter().enumerate() {
                stamped.push(lsbench::workload::trace::TraceEntry {
                    op: entry.op,
                    phase: entry.phase,
                    arrival: i as f64 / rate,
                });
            }
            stamped
        }
    };
    write_trace(&trace, &out, args)
}

fn cmd_trace(args: &[String]) -> ExitCode {
    match args.first().map(|s| s.as_str()) {
        Some("import") => cmd_trace_import(&args[1..]),
        Some("replay") => cmd_trace_replay(&args[1..]),
        Some("fit") => cmd_trace_fit(&args[1..]),
        Some("record") => cmd_trace_record(&args[1..]),
        _ => {
            eprintln!(
                "usage: lsbench trace import|replay|fit|record ... (see `lsbench` for details)"
            );
            ExitCode::from(2)
        }
    }
}

fn cmd_quality(args: &[String]) -> ExitCode {
    let Some(dist_name) = parse_flag(args, "--dist") else {
        eprintln!("--dist NAME is required (see `lsbench list`)");
        return ExitCode::from(2);
    };
    let theta: f64 = parse_num(args, "--theta", 1.1);
    let dist = match KeyDistribution::from_canonical(&dist_name) {
        Some(KeyDistribution::Zipf { .. }) => KeyDistribution::Zipf { theta },
        Some(d) => d,
        None => {
            eprintln!("unknown distribution '{dist_name}' (see `lsbench list`)");
            return ExitCode::from(2);
        }
    };
    let keys = match KeyGenerator::new(dist, 0, 10_000_000, 7) {
        Ok(mut g) => g.sample_f64(30_000),
        Err(e) => {
            eprintln!("invalid distribution: {e}");
            return ExitCode::FAILURE;
        }
    };
    let r = score_dataset(&keys);
    println!(
        "{dist_name}: skew {:.3}, clustering {:.3}, overall {:.3}",
        r.skew_score, r.clustering_score, r.overall
    );
    println!("(higher = better benchmark material; uniform scores near 0)");
    ExitCode::SUCCESS
}

fn cmd_list() -> ExitCode {
    let registry = SutRegistry::default();
    println!("SUTs:");
    for (name, description) in registry.descriptions() {
        println!("  {name:<14} {description}");
    }
    println!("distributions:");
    for (name, description) in CANONICAL_DISTRIBUTIONS {
        println!("  {name:<14} {description}");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(|s| s.as_str()) {
        Some("suite") => cmd_suite(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("capacity") => cmd_capacity(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("shift") => cmd_shift(&args[1..]),
        Some("quality") => cmd_quality(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("archive") => cmd_archive(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("regress") => cmd_regress(&args[1..]),
        Some("scenarios") => cmd_scenarios(),
        Some("validate") => cmd_validate(&args[1..]),
        Some("export") => cmd_export(&args[1..]),
        Some("list") => cmd_list(),
        _ => usage(),
    }
}
