//! Chaos conformance suite: the fault-injection harness must be
//! *deterministic*, *zero-cost when absent*, and *honest in the metrics*.
//!
//! Three properties anchor it (ISSUE 4 acceptance):
//!
//! 1. **Worker-count invariance under faults** — a faulted run merges to
//!    a bit-identical `RunRecord` whether one or four threads executed
//!    it: every fault decision is a pure function of the plan seed and
//!    the operation's global stream index.
//! 2. **Exact passthrough** — attaching an *empty* fault plan produces a
//!    record bit-identical to running with no plan at all; the faulted
//!    code path degenerates to the unfaulted arithmetic.
//! 3. **SLA attribution** — failed and timed-out queries are SLA
//!    violations regardless of how fast the client observed them, and
//!    the trace/counters/record accounting all agree on how many faults
//!    fired.

use lsbench::core::driver::{run_kv_scenario, DriverConfig};
use lsbench::core::engine::{run_sharded_kv_scenario, shard_dataset, EngineConfig};
use lsbench::core::faults::{FaultPlan, FaultSpec, FaultStats, RetryPolicy};
use lsbench::core::metrics::sla::SlaReport;
use lsbench::core::obs::ObsConfig;
use lsbench::core::record::RunRecord;
use lsbench::core::runner::{BoxedKvSut, ExecutionMode, RunOptions, Runner};
use lsbench::core::scenario::Scenario;
use lsbench::core::BenchError;
use lsbench::sut::kv::{RetrainPolicy, RmiSut};
use lsbench::sut::sut::SystemUnderTest;
use lsbench::workload::dataset::Dataset;
use lsbench::workload::keygen::KeyDistribution;
use lsbench::workload::ops::Operation;

fn scenario(seed: u64) -> Scenario {
    Scenario::two_phase_shift(
        "chaos",
        KeyDistribution::LogNormal {
            mu: 0.0,
            sigma: 1.2,
        },
        KeyDistribution::Zipf { theta: 1.2 },
        20_000,
        3_000,
        seed,
    )
    .expect("valid scenario")
}

/// A plan exercising every fault kind that can run on shared or sharded
/// SUTs, plus a timeout/retry policy tight enough that stalled ops blow
/// through the timeout.
fn chaos_plan() -> FaultPlan {
    FaultPlan {
        seed: 0xFA17,
        policy: RetryPolicy {
            timeout: Some(0.002),
            max_retries: 2,
            backoff_base: 5e-4,
            backoff_multiplier: 2.0,
        },
        faults: vec![
            FaultSpec::TransientErrors {
                phase: None,
                rate: 0.05,
            },
            FaultSpec::LatencySpike {
                phase: Some(1),
                add_work: 0,
                factor: 3.0,
            },
            // 2.5 virtual seconds spread over ops [1000, 1500) of phase 0:
            // 5ms per stalled op, past the 2ms timeout.
            FaultSpec::Stall {
                phase: 0,
                from_op: 1000,
                ops: 500,
                duration: 2.5,
            },
            FaultSpec::Crash {
                phase: 1,
                at_op: 1500,
            },
        ],
    }
}

fn factory(data: &Dataset) -> Result<BoxedKvSut, BenchError> {
    Ok(Box::new(
        RmiSut::build("rmi", data, RetrainPolicy::DeltaFraction(0.05))
            .map_err(|e| BenchError::Sut(e.to_string()))?,
    ))
}

fn assert_records_identical(a: &RunRecord, b: &RunRecord) {
    assert_eq!(a.ops, b.ops, "per-op records must be bit-identical");
    assert_eq!(a.exec_start, b.exec_start);
    assert_eq!(a.exec_end, b.exec_end);
    assert_eq!(a.train, b.train);
    assert_eq!(a.phase_change_times, b.phase_change_times);
    assert_eq!(a.final_metrics, b.final_metrics);
    assert_eq!(a.faults, b.faults);
}

// ---------------------------------------------------------------------
// Property 1: faulted runs are worker-count invariant.
// ---------------------------------------------------------------------

#[test]
fn faulted_run_is_bit_identical_across_worker_counts() {
    let mut s = scenario(13);
    s.faults = Some(chaos_plan());
    s.validate().expect("plan fits the scenario");
    let data = s.dataset.build().unwrap();
    let (router, shards) = shard_dataset(&data, 4).unwrap();
    let run = |threads: usize| {
        let mut suts: Vec<Box<dyn SystemUnderTest<Operation> + Send>> = shards
            .iter()
            .map(|d| {
                Box::new(RmiSut::build("rmi", d, RetrainPolicy::DeltaFraction(0.05)).unwrap())
                    as Box<dyn SystemUnderTest<Operation> + Send>
            })
            .collect();
        let config = EngineConfig {
            threads,
            lanes: 4,
            ..EngineConfig::default()
        };
        run_sharded_kv_scenario(&mut suts, &router, &s, &config).unwrap()
    };
    let one = run(1);
    let four = run(4);
    assert_records_identical(&one.record, &four.record);
    assert_eq!(one.latency, four.latency);
    assert_eq!(one.completions, four.completions);
    // The plan actually did something — this is not passthrough.
    let f = &one.record.faults;
    assert!(f.injected > 0, "faults injected: {f:?}");
    assert!(f.timeouts > 0, "stalled ops must time out: {f:?}");
    assert!(f.retries > 0, "timeouts and errors must retry: {f:?}");
    assert_eq!(f.crashes, 1, "exactly one crash-restart: {f:?}");
}

#[test]
fn faulted_serial_run_is_reproducible() {
    let run = || {
        let mut s = scenario(7);
        s.faults = Some(chaos_plan());
        let data = s.dataset.build().unwrap();
        let mut sut = RmiSut::build("rmi", &data, RetrainPolicy::DeltaFraction(0.05)).unwrap();
        run_kv_scenario(&mut sut, &s, DriverConfig::default()).unwrap()
    };
    let a = run();
    let b = run();
    assert_records_identical(&a, &b);
}

// ---------------------------------------------------------------------
// Property 2: an empty plan is an exact passthrough.
// ---------------------------------------------------------------------

#[test]
fn empty_plan_is_bit_identical_to_no_plan() {
    let run = |faults: Option<FaultPlan>| {
        let mut s = scenario(29);
        s.faults = faults;
        let data = s.dataset.build().unwrap();
        let mut sut = RmiSut::build("rmi", &data, RetrainPolicy::DeltaFraction(0.05)).unwrap();
        run_kv_scenario(&mut sut, &s, DriverConfig::default()).unwrap()
    };
    let bare = run(None);
    let wrapped = run(Some(FaultPlan {
        seed: 999,
        policy: RetryPolicy::default(),
        faults: vec![],
    }));
    assert_records_identical(&bare, &wrapped);
    assert_eq!(wrapped.faults, FaultStats::default());
}

#[test]
fn empty_plan_is_bit_identical_on_the_concurrent_engine() {
    let run = |faults: Option<FaultPlan>| {
        let mut s = scenario(31);
        s.faults = faults;
        Runner::from_factory(factory)
            .config(RunOptions::with_mode(ExecutionMode::Sharded { workers: 4 }))
            .run(&s)
            .expect("run succeeds")
    };
    let bare = run(None);
    let wrapped = run(Some(FaultPlan {
        seed: 1234,
        policy: RetryPolicy::default(),
        faults: vec![],
    }));
    assert_records_identical(&bare.record, &wrapped.record);
}

// ---------------------------------------------------------------------
// Property 3: SLA attribution and accounting agree everywhere.
// ---------------------------------------------------------------------

#[test]
fn failed_queries_are_sla_violations_no_matter_how_fast() {
    // 20% error rate, no retries: roughly a fifth of ops fail, and every
    // failure must land in the violated/red buckets even under an SLA
    // threshold no successful op can miss.
    let mut s = scenario(41);
    s.faults = Some(FaultPlan {
        seed: 7,
        policy: RetryPolicy::default(),
        faults: vec![FaultSpec::TransientErrors {
            phase: None,
            rate: 0.2,
        }],
    });
    let data = s.dataset.build().unwrap();
    let mut sut = RmiSut::build("rmi", &data, RetrainPolicy::DeltaFraction(0.05)).unwrap();
    let record = run_kv_scenario(&mut sut, &s, DriverConfig::default()).unwrap();
    let failures = record.failures() as usize;
    assert!(failures > 500, "20% of 6000 ops should fail: {failures}");
    let report = SlaReport::from_record(&record, 1.0, record.exec_end.max(1.0), 50).unwrap();
    let violated: usize = report.bands.iter().map(|b| b.violated).sum();
    let red: usize = report.color_bands.iter().map(|c| c.red).sum();
    assert_eq!(violated, failures, "every failure is a violation");
    assert_eq!(red, failures, "every failure is a red band");
    let expected = failures as f64 / record.ops.len() as f64;
    assert!((report.violation_fraction - expected).abs() < 1e-12);
}

#[test]
fn retries_mask_transient_errors_but_cost_virtual_time() {
    let run = |faults: Option<FaultPlan>| {
        let mut s = scenario(43);
        s.faults = faults;
        let data = s.dataset.build().unwrap();
        let mut sut = RmiSut::build("rmi", &data, RetrainPolicy::DeltaFraction(0.05)).unwrap();
        run_kv_scenario(&mut sut, &s, DriverConfig::default()).unwrap()
    };
    let bare = run(None);
    let faulted = run(Some(FaultPlan {
        seed: 7,
        policy: RetryPolicy {
            max_retries: 5,
            ..RetryPolicy::default()
        },
        faults: vec![FaultSpec::TransientErrors {
            phase: None,
            rate: 0.05,
        }],
    }));
    // With 5 retries against a 5% error rate, effectively every op
    // eventually succeeds — but the retries and their backoff are charged
    // on the virtual clock.
    assert_eq!(faulted.failures(), 0, "retries absorb transient errors");
    assert!(faulted.faults.injected > 0);
    assert!(faulted.faults.retries >= faulted.faults.injected);
    assert!(
        faulted.exec_end > bare.exec_end,
        "retry backoff must cost virtual time: {} vs {}",
        faulted.exec_end,
        bare.exec_end
    );
}

#[test]
fn stalled_ops_time_out_and_fail_with_exact_accounting() {
    // Only a stall fault + a 1-retry timeout policy: the 500 ops in the
    // window take 5ms each against a 2ms budget, so both attempts of each
    // stalled op time out and the op fails; nothing else is perturbed.
    let mut s = scenario(47);
    s.faults = Some(FaultPlan {
        seed: 3,
        policy: RetryPolicy {
            timeout: Some(0.002),
            max_retries: 1,
            ..RetryPolicy::default()
        },
        faults: vec![FaultSpec::Stall {
            phase: 0,
            from_op: 1000,
            ops: 500,
            duration: 2.5,
        }],
    });
    let data = s.dataset.build().unwrap();
    let mut sut = RmiSut::build("rmi", &data, RetrainPolicy::DeltaFraction(0.05)).unwrap();
    let record = run_kv_scenario(&mut sut, &s, DriverConfig::default()).unwrap();
    assert_eq!(record.faults.injected, 500, "one stall per window op");
    assert_eq!(record.faults.timeouts, 1000, "two timed-out attempts each");
    assert_eq!(record.faults.retries, 500, "one retry each");
    assert_eq!(record.failures(), 500, "stalled ops fail after retries");
    // The client walked away at the timeout: observed latency stays near
    // 2 × timeout + backoff even though the server burned ≥ 10ms each.
    let worst = record
        .ops
        .iter()
        .filter(|o| !o.ok)
        .map(|o| o.latency)
        .fold(0.0f64, f64::max);
    assert!(
        worst < 0.01,
        "observed latency must be capped by the timeout, got {worst}"
    );
}

#[test]
fn trace_counters_and_record_accounting_agree() {
    let mut s = scenario(53);
    s.faults = Some(chaos_plan());
    let outcome = Runner::from_factory(factory)
        .config(RunOptions {
            obs: ObsConfig::traced(),
            ..RunOptions::default()
        })
        .run(&s)
        .expect("run succeeds");
    let record = &outcome.record;
    let trace = outcome.trace.expect("tracing was requested");
    assert_eq!(
        trace.count_kind("fault_injected") as u64,
        record.faults.injected
    );
    assert_eq!(
        trace.count_kind("query_retried") as u64,
        record.faults.retries
    );
    assert_eq!(
        trace.count_kind("query_timed_out") as u64,
        record.faults.timeouts
    );
    assert_eq!(
        outcome.metrics.counter("faults_injected"),
        record.faults.injected
    );
    assert_eq!(
        outcome.metrics.counter("query_retries"),
        record.faults.retries
    );
    assert_eq!(
        outcome.metrics.counter("query_timeouts"),
        record.faults.timeouts
    );
    assert!(record.faults.injected > 0, "the plan must actually fire");
}

#[test]
fn crash_drops_learned_state_and_charges_recovery_time() {
    let run = |faults: Option<FaultPlan>| {
        let mut s = scenario(59);
        s.faults = faults;
        let data = s.dataset.build().unwrap();
        let mut sut = RmiSut::build("rmi", &data, RetrainPolicy::DeltaFraction(0.05)).unwrap();
        run_kv_scenario(&mut sut, &s, DriverConfig::default()).unwrap()
    };
    let bare = run(None);
    let crashed = run(Some(FaultPlan {
        seed: 1,
        policy: RetryPolicy::default(),
        faults: vec![FaultSpec::Crash {
            phase: 1,
            at_op: 1500,
        }],
    }));
    assert_eq!(crashed.faults.crashes, 1);
    assert!(
        crashed.final_metrics.adaptations > bare.final_metrics.adaptations,
        "the rebuild after the crash is an adaptation: {} vs {}",
        crashed.final_metrics.adaptations,
        bare.final_metrics.adaptations
    );
    assert!(
        crashed.exec_end > bare.exec_end,
        "recovery work must cost virtual time: {} vs {}",
        crashed.exec_end,
        bare.exec_end
    );
}

#[test]
fn shipped_chaos_specs_parse_run_and_fire() {
    for (file, expect_crash) in [
        ("scenarios/chaos_errors.spec", false),
        ("scenarios/chaos_stall.spec", false),
        ("scenarios/chaos_crash.spec", true),
    ] {
        let path = format!("{}/{}", env!("CARGO_MANIFEST_DIR"), file);
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{file}: {e}"));
        let s =
            lsbench::core::spec::parse_scenario(&text).unwrap_or_else(|e| panic!("{file}: {e}"));
        let plan = s
            .faults
            .as_ref()
            .unwrap_or_else(|| panic!("{file}: no plan"));
        assert!(!plan.faults.is_empty(), "{file}: plan has no faults");
        let data = s.dataset.build().unwrap();
        let mut sut = RmiSut::build("rmi", &data, RetrainPolicy::DeltaFraction(0.05)).unwrap();
        let record = run_kv_scenario(&mut sut, &s, DriverConfig::default()).unwrap();
        assert!(record.faults.injected > 0, "{file}: plan never fired");
        assert_eq!(record.faults.crashes > 0, expect_crash, "{file}");
    }
}
