//! Reproducibility: identical seeds must give bit-identical benchmark
//! results end-to-end; different seeds must actually differ. This is the
//! property that makes results "comparable across many deployments" (§IV).

use lsbench::core::driver::{run_kv_scenario, DriverConfig};
use lsbench::core::engine::{run_sharded_kv_scenario, shard_dataset, EngineConfig};
use lsbench::core::metrics::adaptability::AdaptabilityReport;
use lsbench::core::record::RunRecord;
use lsbench::core::scenario::Scenario;
use lsbench::sut::kv::{AlexSut, RetrainPolicy, RmiSut};
use lsbench::workload::keygen::KeyDistribution;

fn scenario(seed: u64) -> Scenario {
    Scenario::two_phase_shift(
        "determinism",
        KeyDistribution::LogNormal {
            mu: 0.0,
            sigma: 1.2,
        },
        KeyDistribution::Zipf { theta: 1.2 },
        20_000,
        3_000,
        seed,
    )
    .expect("valid scenario")
}

fn run_rmi(seed: u64) -> RunRecord {
    let s = scenario(seed);
    let data = s.dataset.build().unwrap();
    let mut sut = RmiSut::build("rmi", &data, RetrainPolicy::DeltaFraction(0.05)).unwrap();
    run_kv_scenario(&mut sut, &s, DriverConfig::default()).unwrap()
}

#[test]
fn identical_seeds_identical_runs() {
    let a = run_rmi(7);
    let b = run_rmi(7);
    assert_eq!(a.ops, b.ops);
    assert_eq!(a.exec_end, b.exec_end);
    assert_eq!(a.train, b.train);
    assert_eq!(a.phase_change_times, b.phase_change_times);
    // Metrics derived from identical records are identical.
    let ra = AdaptabilityReport::from_record(&a).unwrap();
    let rb = AdaptabilityReport::from_record(&b).unwrap();
    assert_eq!(ra.area_vs_ideal, rb.area_vs_ideal);
    assert_eq!(ra.curve, rb.curve);
}

#[test]
fn different_seeds_differ() {
    let a = run_rmi(7);
    let b = run_rmi(8);
    assert_ne!(a.ops, b.ops);
}

#[test]
fn adaptive_structures_deterministic_too() {
    // ALEX mutates internal structure during the run; determinism must
    // survive splits and retrains.
    let s = scenario(9);
    let data = s.dataset.build().unwrap();
    let run = || {
        let mut sut = AlexSut::build(&data).unwrap();
        run_kv_scenario(&mut sut, &s, DriverConfig::default()).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.ops, b.ops);
    assert_eq!(a.final_metrics.adaptations, b.final_metrics.adaptations);
}

#[test]
fn concurrent_engine_is_worker_count_invariant() {
    // The engine's contract: lanes determine results, threads never do.
    // Four key-range shards of adaptive (retraining) SUTs must merge to
    // bit-identical records, histograms, and interval counts whether one,
    // two, or four workers executed them — and metric reports derived from
    // the merged record must match in turn.
    use lsbench::sut::sut::SystemUnderTest;
    use lsbench::workload::ops::Operation;
    let s = scenario(13);
    let data = s.dataset.build().unwrap();
    let (router, shards) = shard_dataset(&data, 4).unwrap();
    let run = |threads: usize| {
        let mut suts: Vec<Box<dyn SystemUnderTest<Operation> + Send>> = shards
            .iter()
            .map(|d| {
                Box::new(RmiSut::build("rmi", d, RetrainPolicy::DeltaFraction(0.05)).unwrap())
                    as Box<dyn SystemUnderTest<Operation> + Send>
            })
            .collect();
        let config = EngineConfig {
            threads,
            lanes: 4,
            ..EngineConfig::default()
        };
        run_sharded_kv_scenario(&mut suts, &router, &s, &config).unwrap()
    };
    let one = run(1);
    let two = run(2);
    let four = run(4);
    let base = AdaptabilityReport::from_record(&one.record).unwrap();
    for other in [&two, &four] {
        assert_eq!(one.record.ops, other.record.ops);
        assert_eq!(
            one.record.phase_change_times,
            other.record.phase_change_times
        );
        assert_eq!(one.record.exec_start, other.record.exec_start);
        assert_eq!(one.record.exec_end, other.record.exec_end);
        assert_eq!(one.record.train, other.record.train);
        assert_eq!(one.record.final_metrics, other.record.final_metrics);
        assert_eq!(one.latency, other.latency);
        assert_eq!(one.completions, other.completions);
        let rep = AdaptabilityReport::from_record(&other.record).unwrap();
        assert_eq!(base.area_vs_ideal, rep.area_vs_ideal);
        assert_eq!(base.curve, rep.curve);
    }
}

#[test]
fn wall_clock_mode_never_perturbs_the_work_unit_record() {
    // The guard behind `--clock wall`: host timings are observed *beside*
    // the virtual record, never fed into it. Repeating a wall run, or
    // moving it from one worker to four, must leave the work-unit record
    // bit-identical — only the wall stats block is allowed to vary.
    use lsbench::core::runner::{ExecutionMode, RunOptions, Runner};
    use lsbench::core::scenario::ClockMode;
    use lsbench::core::sut_registry::SutRegistry;
    let s = scenario(17);
    let registry = SutRegistry::default();
    let run = |mode: ExecutionMode, threads: Option<usize>| {
        let factory = registry.factory("rmi").expect("known SUT");
        let opts = RunOptions {
            clock: ClockMode::Wall,
            threads,
            ..RunOptions::with_mode(mode)
        };
        Runner::from_factory(factory)
            .config(opts)
            .run(&s)
            .expect("wall run succeeds")
    };
    let first = run(ExecutionMode::Serial, None);
    let second = run(ExecutionMode::Serial, None);
    assert_eq!(
        first.record, second.record,
        "repeated wall runs must agree bit-for-bit on the work-unit record"
    );
    for outcome in [&first, &second] {
        let wall = outcome.wall.as_ref().expect("wall stats captured");
        assert_eq!(wall.ops, outcome.record.ops.len() as u64);
        assert!(wall.elapsed_seconds > 0.0);
    }

    // Lanes determine results; threads never do. Pin four shards and vary
    // only the executing thread count underneath the wall clock.
    let one = run(ExecutionMode::Sharded { workers: 4 }, Some(1));
    let four = run(ExecutionMode::Sharded { workers: 4 }, Some(4));
    assert_eq!(
        one.record, four.record,
        "thread count must not leak into the record even under clock=wall"
    );
    assert!(one.wall.is_some() && four.wall.is_some());
}

#[test]
fn json_round_trip_preserves_determinism() {
    let a = run_rmi(11);
    let json = serde_json::to_string(&a).unwrap();
    let back: RunRecord = serde_json::from_str(&json).unwrap();
    assert_eq!(back.ops, a.ops);
    assert_eq!(back.work_units_per_second, a.work_units_per_second);
}
