//! End-to-end integration tests: full scenario runs across every SUT, the
//! complete metric pipeline, and report serialization.

use lsbench::core::driver::{run_kv_scenario, run_query_workload, DriverConfig};
use lsbench::core::engine::{run_concurrent_kv_scenario, EngineConfig};
use lsbench::core::holdout::{run_holdout, HoldoutReport};
use lsbench::core::metrics::adaptability::AdaptabilityReport;
use lsbench::core::metrics::cost::CostReport;
use lsbench::core::metrics::phi::{distribution_phis, DataPhiMethod};
use lsbench::core::metrics::sla::{SlaPolicy, SlaReport};
use lsbench::core::metrics::specialization::SpecializationReport;
use lsbench::core::record::RunRecord;
use lsbench::core::report;
use lsbench::core::scenario::Scenario;
use lsbench::query::generator::JoinQueryGenerator;
use lsbench::query::table::{Catalog, Table};
use lsbench::sut::cost::HardwareProfile;
use lsbench::sut::kv::{
    AlexSut, BTreeSut, HashSut, PgmSut, RetrainPolicy, RmiSut, SortedArraySut, SplineSut,
};
use lsbench::sut::query_sut::{
    BanditQuerySut, LearnedCardinalitySut, QueryOp, TraditionalQuerySut,
};
use lsbench::sut::sut::SystemUnderTest;
use lsbench::workload::keygen::KeyDistribution;
use lsbench::workload::ops::{Operation, OperationMix};
use lsbench::workload::phases::{PhasedWorkload, WorkloadPhase};

fn small_scenario() -> Scenario {
    Scenario::two_phase_shift(
        "e2e",
        KeyDistribution::Uniform,
        KeyDistribution::Zipf { theta: 1.1 },
        10_000,
        2_000,
        123,
    )
    .expect("valid scenario")
}

fn all_kv_suts(
    data: &lsbench::workload::dataset::Dataset,
) -> Vec<Box<dyn SystemUnderTest<Operation> + Send>> {
    vec![
        Box::new(BTreeSut::build(data).unwrap()),
        Box::new(SortedArraySut::build(data).unwrap()),
        Box::new(HashSut::build(data).unwrap()),
        Box::new(AlexSut::build(data).unwrap()),
        Box::new(RmiSut::build("rmi", data, RetrainPolicy::DeltaFraction(0.05)).unwrap()),
        Box::new(PgmSut::build("pgm", data, RetrainPolicy::OnPhaseChange).unwrap()),
        Box::new(SplineSut::build("spline", data, RetrainPolicy::Never).unwrap()),
    ]
}

#[test]
fn every_kv_sut_completes_a_scenario() {
    let s = small_scenario();
    let data = s.dataset.build().expect("builds");
    for sut in &mut all_kv_suts(&data) {
        let r = run_kv_scenario(sut.as_mut(), &s, DriverConfig::default()).unwrap();
        assert_eq!(r.completed(), 4_000, "{}", r.sut_name);
        assert!(r.exec_end > r.exec_start, "{}", r.sut_name);
        assert!(r.mean_throughput() > 0.0, "{}", r.sut_name);
        // All ops recorded with monotone time.
        for w in r.ops.windows(2) {
            assert!(w[0].t_end <= w[1].t_end);
        }
    }
}

#[test]
fn every_kv_sut_completes_on_the_concurrent_engine() {
    let s = small_scenario();
    let data = s.dataset.build().expect("builds");
    for sut in &mut all_kv_suts(&data) {
        let report =
            run_concurrent_kv_scenario(sut.as_mut(), &s, &EngineConfig::with_concurrency(4))
                .unwrap();
        let r = &report.record;
        assert_eq!(r.completed(), 4_000, "{}", r.sut_name);
        assert_eq!(report.latency.total(), 4_000, "{}", r.sut_name);
        assert_eq!(report.completions.total(), 4_000, "{}", r.sut_name);
        assert!(r.exec_end > r.exec_start, "{}", r.sut_name);
        for w in r.ops.windows(2) {
            assert!(w[0].t_end <= w[1].t_end);
        }
    }
}

#[test]
fn full_metric_pipeline_from_one_run() {
    let s = small_scenario();
    let data = s.dataset.build().expect("builds");
    let mut rmi = RmiSut::build("rmi", &data, RetrainPolicy::DeltaFraction(0.05)).unwrap();
    let record = run_kv_scenario(&mut rmi, &s, DriverConfig::default()).unwrap();

    // Φ axis.
    let dists: Vec<KeyDistribution> = s
        .workload
        .phases()
        .iter()
        .map(|p| p.distribution.clone())
        .collect();
    let phis =
        distribution_phis(&dists, (0, 10_000_000), DataPhiMethod::KolmogorovSmirnov, 7).unwrap();
    assert_eq!(phis.len(), 2);
    assert!(phis[0] < phis[1]);

    // Fig. 1a.
    let spec = SpecializationReport::from_record(&record, &phis, 100, &[]).unwrap();
    assert_eq!(spec.entries.len(), 2);
    let rendered = report::render_specialization(&spec);
    assert!(rendered.contains("Φ="));

    // Fig. 1b.
    let adapt = AdaptabilityReport::from_record(&record).unwrap();
    assert!(!adapt.curve.is_empty());
    assert!(adapt.area_vs(&adapt).unwrap().abs() < 1e-6);

    // Fig. 1c (threshold calibrated from the same record).
    let threshold = SlaPolicy::FromBaselineP99 { multiplier: 3.0 }
        .resolve(Some(&record))
        .unwrap();
    let sla =
        SlaReport::from_record(&record, threshold, record.exec_duration() / 10.0, 500).unwrap();
    let total: usize = sla.bands.iter().map(|b| b.total()).sum();
    assert_eq!(total, record.completed());

    // Fig. 1d.
    let cost = CostReport::from_record(&record, &[HardwareProfile::cpu(), HardwareProfile::gpu()])
        .unwrap();
    assert_eq!(cost.breakdowns.len(), 2);
    assert!(cost.breakdowns[0].training.dollars >= 0.0);

    // All reports serialize to JSON and the run record round-trips.
    for json in [
        report::to_json(&spec).unwrap(),
        report::to_json(&adapt).unwrap(),
        report::to_json(&sla).unwrap(),
        report::to_json(&cost).unwrap(),
    ] {
        assert!(json.len() > 2);
    }
    let json = report::to_json(&record).unwrap();
    let back: RunRecord = serde_json::from_str(&json).unwrap();
    assert_eq!(back.ops.len(), record.ops.len());
    assert_eq!(back.sut_name, record.sut_name);
}

#[test]
fn holdout_pipeline() {
    let mut s = small_scenario();
    s.holdout = Some(
        PhasedWorkload::single(
            WorkloadPhase::new(
                "unseen",
                KeyDistribution::Hotspot {
                    hot_span: 0.05,
                    hot_fraction: 0.95,
                },
                (0, 10_000_000),
                OperationMix::ycsb_c(),
                1_000,
            ),
            99,
        )
        .unwrap(),
    );
    let data = s.dataset.build().unwrap();
    let mut rmi = RmiSut::build("rmi", &data, RetrainPolicy::OnPhaseChange).unwrap();
    let main = run_kv_scenario(&mut rmi, &s, DriverConfig::default()).unwrap();
    let hold = run_holdout(&mut rmi, &s).unwrap();
    assert_eq!(hold.completed(), 1_000);
    let rep = HoldoutReport::new(&main, &hold).unwrap();
    assert!(rep.generalization_ratio > 0.0);
}

#[test]
fn query_suts_complete_a_workload() {
    let mut cat = Catalog::new();
    cat.add(Table::generate("fact", 5_000, 3, 1));
    cat.add(Table::generate("dim", 200, 2, 2));
    let mut g = JoinQueryGenerator::new(&cat, "fact", vec!["dim".into()], (0, 500), 3).unwrap();
    let ops: Vec<QueryOp> = g
        .take(30)
        .into_iter()
        .map(|query| QueryOp { query })
        .collect();
    let phases = vec![("p0".to_string(), ops)];

    let mut suts: Vec<Box<dyn SystemUnderTest<QueryOp>>> = vec![
        Box::new(TraditionalQuerySut::build(cat.clone()).unwrap()),
        Box::new(LearnedCardinalitySut::build(cat.clone()).unwrap()),
        Box::new(BanditQuerySut::build(cat.clone(), 0.2, 4).unwrap()),
    ];
    for sut in &mut suts {
        let r = run_query_workload(sut.as_mut(), &phases, 1_000_000.0, u64::MAX).unwrap();
        assert_eq!(r.completed(), 30, "{}", r.sut_name);
        assert!(r.failures() == 0, "{}", r.sut_name);
    }
}

#[test]
fn learned_beats_btree_on_reads_loses_on_unsupported() {
    // Cross-SUT sanity: relative ordering of mean throughput on a read-only
    // uniform workload must favor hash > learned > btree in work units.
    let s = Scenario::specialization_sweep(
        "ordering",
        vec![KeyDistribution::Uniform],
        50_000,
        5_000,
        OperationMix::ycsb_c(),
        5,
    )
    .unwrap();
    let data = s.dataset.build().unwrap();
    let mut hash = HashSut::build(&data).unwrap();
    let mut rmi = RmiSut::build("rmi", &data, RetrainPolicy::Never).unwrap();
    let mut btree = BTreeSut::build(&data).unwrap();
    let th = run_kv_scenario(&mut hash, &s, DriverConfig::default())
        .unwrap()
        .mean_throughput();
    let tr = run_kv_scenario(&mut rmi, &s, DriverConfig::default())
        .unwrap()
        .mean_throughput();
    let tb = run_kv_scenario(&mut btree, &s, DriverConfig::default())
        .unwrap()
        .mean_throughput();
    assert!(th > tr, "hash {th} !> rmi {tr}");
    assert!(tr > tb, "rmi {tr} !> btree {tb}");

    // But the hash index fails every scan.
    let scan_scenario = Scenario::specialization_sweep(
        "scans",
        vec![KeyDistribution::Uniform],
        10_000,
        500,
        OperationMix::ycsb_e(),
        6,
    )
    .unwrap();
    let scan_data = scan_scenario.dataset.build().unwrap();
    let mut hash = HashSut::build(&scan_data).unwrap();
    let r = run_kv_scenario(&mut hash, &scan_scenario, DriverConfig::default()).unwrap();
    assert!(
        r.failures() > 400,
        "hash should fail scans: {} failures",
        r.failures()
    );
}
