//! Cross-metric conservation and consistency laws, checked on real runs:
//! whatever the SUT does, the metric pipeline must keep its books balanced.

use lsbench::core::driver::{run_kv_scenario, DriverConfig};
use lsbench::core::metrics::adaptability::AdaptabilityReport;
use lsbench::core::metrics::cost::CostReport;
use lsbench::core::metrics::sla::SlaReport;
use lsbench::core::metrics::specialization::SpecializationReport;
use lsbench::core::record::RunRecord;
use lsbench::core::scenario::Scenario;
use lsbench::sut::cost::{DbaCostModel, HardwareProfile};
use lsbench::sut::kv::{BTreeSut, RetrainPolicy, RmiSut};
use lsbench::workload::keygen::KeyDistribution;
use lsbench::workload::ops::OperationMix;

fn run_pair() -> (RunRecord, RunRecord) {
    let s = Scenario::two_phase_shift(
        "consistency",
        KeyDistribution::Uniform,
        KeyDistribution::Hotspot {
            hot_span: 0.1,
            hot_fraction: 0.9,
        },
        15_000,
        2_500,
        17,
    )
    .unwrap();
    let data = s.dataset.build().unwrap();
    let mut rmi = RmiSut::build("rmi", &data, RetrainPolicy::DeltaFraction(0.05)).unwrap();
    let mut btree = BTreeSut::build(&data).unwrap();
    (
        run_kv_scenario(&mut rmi, &s, DriverConfig::default()).unwrap(),
        run_kv_scenario(&mut btree, &s, DriverConfig::default()).unwrap(),
    )
}

#[test]
fn sla_bands_conserve_completions() {
    let (rmi, _) = run_pair();
    for interval_div in [7.0, 23.0, 50.0] {
        let report =
            SlaReport::from_record(&rmi, 0.0001, rmi.exec_duration() / interval_div, 100).unwrap();
        let banded: usize = report.bands.iter().map(|b| b.total()).sum();
        assert_eq!(banded, rmi.completed(), "interval_div = {interval_div}");
        let colored: usize = report
            .color_bands
            .iter()
            .map(|c| c.green + c.yellow + c.orange + c.red)
            .sum();
        assert_eq!(colored, rmi.completed());
        // Violation fraction consistent with band sums.
        let violated: usize = report.bands.iter().map(|b| b.violated).sum();
        assert!(
            (report.violation_fraction - violated as f64 / rmi.completed() as f64).abs() < 1e-12
        );
    }
}

#[test]
fn specialization_covers_all_phases_with_data() {
    let (rmi, _) = run_pair();
    let spec = SpecializationReport::from_record(&rmi, &[0.0, 0.8], 50, &[1]).unwrap();
    assert_eq!(spec.entries.len(), 2);
    // Sorted by phi.
    assert!(spec.entries[0].phi <= spec.entries[1].phi);
    // Box-plot internal consistency.
    for e in &spec.entries {
        let b = &e.throughput;
        assert!(b.whisker_lo <= b.five.median && b.five.median <= b.whisker_hi);
        assert!(b.count > 0);
    }
    assert!(spec.entries[1].holdout);
}

#[test]
fn adaptability_identities() {
    let (rmi, btree) = run_pair();
    let ra = AdaptabilityReport::from_record(&rmi).unwrap();
    let rb = AdaptabilityReport::from_record(&btree).unwrap();
    // Antisymmetry of the two-system area.
    let ab = ra.area_vs(&rb).unwrap();
    let ba = rb.area_vs(&ra).unwrap();
    assert!((ab + ba).abs() < 1e-6 * (1.0 + ab.abs()));
    // The curve ends at the total completion count.
    assert!((ra.curve.last().unwrap().1 - rmi.completed() as f64).abs() < 1.0);
    // Phase throughputs are positive for phases with completions.
    for &t in &ra.phase_throughput {
        assert!(t > 0.0);
    }
}

#[test]
fn cost_scales_with_hardware_consistently() {
    let (rmi, _) = run_pair();
    let report = CostReport::from_record(
        &rmi,
        &[
            HardwareProfile::cpu(),
            HardwareProfile::gpu(),
            HardwareProfile::tpu(),
        ],
    )
    .unwrap();
    // Same work, faster hardware: seconds strictly decrease.
    let secs: Vec<f64> = report
        .breakdowns
        .iter()
        .map(|b| b.training.seconds)
        .collect();
    assert!(secs[0] > secs[1] && secs[1] > secs[2], "{secs:?}");
    // Dollars = seconds × rate, so ratios must match profile rates.
    let cpu = &report.breakdowns[0];
    assert!(
        (cpu.training.dollars - cpu.training.seconds / 3600.0 * 0.40).abs() < 1e-12,
        "cpu dollars inconsistent"
    );
}

#[test]
fn dba_step_function_sanity() {
    let dba = DbaCostModel::default_model(1_000.0);
    // throughput_at is a non-decreasing step function of spend.
    let mut prev = 0.0;
    for spend in [0.0, 100.0, 400.0, 500.0, 1600.0, 6400.0, 100_000.0] {
        let t = dba.throughput_at(spend);
        assert!(t >= prev);
        prev = t;
    }
    // cost_to_reach inverts throughput_at on the step points.
    for &(cost, tput) in dba.steps() {
        assert_eq!(dba.cost_to_reach(tput), Some(cost));
    }
}

#[test]
fn training_is_first_class_in_records() {
    let (rmi, btree) = run_pair();
    // Lesson 3: the learned system's training is visible and the
    // traditional system's is zero.
    assert!(rmi.train.work > 0);
    assert!(rmi.train.seconds > 0.0);
    assert_eq!(rmi.exec_start, rmi.train.seconds);
    assert_eq!(btree.train.work, 0);
    assert_eq!(btree.exec_start, 0.0);
    // Metrics carry it too.
    assert!(rmi.final_metrics.training_work >= rmi.train.work);
    assert_eq!(btree.final_metrics.training_work, 0);
}

#[test]
fn mix_failures_accounted() {
    // Scan-bearing workload on a hash SUT: failures counted, not dropped.
    let s = Scenario::specialization_sweep(
        "fail-accounting",
        vec![KeyDistribution::Uniform],
        5_000,
        1_000,
        OperationMix::range_heavy(),
        23,
    )
    .unwrap();
    let data = s.dataset.build().unwrap();
    let mut hash = lsbench::sut::kv::HashSut::build(&data).unwrap();
    let r = run_kv_scenario(&mut hash, &s, DriverConfig::default()).unwrap();
    assert_eq!(r.completed(), 1_000);
    assert!(r.failures() > 300);
    assert!(r.failures() < 700);
}
