//! Observability guarantees, end to end.
//!
//! Two properties make the tracing layer trustworthy:
//!
//! 1. **Golden alignment** — the event trace is not a parallel universe:
//!    its phase boundaries and counts line up exactly with the
//!    `RunRecord` the same run produced.
//! 2. **Zero observer effect** — turning tracing on (or varying the
//!    worker-thread count under it) never changes the benchmark results:
//!    `RunRecord`s are bit-identical, and the merged trace itself is
//!    worker-count invariant.

use lsbench::core::driver::{run_kv_scenario, DriverConfig};
use lsbench::core::obs::ObsConfig;
use lsbench::core::record::RunRecord;
use lsbench::core::runner::{BoxedKvSut, ExecutionMode, RunOptions, RunOutcome, Runner};
use lsbench::core::scenario::Scenario;
use lsbench::core::sut_registry::SutRegistry;
use lsbench::core::BenchError;
use lsbench::sut::kv::{RetrainPolicy, RmiSut};
use lsbench::workload::dataset::Dataset;
use lsbench::workload::keygen::KeyDistribution;

fn scenario() -> Scenario {
    Scenario::two_phase_shift(
        "obs-shift",
        KeyDistribution::LogNormal {
            mu: 0.0,
            sigma: 1.2,
        },
        KeyDistribution::Zipf { theta: 1.2 },
        20_000,
        2_500,
        11,
    )
    .expect("valid scenario")
}

fn factory(data: &Dataset) -> Result<BoxedKvSut, BenchError> {
    Ok(Box::new(
        RmiSut::build("rmi", data, RetrainPolicy::DeltaFraction(0.05))
            .map_err(|e| BenchError::Sut(e.to_string()))?,
    ))
}

fn run_with(opts: RunOptions) -> RunOutcome {
    Runner::from_factory(factory)
        .config(opts)
        .run(&scenario())
        .expect("run succeeds")
}

fn assert_records_identical(a: &RunRecord, b: &RunRecord) {
    assert_eq!(a.ops, b.ops, "per-op records must be bit-identical");
    assert_eq!(a.exec_start, b.exec_start);
    assert_eq!(a.exec_end, b.exec_end);
    assert_eq!(a.train, b.train);
    assert_eq!(a.phase_change_times, b.phase_change_times);
}

#[test]
fn golden_trace_aligns_with_run_record_serial() {
    let outcome = run_with(RunOptions {
        obs: ObsConfig::traced(),
        ..RunOptions::default()
    });
    let trace = outcome.trace.expect("tracing was requested");
    let record = &outcome.record;

    // Phase boundaries: the trace reconstructs the record's exactly.
    assert_eq!(trace.phase_boundaries(), record.phase_change_times);
    assert_eq!(
        trace.count_kind("phase_change"),
        record.phase_change_times.len()
    );

    // Training: one start/end pair whose work matches the record.
    assert_eq!(trace.count_kind("train_start"), 1);
    assert_eq!(trace.count_kind("train_end"), 1);
    let train_work = trace
        .events
        .iter()
        .find_map(|e| match e.event {
            lsbench::core::obs::RunEvent::TrainEnd { work } => Some(work),
            _ => None,
        })
        .expect("train_end present");
    assert_eq!(train_work, record.train.work);

    // Run end: exactly one, counting every completed operation.
    assert_eq!(trace.count_kind("run_end"), 1);
    let last = trace.events.last().expect("non-empty trace");
    assert_eq!(
        last.event,
        lsbench::core::obs::RunEvent::RunEnd {
            ops: record.ops.len() as u64
        }
    );

    // Events are in (t, lane, seq) order and stamped on the virtual clock.
    for pair in trace.events.windows(2) {
        assert_ne!(
            pair[0].order(&pair[1]),
            std::cmp::Ordering::Greater,
            "trace must be time-ordered"
        );
    }
    assert!(trace.events.iter().all(|e| e.t <= record.exec_end));
    assert_eq!(trace.dropped, 0);
}

#[test]
fn golden_trace_aligns_with_run_record_engine() {
    let outcome = run_with(RunOptions {
        obs: ObsConfig::traced(),
        ..RunOptions::with_mode(ExecutionMode::Sharded { workers: 4 })
    });
    let trace = outcome.trace.expect("tracing was requested");
    let record = &outcome.record;
    assert_eq!(trace.phase_boundaries(), record.phase_change_times);
    assert_eq!(trace.count_kind("run_end"), 1);
    assert_eq!(trace.count_kind("shard_merge"), 1);
    // Per-lane phase-change events: each of the 4 lanes sees phase 1, and
    // the coordinator anchors phase 0.
    assert_eq!(trace.count_kind("phase_change"), 1 + 4);
}

#[test]
fn tracing_never_changes_results() {
    // Serial: the legacy entry point, the untraced runner, and the traced
    // runner all produce bit-identical records.
    let s = scenario();
    let data = s.dataset.build().unwrap();
    let mut sut = RmiSut::build("rmi", &data, RetrainPolicy::DeltaFraction(0.05)).unwrap();
    let legacy = run_kv_scenario(&mut sut, &s, DriverConfig::default()).unwrap();
    let untraced = run_with(RunOptions::default());
    let traced = run_with(RunOptions {
        obs: ObsConfig::traced().with_sla(1e-4),
        ..RunOptions::default()
    });
    assert_records_identical(&legacy, &untraced.record);
    assert_records_identical(&untraced.record, &traced.record);
}

#[test]
fn worker_count_invariant_under_tracing() {
    // 4 lanes on 1, 2, and 4 worker threads: records AND traces identical,
    // traced or not.
    let base = RunOptions::with_mode(ExecutionMode::Sharded { workers: 4 });
    let reference = run_with(base);
    let mut reference_trace = None;
    for threads in [1usize, 2, 4] {
        let untraced = run_with(RunOptions {
            threads: Some(threads),
            ..base
        });
        let traced = run_with(RunOptions {
            threads: Some(threads),
            obs: ObsConfig::traced(),
            ..base
        });
        assert_records_identical(&reference.record, &untraced.record);
        assert_records_identical(&reference.record, &traced.record);
        assert_eq!(
            untraced.metrics, traced.metrics,
            "tracing must not perturb metrics ({threads} threads)"
        );
        let mut trace = traced.trace.expect("tracing was requested");
        // The shard_merge event records physical provenance (how many
        // threads actually ran) — the one field that legitimately varies
        // with the thread count. Check it, then normalize it away before
        // comparing whole traces.
        for e in &mut trace.events {
            if let lsbench::core::obs::RunEvent::ShardMerge { threads: t, .. } = &mut e.event {
                assert_eq!(*t, threads);
                *t = 0;
            }
        }
        match &reference_trace {
            None => reference_trace = Some(trace),
            Some(reference) => assert_eq!(
                reference, &trace,
                "merged trace must not depend on worker count ({threads} threads)"
            ),
        }
    }
}

#[test]
fn registry_resolves_runner_factories() {
    // The registry, the runner, and a hand-built factory agree.
    let registry = SutRegistry::default();
    let s = scenario();
    let via_registry = Runner::from_factory(registry.factory("rmi").unwrap())
        .run(&s)
        .unwrap();
    let via_closure = run_with(RunOptions::default());
    assert_records_identical(&via_registry.record, &via_closure.record);
    assert!(registry.contains("btree"));
    assert!(!registry.contains("no-such-sut"));
}
