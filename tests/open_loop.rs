//! Acceptance tests for the open-loop capacity engine: the event-heap
//! scheduler must multiplex very large simulated client populations onto a
//! small worker pool **bit-identically** at any worker count — including
//! under an injected chaos plan — and the `ExecutionMode` API must route
//! the open-loop mode end to end through the public `Runner`.

use lsbench::core::faults::resolve_fault_plan;
use lsbench::core::runner::{ExecutionMode, RunOptions, RunOutcome, Runner};
use lsbench::core::scenario::{ArrivalSpec, Scenario};
use lsbench::core::sut_registry::SutRegistry;
use lsbench::workload::arrival::{ArrivalProcess, LoadModulation};
use lsbench::workload::keygen::KeyDistribution;

fn open_loop_scenario() -> Scenario {
    let mut s = Scenario::two_phase_shift(
        "open-loop-acceptance",
        KeyDistribution::LogNormal {
            mu: 0.0,
            sigma: 1.2,
        },
        KeyDistribution::Normal {
            center: 0.9,
            std_frac: 0.03,
        },
        8_000,
        2_500,
        42,
    )
    .expect("valid scenario");
    s.arrival = Some(ArrivalSpec {
        process: ArrivalProcess::Poisson { rate: 50_000.0 },
        modulation: LoadModulation::Constant,
        seed: 9,
    });
    s
}

fn run_open(scenario: &Scenario, sut: &str, clients: usize, workers: usize) -> RunOutcome {
    let registry = SutRegistry::default();
    let factory = registry.factory(sut).expect("known SUT");
    let outcome = Runner::from_factory(factory)
        .config(RunOptions::with_mode(ExecutionMode::OpenLoop {
            clients,
            workers,
        }))
        .run(scenario)
        .expect("open-loop run succeeds");
    outcome
}

/// The tentpole acceptance criterion: 100,000 simulated open-loop clients
/// multiplexed onto 1, 4, and 8 workers produce **bit-identical** run
/// records and engine histograms. Latency is charged from each op's
/// intended arrival on its owning client's virtual clock, so the schedule
/// — and therefore the record — cannot depend on how the clients were
/// packed onto OS threads.
#[test]
fn hundred_thousand_clients_are_bit_identical_across_worker_counts() {
    let scenario = open_loop_scenario();
    let baseline = run_open(&scenario, "btree", 100_000, 1);
    let base_stats = baseline.engine.as_ref().expect("engine stats");
    assert_eq!(base_stats.lanes, 100_000, "one lane per simulated client");
    for workers in [4usize, 8] {
        let other = run_open(&scenario, "btree", 100_000, workers);
        assert_eq!(
            other.record, baseline.record,
            "open-loop record must be bit-identical (workers={workers})"
        );
        let stats = other.engine.as_ref().expect("engine stats");
        assert_eq!(stats.threads, workers);
        assert_eq!(
            stats.latency, base_stats.latency,
            "coordinated-omission-safe histogram (workers={workers})"
        );
    }
}

/// Worker-count invariance survives an injected chaos plan: retries,
/// timeouts, and crash-recovery all happen on per-client virtual clocks,
/// so the fault ledger and every op outcome stay identical whether the
/// clients share one worker or eight.
#[test]
fn open_loop_chaos_run_is_worker_count_invariant() {
    let mut scenario = open_loop_scenario();
    scenario.faults = Some(resolve_fault_plan("chaos-errors").expect("builtin plan"));
    scenario.validate().expect("plan fits scenario");

    let baseline = run_open(&scenario, "btree", 5_000, 1);
    assert!(
        baseline.record.faults.injected > 0,
        "the chaos plan actually fired"
    );
    for workers in [4usize, 8] {
        let other = run_open(&scenario, "btree", 5_000, workers);
        assert_eq!(
            other.record, baseline.record,
            "chaos open-loop record (workers={workers})"
        );
        assert_eq!(other.record.faults, baseline.record.faults);
    }
}

/// `OpenLoop { clients: 1 }` through the public `Runner` is the serial
/// driver in disguise: one client owns every op and its virtual clock is
/// the serial clock, so the records agree field for field.
#[test]
fn single_client_open_loop_matches_serial_via_runner() {
    let scenario = open_loop_scenario();
    let registry = SutRegistry::default();
    let factory = registry.factory("rmi").expect("known SUT");
    let serial = Runner::from_factory(factory)
        .config(RunOptions::with_mode(ExecutionMode::Serial))
        .run(&scenario)
        .expect("serial run");
    let open = run_open(&scenario, "rmi", 1, 4);
    assert_eq!(open.record, serial.record);
}

/// The trace-replay counterpart of the worker-count guard: an imported,
/// timestamped trace replayed open-loop with a 100,000-client population
/// produces bit-identical records on every replay. The replay is a
/// logically serial event simulation — ops execute in trace order against
/// per-client virtual clocks, so there is no worker schedule that could
/// leak into the record at any `--threads` setting.
#[test]
fn imported_trace_open_loop_replay_is_bit_identical() {
    use lsbench::core::driver::{run_kv_trace_open_loop, ReplayConfig};
    use lsbench::core::trace::{import_str, TraceFormat};
    use lsbench::workload::Dataset;

    let text = include_str!("trace_fixtures/s2_10k.csv");
    let imported = import_str(text, TraceFormat::Csv).expect("fixture parses");
    assert!(imported.had_timestamps, "fixture carries arrival times");
    let data = Dataset::from_keys(
        imported
            .trace
            .entries()
            .iter()
            .map(|e| e.op.key())
            .collect(),
    );
    let registry = SutRegistry::default();
    let config = ReplayConfig::default();

    let mut sut = registry.build("btree", &data).expect("btree");
    let baseline = run_kv_trace_open_loop(sut.as_mut(), &imported.trace, &config, 100_000)
        .expect("open-loop replay");
    assert_eq!(baseline.completed(), imported.trace.len());
    for run in 0..2 {
        let mut sut = registry.build("btree", &data).expect("btree");
        let again = run_kv_trace_open_loop(sut.as_mut(), &imported.trace, &config, 100_000)
            .expect("open-loop replay");
        assert_eq!(again, baseline, "replay {run} must be bit-identical");
    }
}
