//! Property tests over the full benchmark pipeline: whatever the scenario
//! parameters, the driver and metrics must keep their invariants.

use lsbench::core::driver::{run_kv_scenario, DriverConfig};
use lsbench::core::metrics::adaptability::AdaptabilityReport;
use lsbench::core::metrics::sla::SlaReport;
use lsbench::core::scenario::Scenario;
use lsbench::sut::kv::{BTreeSut, RetrainPolicy, RmiSut};
use lsbench::workload::keygen::KeyDistribution;
use proptest::prelude::*;

fn arb_distribution() -> impl Strategy<Value = KeyDistribution> {
    prop_oneof![
        Just(KeyDistribution::Uniform),
        (0.5f64..1.8).prop_map(|theta| KeyDistribution::Zipf { theta }),
        (0.05f64..0.95, 0.01f64..0.3)
            .prop_map(|(center, std_frac)| KeyDistribution::Normal { center, std_frac }),
        (0.01f64..0.5, 0.5f64..1.0).prop_map(|(hot_span, hot_fraction)| {
            KeyDistribution::Hotspot {
                hot_span,
                hot_fraction,
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn driver_invariants_hold_for_any_shift(
        first in arb_distribution(),
        second in arb_distribution(),
        ops in 200u64..1500,
        seed in 0u64..1000,
    ) {
        let s = Scenario::two_phase_shift("prop", first, second, 3_000, ops, seed).unwrap();
        let data = s.dataset.build().unwrap();
        let mut sut = RmiSut::build("rmi", &data, RetrainPolicy::DeltaFraction(0.1)).unwrap();
        let r = run_kv_scenario(&mut sut, &s, DriverConfig::default()).unwrap();

        // Completion count and ordering.
        prop_assert_eq!(r.completed() as u64, 2 * ops);
        for w in r.ops.windows(2) {
            prop_assert!(w[0].t_end <= w[1].t_end);
        }
        // All latencies positive and bounded by the whole run.
        let span = r.exec_end - r.exec_start;
        for o in &r.ops {
            prop_assert!(o.latency > 0.0 && o.latency <= span + 1e-9);
            prop_assert!(o.t_end >= r.exec_start && o.t_end <= r.exec_end + 1e-9);
        }
        // Exactly two phases, both populated.
        prop_assert_eq!(r.phase_latencies(0).len() as u64, ops);
        prop_assert_eq!(r.phase_latencies(1).len() as u64, ops);
        // Training is charged before execution.
        prop_assert!(r.exec_start >= r.train.seconds - 1e-12);
    }

    #[test]
    fn sla_bands_conserve_for_any_parameters(
        ops in 200u64..1000,
        seed in 0u64..500,
        interval_div in 3.0f64..80.0,
        threshold_us in 1.0f64..200.0,
    ) {
        let s = Scenario::two_phase_shift(
            "prop-sla",
            KeyDistribution::Uniform,
            KeyDistribution::Zipf { theta: 1.2 },
            2_000,
            ops,
            seed,
        )
        .unwrap();
        let data = s.dataset.build().unwrap();
        let mut sut = BTreeSut::build(&data).unwrap();
        let r = run_kv_scenario(&mut sut, &s, DriverConfig::default()).unwrap();
        let report = SlaReport::from_record(
            &r,
            threshold_us * 1e-6,
            r.exec_duration() / interval_div,
            100,
        )
        .unwrap();
        let banded: usize = report.bands.iter().map(|b| b.total()).sum();
        prop_assert_eq!(banded, r.completed());
        prop_assert!((0.0..=1.0).contains(&report.violation_fraction));
    }

    #[test]
    fn adaptability_curve_well_formed(
        first in arb_distribution(),
        ops in 300u64..1200,
        seed in 0u64..500,
    ) {
        let s = Scenario::two_phase_shift(
            "prop-adapt",
            first,
            KeyDistribution::Uniform,
            2_000,
            ops,
            seed,
        )
        .unwrap();
        let data = s.dataset.build().unwrap();
        let mut sut = BTreeSut::build(&data).unwrap();
        let r = run_kv_scenario(&mut sut, &s, DriverConfig::default()).unwrap();
        let rep = AdaptabilityReport::from_record(&r).unwrap();
        // Monotone curve ending at the completion count.
        for w in rep.curve.windows(2) {
            prop_assert!(w[1].1 >= w[0].1);
        }
        prop_assert!((rep.curve.last().unwrap().1 - r.completed() as f64).abs() < 1.0);
        // Normalized area bounded by 1 in magnitude.
        prop_assert!(rep.normalized_area.abs() <= 1.0);
        // Self-comparison is zero.
        prop_assert!(rep.area_vs(&rep).unwrap().abs() < 1e-9);
    }
}
