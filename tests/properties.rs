//! Property tests over the full benchmark pipeline: whatever the scenario
//! parameters, the driver and metrics must keep their invariants.

use lsbench::core::driver::{run_kv_scenario, DriverConfig};
use lsbench::core::metrics::adaptability::AdaptabilityReport;
use lsbench::core::metrics::phi::{data_phi, kv_workload_phi, DataPhiMethod};
use lsbench::core::metrics::sla::SlaReport;
use lsbench::core::results::compare as results_compare;
use lsbench::core::scenario::Scenario;
use lsbench::sut::kv::{BTreeSut, RetrainPolicy, RmiSut};
use lsbench::workload::keygen::KeyDistribution;
use lsbench::workload::ops::Operation;
use proptest::prelude::*;

fn arb_distribution() -> impl Strategy<Value = KeyDistribution> {
    prop_oneof![
        Just(KeyDistribution::Uniform),
        (0.5f64..1.8).prop_map(|theta| KeyDistribution::Zipf { theta }),
        (0.05f64..0.95, 0.01f64..0.3)
            .prop_map(|(center, std_frac)| KeyDistribution::Normal { center, std_frac }),
        (0.01f64..0.5, 0.5f64..1.0).prop_map(|(hot_span, hot_fraction)| {
            KeyDistribution::Hotspot {
                hot_span,
                hot_fraction,
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn driver_invariants_hold_for_any_shift(
        first in arb_distribution(),
        second in arb_distribution(),
        ops in 200u64..1500,
        seed in 0u64..1000,
    ) {
        let s = Scenario::two_phase_shift("prop", first, second, 3_000, ops, seed).unwrap();
        let data = s.dataset.build().unwrap();
        let mut sut = RmiSut::build("rmi", &data, RetrainPolicy::DeltaFraction(0.1)).unwrap();
        let r = run_kv_scenario(&mut sut, &s, DriverConfig::default()).unwrap();

        // Completion count and ordering.
        prop_assert_eq!(r.completed() as u64, 2 * ops);
        for w in r.ops.windows(2) {
            prop_assert!(w[0].t_end <= w[1].t_end);
        }
        // All latencies positive and bounded by the whole run.
        let span = r.exec_end - r.exec_start;
        for o in &r.ops {
            prop_assert!(o.latency > 0.0 && o.latency <= span + 1e-9);
            prop_assert!(o.t_end >= r.exec_start && o.t_end <= r.exec_end + 1e-9);
        }
        // Exactly two phases, both populated.
        prop_assert_eq!(r.phase_latencies(0).len() as u64, ops);
        prop_assert_eq!(r.phase_latencies(1).len() as u64, ops);
        // Training is charged before execution.
        prop_assert!(r.exec_start >= r.train.seconds - 1e-12);
    }

    #[test]
    fn sla_bands_conserve_for_any_parameters(
        ops in 200u64..1000,
        seed in 0u64..500,
        interval_div in 3.0f64..80.0,
        threshold_us in 1.0f64..200.0,
    ) {
        let s = Scenario::two_phase_shift(
            "prop-sla",
            KeyDistribution::Uniform,
            KeyDistribution::Zipf { theta: 1.2 },
            2_000,
            ops,
            seed,
        )
        .unwrap();
        let data = s.dataset.build().unwrap();
        let mut sut = BTreeSut::build(&data).unwrap();
        let r = run_kv_scenario(&mut sut, &s, DriverConfig::default()).unwrap();
        let report = SlaReport::from_record(
            &r,
            threshold_us * 1e-6,
            r.exec_duration() / interval_div,
            100,
        )
        .unwrap();
        let banded: usize = report.bands.iter().map(|b| b.total()).sum();
        prop_assert_eq!(banded, r.completed());
        prop_assert!((0.0..=1.0).contains(&report.violation_fraction));
    }

    #[test]
    fn adaptability_curve_well_formed(
        first in arb_distribution(),
        ops in 300u64..1200,
        seed in 0u64..500,
    ) {
        let s = Scenario::two_phase_shift(
            "prop-adapt",
            first,
            KeyDistribution::Uniform,
            2_000,
            ops,
            seed,
        )
        .unwrap();
        let data = s.dataset.build().unwrap();
        let mut sut = BTreeSut::build(&data).unwrap();
        let r = run_kv_scenario(&mut sut, &s, DriverConfig::default()).unwrap();
        let rep = AdaptabilityReport::from_record(&r).unwrap();
        // Monotone curve ending at the completion count.
        for w in rep.curve.windows(2) {
            prop_assert!(w[1].1 >= w[0].1);
        }
        prop_assert!((rep.curve.last().unwrap().1 - r.completed() as f64).abs() < 1.0);
        // Normalized area bounded by 1 in magnitude.
        prop_assert!(rep.normalized_area.abs() <= 1.0);
        // Self-comparison is zero.
        prop_assert!(rep.area_vs(&rep).unwrap().abs() < 1e-9);
    }

    /// Adaptability comparison is a signed difference: identical curves
    /// give exactly zero, and swapping the operands flips the sign.
    #[test]
    fn adaptability_area_is_zero_at_identity_and_antisymmetric(
        first in arb_distribution(),
        ops in 300u64..1000,
        seed in 0u64..500,
    ) {
        let s = Scenario::two_phase_shift(
            "prop-area",
            first,
            KeyDistribution::Zipf { theta: 1.2 },
            2_000,
            ops,
            seed,
        )
        .unwrap();
        let data = s.dataset.build().unwrap();
        let mut btree = BTreeSut::build(&data).unwrap();
        let mut rmi = RmiSut::build("rmi", &data, RetrainPolicy::DeltaFraction(0.1)).unwrap();
        let ra = AdaptabilityReport::from_record(
            &run_kv_scenario(&mut btree, &s, DriverConfig::default()).unwrap(),
        )
        .unwrap();
        let rb = AdaptabilityReport::from_record(
            &run_kv_scenario(&mut rmi, &s, DriverConfig::default()).unwrap(),
        )
        .unwrap();
        // Identity: a curve compared with a bit-identical clone is 0.
        prop_assert_eq!(ra.area_vs(&ra.clone()).unwrap(), 0.0);
        // Antisymmetry: area(a, b) = -area(b, a).
        let ab = ra.area_vs(&rb).unwrap();
        let ba = rb.area_vs(&ra).unwrap();
        prop_assert!(
            (ab + ba).abs() < 1e-9,
            "area_vs must be sign-symmetric: {} vs {}",
            ab,
            ba
        );
    }

    /// The head-to-head comparison at identity: comparing any record with
    /// itself yields *exactly* zero everywhere — the area difference is
    /// the literal f64 0.0, every scalar and box-stat delta is zero, every
    /// fault delta is zero, and the cost ratio is exactly 1.
    #[test]
    fn compare_with_self_is_all_zero(
        first in arb_distribution(),
        ops in 300u64..1000,
        seed in 0u64..500,
    ) {
        let s = Scenario::two_phase_shift(
            "prop-cmp-id",
            first,
            KeyDistribution::Zipf { theta: 1.2 },
            2_000,
            ops,
            seed,
        )
        .unwrap();
        let data = s.dataset.build().unwrap();
        let mut sut = RmiSut::build("rmi", &data, RetrainPolicy::DeltaFraction(0.1)).unwrap();
        let r = run_kv_scenario(&mut sut, &s, DriverConfig::default()).unwrap();
        let cmp = results_compare(&r, &r).unwrap();
        prop_assert_eq!(cmp.area_difference, 0.0);
        prop_assert_eq!(cmp.throughput.delta, 0.0);
        prop_assert_eq!(cmp.p50_latency.delta, 0.0);
        prop_assert_eq!(cmp.p99_latency.delta, 0.0);
        prop_assert_eq!(cmp.sla.violation_fraction.delta, 0.0);
        prop_assert_eq!(cmp.sla.worst_adjustment.delta, 0.0);
        prop_assert!(cmp.phases.iter().all(|p| p.delta.is_zero()));
        prop_assert!(cmp.faults.is_zero());
        if let Some(ratio) = cmp.cost.ratio {
            prop_assert_eq!(ratio, 1.0);
        }
    }

    /// Swapping the comparison operands negates every *signed* delta
    /// exactly (bitwise, not within epsilon). The SLA section and the
    /// cost ratio are the documented exceptions: the SLA threshold is
    /// calibrated from whichever record is the baseline, and cost is a
    /// ratio, so neither is antisymmetric by construction.
    #[test]
    fn compare_signed_deltas_negate_under_swap(
        first in arb_distribution(),
        ops in 300u64..1000,
        seed in 0u64..500,
    ) {
        let s = Scenario::two_phase_shift(
            "prop-cmp-anti",
            first,
            KeyDistribution::Zipf { theta: 1.2 },
            2_000,
            ops,
            seed,
        )
        .unwrap();
        let data = s.dataset.build().unwrap();
        let mut btree = BTreeSut::build(&data).unwrap();
        let mut rmi = RmiSut::build("rmi", &data, RetrainPolicy::DeltaFraction(0.1)).unwrap();
        let ra = run_kv_scenario(&mut btree, &s, DriverConfig::default()).unwrap();
        let rb = run_kv_scenario(&mut rmi, &s, DriverConfig::default()).unwrap();
        let ab = results_compare(&ra, &rb).unwrap();
        let ba = results_compare(&rb, &ra).unwrap();
        prop_assert_eq!(ab.area_difference, -ba.area_difference);
        prop_assert_eq!(ab.throughput.delta, -ba.throughput.delta);
        prop_assert_eq!(ab.p50_latency.delta, -ba.p50_latency.delta);
        prop_assert_eq!(ab.p99_latency.delta, -ba.p99_latency.delta);
        prop_assert_eq!(ab.phases.len(), ba.phases.len());
        for (x, y) in ab.phases.iter().zip(&ba.phases) {
            prop_assert_eq!(&x.phase, &y.phase);
            prop_assert_eq!(x.delta.median, -y.delta.median);
            prop_assert_eq!(x.delta.q1, -y.delta.q1);
            prop_assert_eq!(x.delta.q3, -y.delta.q3);
            prop_assert_eq!(x.delta.whisker_lo, -y.delta.whisker_lo);
            prop_assert_eq!(x.delta.whisker_hi, -y.delta.whisker_hi);
        }
        prop_assert_eq!(ab.faults.injected, -ba.faults.injected);
        prop_assert_eq!(ab.faults.retries, -ba.faults.retries);
        prop_assert_eq!(ab.faults.failed_ops, -ba.faults.failed_ops);
    }

    /// The branchless last-mile search behind every learned index's probe
    /// is pinned to the standard library, element by element: on arbitrary
    /// sorted slices (duplicates included) `lower_bound`/`upper_bound`
    /// equal `slice::partition_point`, and `binary_search` matches
    /// `slice::binary_search` on `Err` exactly and on `Ok` up to which
    /// duplicate is reported (ours is always the *first* match).
    #[test]
    fn branchless_search_matches_std_on_arbitrary_slices(
        mut keys in proptest::collection::vec(0u64..2_000, 0..400),
        probes in proptest::collection::vec(0u64..2_100, 1..60),
    ) {
        use lsbench::index::search::{binary_search, lower_bound, partition_point_by, upper_bound};
        keys.sort_unstable();
        for &key in &probes {
            let lo = lower_bound(&keys, key);
            let hi = upper_bound(&keys, key);
            prop_assert_eq!(lo, keys.partition_point(|&k| k < key), "lower_bound({})", key);
            prop_assert_eq!(hi, keys.partition_point(|&k| k <= key), "upper_bound({})", key);
            prop_assert_eq!(
                partition_point_by(&keys, |&k| k < key),
                lo,
                "partition_point_by must agree with lower_bound at {}",
                key
            );
            match (binary_search(&keys, key), keys.binary_search(&key)) {
                (Ok(a), Ok(_)) => {
                    // First-match contract: keys[a] == key and nothing
                    // equal precedes it. (std may return any duplicate.)
                    prop_assert_eq!(keys[a], key);
                    prop_assert_eq!(a, lo, "Ok index must be the first match");
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b, "Err insertion point for {}", key),
                (a, b) => return Err(TestCaseError::fail(
                    format!("Ok/Err disagreement for {key}: {a:?} vs {b:?}"),
                )),
            }
        }
        // The lockstep batch resolves every lane exactly like the scalar
        // search over the same window — including empty, full, and
        // partial windows.
        use lsbench::index::search::{lower_bound_group, GROUP};
        for chunk in probes.chunks(GROUP) {
            let windows: Vec<(usize, usize)> = chunk
                .iter()
                .enumerate()
                .map(|(i, _)| match i % 3 {
                    0 => (0, keys.len()),
                    1 => {
                        let mid = keys.len() / 2;
                        (mid.min(keys.len()), keys.len())
                    }
                    _ => (0, 0),
                })
                .collect();
            let mut got = vec![0usize; chunk.len()];
            lower_bound_group(&keys, chunk, &windows, &mut got);
            for (i, (&key, &(lo, hi))) in chunk.iter().zip(&windows).enumerate() {
                let want = lo + keys[lo..hi].partition_point(|&k| k < key);
                prop_assert_eq!(
                    got[i], want,
                    "lower_bound_group lane {} for key {} over [{}, {})",
                    i, key, lo, hi
                );
            }
        }
    }

    /// Φ stays a distance: in [0, 1] for arbitrary same-range samples,
    /// whatever the method.
    #[test]
    fn phi_is_bounded_for_arbitrary_samples(
        a in proptest::collection::vec(0.0f64..1.0, 50..300),
        b in proptest::collection::vec(0.0f64..1.0, 50..300),
    ) {
        for method in [
            DataPhiMethod::KolmogorovSmirnov,
            DataPhiMethod::MaximumMeanDiscrepancy,
        ] {
            let phi = data_phi(&a, &b, method).unwrap();
            prop_assert!((0.0..=1.0).contains(&phi), "{method:?}: {phi}");
        }
    }
}

// ---------------------------------------------------------------------------
// Φ extremes: 0 at identity, 1 (or saturating) at disjoint support —
// the anchors that make the Fig. 1a X-axis meaningful.
// ---------------------------------------------------------------------------

#[test]
fn phi_is_zero_at_identity_and_one_at_disjoint_support() {
    let near: Vec<f64> = (0..500).map(|i| i as f64 / 500.0).collect();
    let far: Vec<f64> = (0..500).map(|i| 1000.0 + i as f64 / 500.0).collect();

    // Identity: a sample compared with itself.
    assert_eq!(
        data_phi(&near, &near, DataPhiMethod::KolmogorovSmirnov).unwrap(),
        0.0
    );
    let mmd_self = data_phi(&near, &near, DataPhiMethod::MaximumMeanDiscrepancy).unwrap();
    assert!(mmd_self < 1e-6, "MMD at identity: {mmd_self}");

    // Disjoint support: KS is exactly 1; MMD approaches its structural
    // maximum (the median-bandwidth RBF kernel keeps within-sample
    // similarity below 1, so the distance tops out near √(2·(1−k̄)) ≈ 0.89
    // rather than the clamp).
    assert_eq!(
        data_phi(&near, &far, DataPhiMethod::KolmogorovSmirnov).unwrap(),
        1.0
    );
    let mmd_far = data_phi(&near, &far, DataPhiMethod::MaximumMeanDiscrepancy).unwrap();
    assert!(mmd_far > 0.85, "MMD at disjoint support: {mmd_far}");
    assert!(
        mmd_far > 100.0 * mmd_self,
        "disjoint MMD must dwarf identity MMD: {mmd_far} vs {mmd_self}"
    );
}

#[test]
fn kv_workload_phi_hits_both_extremes() {
    // Jaccard leg: identical workloads are at distance 0...
    let reads: Vec<Operation> = (0..200).map(|k| Operation::Read { key: k }).collect();
    assert_eq!(kv_workload_phi(&reads, &reads).unwrap(), 0.0);

    // ...and workloads sharing no operation kind and no key range are at
    // distance 1 (mix Jaccard 0 and KS statistic 1).
    let writes: Vec<Operation> = (0..200)
        .map(|k| Operation::Insert {
            key: 1_000_000 + k,
            value: k,
        })
        .collect();
    assert_eq!(kv_workload_phi(&reads, &writes).unwrap(), 1.0);
}
