//! Rank-agreement acceptance layer for `--clock wall` (ISSUE 9).
//!
//! The work-unit cost model is only trustworthy if it *orders* systems the
//! way the host clock does. This test runs the same read-only scenario
//! across SUTs with very different point-lookup costs in both clock modes
//! and checks two things:
//!
//!   1. the work-unit record is bit-identical between `clock = sim` and
//!      `clock = wall` (the wall recorder observes, never perturbs), and
//!   2. the wall-clock throughput ranking agrees with the work-unit
//!      ranking at Kendall's tau >= 1/3 (at most one discordant pair of
//!      three), using best-of-N wall repeats to shrug off scheduler noise.

use lsbench::core::record::RunRecord;
use lsbench::core::runner::{RunOptions, Runner};
use lsbench::core::scenario::{ClockMode, Scenario};
use lsbench::core::sut_registry::SutRegistry;
use lsbench::workload::keygen::KeyDistribution;
use lsbench::workload::ops::OperationMix;

/// Read-only uniform point lookups: the workload where the gap between a
/// hash table, a learned index, and a B-tree is widest and most stable.
fn scenario() -> Scenario {
    Scenario::specialization_sweep(
        "rank-agreement",
        vec![KeyDistribution::Uniform],
        100_000,
        20_000,
        OperationMix::ycsb_c(),
        0xA5EE,
    )
    .expect("valid scenario")
}

fn run(sut: &str, scenario: &Scenario, clock: ClockMode) -> (RunRecord, Option<f64>) {
    let registry = SutRegistry::default();
    let factory = registry.factory(sut).expect("known SUT");
    let outcome = Runner::from_factory(factory)
        .config(RunOptions {
            clock,
            ..RunOptions::default()
        })
        .run(scenario)
        .expect("run succeeds");
    let wall = outcome.wall.map(|w| w.throughput);
    (outcome.record, wall)
}

/// Kendall's tau over two parallel score slices: concordant minus
/// discordant pairs, normalized by the pair count. No ties expected.
fn kendall_tau(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let sa = (a[i] - a[j]).signum();
            let sb = (b[i] - b[j]).signum();
            if sa * sb > 0.0 {
                concordant += 1;
            } else if sa * sb < 0.0 {
                discordant += 1;
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    (concordant - discordant) as f64 / pairs
}

#[test]
fn wall_clock_ranking_agrees_with_work_unit_ranking() {
    const SUTS: &[&str] = &["hash", "rmi", "btree"];
    const WALL_REPEATS: usize = 3;
    let s = scenario();

    let mut work_tput = Vec::new();
    let mut wall_tput = Vec::new();
    for sut in SUTS {
        let (sim_record, sim_wall) = run(sut, &s, ClockMode::Sim);
        assert!(sim_wall.is_none(), "{sut}: sim mode must not capture wall");

        // Best-of-N wall repeats; every repeat must reproduce the sim
        // record bit-for-bit — the tentpole's core invariant.
        let mut best = 0.0f64;
        for _ in 0..WALL_REPEATS {
            let (wall_record, wall) = run(sut, &s, ClockMode::Wall);
            assert_eq!(
                wall_record, sim_record,
                "{sut}: clock=wall perturbed the work-unit record"
            );
            best = best.max(wall.expect("wall mode captures wall stats"));
        }
        assert!(best > 0.0, "{sut}: wall throughput must be positive");

        let virtual_secs = sim_record.exec_end - sim_record.exec_start;
        assert!(virtual_secs > 0.0);
        work_tput.push(sim_record.ops.len() as f64 / virtual_secs);
        wall_tput.push(best);
    }

    let tau = kendall_tau(&work_tput, &wall_tput);
    assert!(
        tau >= 1.0 / 3.0,
        "work-unit and wall-clock rankings disagree: tau = {tau} \
         (work-unit ops/s: {work_tput:?}, wall ops/s: {wall_tput:?})"
    );
}

/// The tau helper itself behaves: identical orderings score 1, reversed
/// orderings score -1, one swapped neighbor pair of three scores 1/3.
#[test]
fn kendall_tau_helper_is_sane() {
    assert_eq!(kendall_tau(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]), 1.0);
    assert_eq!(kendall_tau(&[1.0, 2.0, 3.0], &[30.0, 20.0, 10.0]), -1.0);
    let third = kendall_tau(&[1.0, 2.0, 3.0], &[2.0, 1.0, 3.0]);
    assert!((third - 1.0 / 3.0).abs() < 1e-12);
}
