//! The remote-vs-local conformance oracle.
//!
//! The in-process virtual-clock mode is the ground truth; a remote run of
//! the same scenario through `WireServer` + `RemoteSut` must produce a
//! **bit-identical** `RunRecord` — every op's timestamp, latency, phase,
//! and success flag, the training info, and the final SUT metrics — at 1
//! and 4 workers, with and without an injected fault plan. A separate
//! test pins the unified timeout ledger: a *real* socket deadline expiring
//! on a wall-clock-slow server increments the same `FaultStats` fields and
//! emits the same observability event kinds as a chaos-injected timeout.

use lsbench::core::faults::{FaultPlan, FaultSpec, RetryPolicy};
use lsbench::core::obs::ObsConfig;
use lsbench::core::runner::{BoxedKvSut, ExecutionMode, RunOptions, RunOutcome, Runner};
use lsbench::core::scenario::Scenario;
use lsbench::core::spec::render_scenario;
use lsbench::core::sut_registry::SutRegistry;
use lsbench::core::wire::{RemoteOptions, RemoteSut, ServerHandle, WireServer};
use lsbench::sut::sut::{ExecOutcome, SutMetrics, SystemUnderTest};
use lsbench::workload::keygen::KeyDistribution;
use lsbench::workload::ops::Operation;
use std::time::Duration;

fn shift_scenario() -> Scenario {
    Scenario::two_phase_shift(
        "remote-conformance",
        KeyDistribution::LogNormal {
            mu: 0.0,
            sigma: 1.2,
        },
        KeyDistribution::Normal {
            center: 0.9,
            std_frac: 0.03,
        },
        5_000,
        1_000,
        42,
    )
    .expect("valid scenario")
}

fn spawn_server(sut: &str) -> ServerHandle {
    WireServer::bind("127.0.0.1:0", SutRegistry::default(), sut)
        .expect("binds")
        .spawn()
        .expect("spawns")
}

/// The historic `--threads N` routing: 1 worker is the serial driver,
/// more run the shared-SUT engine lanes.
fn threads_mode(threads: usize) -> ExecutionMode {
    if threads <= 1 {
        ExecutionMode::Serial
    } else {
        ExecutionMode::Sharded { workers: threads }
    }
}

fn run_local(scenario: &Scenario, sut: &str, threads: usize) -> RunOutcome {
    let data = scenario.dataset.build().expect("dataset builds");
    let mut local = SutRegistry::default().build(sut, &data).expect("builds");
    let outcome = Runner::new(local.as_mut())
        .config(RunOptions::with_mode(threads_mode(threads)))
        .run(scenario)
        .expect("local run");
    outcome
}

fn run_remote(
    scenario: &Scenario,
    server: &ServerHandle,
    threads: usize,
    opts: RemoteOptions,
) -> RunOutcome {
    let mut remote = RemoteSut::connect(&server.addr().to_string(), opts).expect("connects");
    remote
        .load(&render_scenario(scenario))
        .expect("remote load");
    let outcome = Runner::new(&mut remote)
        .config(RunOptions::with_mode(threads_mode(threads)))
        .run(scenario)
        .expect("remote run");
    outcome
}

/// The acceptance criterion: at 1 and 4 workers, the complete record —
/// not a summary — is equal field-for-field across the process boundary.
#[test]
fn remote_record_is_identical_to_local_at_1_and_4_workers() {
    let scenario = shift_scenario();
    let server = spawn_server("btree");
    for threads in [1usize, 4] {
        let local = run_local(&scenario, "btree", threads);
        let remote = run_remote(&scenario, &server, threads, RemoteOptions::default());
        assert_eq!(
            remote.record, local.record,
            "remote and local records must be bit-identical (threads={threads})"
        );
    }
    server.shutdown();
}

/// Conformance is independent of the client pool's batching geometry:
/// tiny chunks with deep pipelining over several connections produce the
/// same record as the defaults.
#[test]
fn record_is_invariant_under_client_pool_geometry() {
    let scenario = shift_scenario();
    let server = spawn_server("rmi");
    let local = run_local(&scenario, "rmi", 1);
    for (connections, batch, pipeline) in [(1, 3, 1), (3, 7, 4), (2, 64, 2)] {
        let opts = RemoteOptions {
            connections,
            batch,
            pipeline,
            ..RemoteOptions::default()
        };
        let remote = run_remote(&scenario, &server, 1, opts);
        assert_eq!(
            remote.record, local.record,
            "geometry ({connections} conns, batch {batch}, pipeline {pipeline})"
        );
    }
    server.shutdown();
}

/// Injected chaos composes with the remote transport: the driver-side
/// fault layer wraps the remote SUT exactly like a local one, so a
/// chaos-errors run conforms too (including the fault ledger).
#[test]
fn faulted_remote_run_conforms_to_faulted_local_run() {
    let mut scenario = shift_scenario();
    let plan = lsbench::core::faults::resolve_fault_plan("chaos-errors").expect("builtin plan");
    scenario.faults = Some(plan);
    scenario.validate().expect("plan fits scenario");

    let server = spawn_server("btree");
    let local = run_local(&scenario, "btree", 1);
    let remote = run_remote(&scenario, &server, 1, RemoteOptions::default());
    assert_eq!(remote.record, local.record);
    assert!(
        local.record.faults.injected > 0,
        "the chaos plan actually fired"
    );
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Unified timeout ledger: a real socket deadline and an injected timeout
// land in the same FaultStats fields and obs event kinds.
// ---------------------------------------------------------------------------

/// Wraps a registered SUT and wall-sleeps on chosen execute-call ordinals
/// (1-based, counted server-side) — long enough to blow the client's
/// socket deadline. With chunk size 8 and at-least-once resend, sleeping
/// at calls 3 and 11 times out both the first dispatch of the first chunk
/// and its retry, while later chunks stay under their deadlines once the
/// abandoned work drains.
struct SleepySut {
    inner: BoxedKvSut,
    calls: u64,
    sleep_at: Vec<u64>,
    sleep: Duration,
}

impl SystemUnderTest<Operation> for SleepySut {
    fn name(&self) -> String {
        "sleepy".to_string()
    }
    fn train(&mut self, budget: u64) -> u64 {
        self.inner.train(budget)
    }
    fn execute(&mut self, op: &Operation) -> lsbench::sut::Result<ExecOutcome> {
        self.calls += 1;
        if self.sleep_at.contains(&self.calls) {
            std::thread::sleep(self.sleep);
        }
        self.inner.execute(op)
    }
    fn on_phase_change(&mut self, new_phase: usize) -> u64 {
        self.inner.on_phase_change(new_phase)
    }
    fn maintenance(&mut self) -> u64 {
        self.inner.maintenance()
    }
    fn crash(&mut self) -> u64 {
        self.inner.crash()
    }
    fn metrics(&self) -> SutMetrics {
        self.inner.metrics()
    }
}

#[test]
fn socket_deadline_and_injected_timeout_share_one_ledger() {
    let scenario = shift_scenario();

    // Remote side: a server whose SUT wall-sleeps 800ms on execute calls
    // 3 and 11. The client runs with a 600ms socket deadline, chunk size
    // 8, and one retry. Timeline: chunk 1 (server calls 1–8) replies at
    // ~0.8s, past the 0.6s deadline → timeout + resend; the resend (calls
    // 9–16, behind the abandoned work's mutex hold) replies at ~1.6s,
    // past its 1.2s deadline → timeout + give up (chunk poisoned). The
    // run is capped at that one chunk, so: exactly timeouts=2, retries=1.
    let mut registry = SutRegistry::default();
    registry.register("sleepy", "btree that naps mid-run", |data| {
        let inner = SutRegistry::default().build("btree", data)?;
        Ok(Box::new(SleepySut {
            inner,
            calls: 0,
            sleep_at: vec![3, 11],
            sleep: Duration::from_millis(800),
        }))
    });
    let server = WireServer::bind("127.0.0.1:0", registry, "sleepy")
        .expect("binds")
        .spawn()
        .expect("spawns");
    let opts = RemoteOptions {
        connections: 1,
        batch: 8,
        pipeline: 1,
        retry: RetryPolicy {
            timeout: Some(0.6),
            max_retries: 1,
            ..RetryPolicy::default()
        },
    };
    let mut remote = RemoteSut::connect(&server.addr().to_string(), opts).expect("connects");
    remote
        .load(&render_scenario(&scenario))
        .expect("remote load");
    // Cap the run at exactly one chunk: abandoned server-side work from
    // the poisoned chunk cannot then cascade deadline expiries into later
    // chunks, so the ledger is deterministic regardless of scheduling.
    let remote_outcome = Runner::new(&mut remote)
        .config(RunOptions {
            obs: ObsConfig::traced(),
            max_ops: 8,
            ..RunOptions::default()
        })
        .run(&scenario)
        .expect("remote run");
    // Disconnect before shutdown: the server joins its connection
    // threads, which are parked reading from live client connections.
    drop(remote);
    server.shutdown();

    // Local side: the same logical op (global index 2) hit by an injected
    // stall that exceeds the (virtual) timeout on every attempt — the
    // PR-4 semantics give exactly timeouts=2, retries=1 for one retry.
    let mut faulted = shift_scenario();
    faulted.faults = Some(FaultPlan {
        seed: 7,
        policy: RetryPolicy {
            timeout: Some(0.08),
            max_retries: 1,
            ..RetryPolicy::default()
        },
        faults: vec![FaultSpec::Stall {
            phase: 0,
            from_op: 2,
            ops: 1,
            duration: 10.0,
        }],
    });
    faulted.validate().expect("plan fits");
    let data = faulted.dataset.build().expect("dataset");
    let mut local = SutRegistry::default()
        .build("btree", &data)
        .expect("builds");
    let local_outcome = Runner::new(local.as_mut())
        .config(RunOptions {
            obs: ObsConfig::traced(),
            max_ops: 8,
            ..RunOptions::default()
        })
        .run(&faulted)
        .expect("local run");

    let (rf, lf) = (&remote_outcome.record.faults, &local_outcome.record.faults);
    // Field-for-field: the socket deadline lands in the *same* counters
    // an injected timeout does.
    assert_eq!(rf.timeouts, 2, "both dispatch attempts hit the deadline");
    assert_eq!(rf.retries, 1, "one transport-level resend");
    assert_eq!(lf.timeouts, rf.timeouts, "timeouts field parity");
    assert_eq!(lf.retries, rf.retries, "retries field parity");
    assert_eq!(lf.crashes, rf.crashes);
    // The injected path additionally counts the stall it injected; the
    // transport path injected nothing.
    assert_eq!(lf.injected, 1);
    assert_eq!(rf.injected, 0);

    // Same observability vocabulary: both runs narrate the failure with
    // identical event kinds and counts.
    let rt = remote_outcome.trace.as_ref().expect("remote trace");
    let lt = local_outcome.trace.as_ref().expect("local trace");
    assert_eq!(rt.count_kind("query_timed_out"), 2);
    assert_eq!(
        rt.count_kind("query_timed_out"),
        lt.count_kind("query_timed_out")
    );
    assert_eq!(rt.count_kind("query_retried"), 1);
    assert_eq!(
        rt.count_kind("query_retried"),
        lt.count_kind("query_retried")
    );

    // The poisoned chunk surfaces as failed ops in the record — the run
    // completes rather than wedging on a slow server.
    assert!(remote_outcome.record.failures() >= 1);
    assert_eq!(
        remote_outcome.record.ops.len(),
        local_outcome.record.ops.len(),
        "every logical op is still accounted exactly once"
    );
}
