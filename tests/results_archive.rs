//! Integration tests for the results archive and head-to-head comparison
//! subsystem: the save→load→compare bit-identity acceptance criterion,
//! strict store semantics, the byte-exact golden artifact fixture, and the
//! versioned suite envelope.

use lsbench::core::faults::FaultStats;
use lsbench::core::record::{OpRecord, RunRecord};
use lsbench::core::results::{
    compare, ComparisonReport, ResultStore, RunArtifact, RunManifest, StoreError, SuiteArtifact,
    Transport, SCHEMA_VERSION,
};
use lsbench::core::runner::{ExecutionMode, RunOptions, Runner, WallStats};
use lsbench::core::scenario::{ClockMode, Scenario};
use lsbench::core::suite::{s2_abrupt_shift, SuiteConfig, SuiteResult};
use lsbench::core::sut_registry::SutRegistry;
use lsbench::sut::sut::SutMetrics;
use std::path::PathBuf;

fn temp_store(tag: &str) -> (ResultStore, PathBuf) {
    let dir = std::env::temp_dir().join(format!("lsbench-results-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    (ResultStore::open(&dir).expect("store opens"), dir)
}

fn small_shift_scenario() -> Scenario {
    s2_abrupt_shift(&SuiteConfig {
        dataset_size: 8_000,
        ops_per_phase: 1_500,
        ..SuiteConfig::default()
    })
    .expect("valid scenario")
}

fn run_and_record(scenario: &Scenario, sut: &str, threads: usize) -> RunRecord {
    let registry = SutRegistry::default();
    let factory = registry.factory(sut).expect("known SUT");
    let outcome = Runner::from_factory(factory)
        .config(RunOptions::with_mode(if threads > 1 {
            ExecutionMode::Sharded { workers: threads }
        } else {
            ExecutionMode::Serial
        }))
        .run(scenario)
        .expect("run succeeds");
    outcome.record
}

/// The acceptance criterion: comparing two *loaded* artifacts reproduces
/// the in-process comparison bit-identically — `save → load → compare`
/// equals `run → compare`, including the Fig. 1b area difference down to
/// the f64 bit pattern, at 1 and 4 workers.
#[test]
fn save_load_compare_is_bit_identical_to_live_compare() {
    let scenario = small_shift_scenario();
    for threads in [1usize, 4] {
        let baseline = run_and_record(&scenario, "btree", threads);
        let candidate = run_and_record(&scenario, "rmi", threads);
        let live = compare(&baseline, &candidate).expect("live compare");

        let (store, dir) = temp_store(&format!("bitident-t{threads}"));
        for (name, record) in [("btree", &baseline), ("rmi", &candidate)] {
            let manifest = RunManifest::for_run(&scenario, name, threads);
            store
                .save(&RunArtifact::new(manifest, record.clone()))
                .expect("save");
        }
        let loaded_b = store.load("btree").expect("load baseline");
        let loaded_c = store.load("rmi").expect("load candidate");
        assert_eq!(
            loaded_b.record, baseline,
            "record survives the store losslessly"
        );
        let archived = compare(&loaded_b.record, &loaded_c.record).expect("archived compare");

        assert_eq!(
            live.area_difference.to_bits(),
            archived.area_difference.to_bits(),
            "Fig. 1b area difference must be bit-identical after save/load (threads={threads})"
        );
        assert_eq!(live, archived, "full comparison report (threads={threads})");
        let _ = std::fs::remove_dir_all(dir);
    }
}

/// Worker count is part of the manifest identity: the same scenario+SUT at
/// different concurrency gets different digests and coexists in the store.
#[test]
fn concurrency_is_part_of_the_artifact_identity() {
    let scenario = small_shift_scenario();
    let m1 = RunManifest::for_run(&scenario, "btree", 1);
    let m4 = RunManifest::for_run(&scenario, "btree", 4);
    assert_ne!(m1.digest(), m4.digest());
}

/// A deterministic synthetic artifact used by the golden fixture tests.
/// Everything is hand-pinned (including `crate_version`) so the fixture
/// bytes never depend on the workspace version or any runtime behavior.
fn golden_artifact() -> RunArtifact {
    let manifest = RunManifest {
        sut: "btree".to_string(),
        scenario: "golden".to_string(),
        spec: "name = \"golden\"\n".to_string(),
        concurrency: 1,
        crate_version: "0.1.0-fixture".to_string(),
        transport: Transport::Remote {
            endpoint: "127.0.0.1:7070".to_string(),
        },
        clock: ClockMode::Wall,
    };
    let record = RunRecord {
        sut_name: "btree".to_string(),
        scenario_name: "golden".to_string(),
        phase_names: vec!["head".to_string(), "tail".to_string()],
        ops: vec![
            OpRecord {
                t_end: 0.25,
                latency: 0.25,
                phase: 0,
                ok: true,
                in_transition: false,
            },
            OpRecord {
                t_end: 0.75,
                latency: 0.5,
                phase: 1,
                ok: false,
                in_transition: true,
            },
        ],
        phase_change_times: vec![(0, 0.0), (1, 0.25)],
        train: lsbench::core::record::TrainInfo {
            work: 1234,
            seconds: 0.5,
        },
        exec_start: 0.0,
        exec_end: 0.75,
        final_metrics: SutMetrics {
            size_bytes: 4096,
            training_work: 1234,
            execution_work: 5678,
            model_count: 3,
            adaptations: 2,
            label_collection_work: 99,
        },
        work_units_per_second: 1000000.0,
        faults: FaultStats {
            injected: 4,
            retries: 3,
            timeouts: 2,
            crashes: 1,
        },
    };
    // A wall run carries its host-clock stats beside (never inside) the
    // record, so the fixture pins the wall block's serialized shape too.
    let mut latency = lsbench::stats::LatencyHistogram::new();
    latency.record(250_000);
    latency.record(500_000);
    RunArtifact::new(manifest, record).with_wall(Some(WallStats::new(0.75, 2, latency)))
}

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("run_artifact_v4.json")
}

/// Byte-exact golden pin of the `RunArtifact` v4 JSON schema. If this
/// fails, the serialized shape changed: bump
/// [`lsbench::core::results::SCHEMA_VERSION`], regenerate the fixture with
/// `cargo test regenerate_golden_artifact_fixture -- --ignored`, and
/// review the diff deliberately — stored artifacts from before the change
/// must be *refused*, not misread.
#[test]
fn run_artifact_json_schema_is_pinned_byte_exact() {
    let artifact = golden_artifact();
    let expected = std::fs::read_to_string(fixture_path())
        .expect("tests/fixtures/run_artifact_v4.json exists (see regenerate test)");
    let actual = artifact.to_json().expect("serializes");
    assert_eq!(
        actual, expected,
        "RunArtifact JSON changed shape — bump SCHEMA_VERSION and regenerate the fixture"
    );
    // The committed fixture also parses back to the identical artifact.
    let parsed = RunArtifact::from_json(&expected).expect("fixture parses strictly");
    assert_eq!(parsed, artifact);
    assert_eq!(parsed.schema_version, SCHEMA_VERSION);
}

/// Regenerates the golden fixture. Deliberately `#[ignore]`d: run it only
/// when a schema change is intentional, together with a
/// `SCHEMA_VERSION` bump.
#[test]
#[ignore = "writes the golden fixture; run explicitly after a deliberate schema change"]
fn regenerate_golden_artifact_fixture() {
    let path = fixture_path();
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(&path, golden_artifact().to_json().unwrap()).unwrap();
}

#[test]
fn store_refuses_unversioned_and_drifted_artifacts() {
    let (store, dir) = temp_store("strict");
    let artifact = golden_artifact();
    let path = store.save(&artifact).expect("save");
    let json = std::fs::read_to_string(&path).unwrap();

    // Strip the version field → refused as unversioned.
    let unversioned = json.replacen("  \"schema_version\": 4,\n", "", 1);
    assert_ne!(unversioned, json);
    std::fs::write(&path, &unversioned).unwrap();
    match store.load(&artifact.digest) {
        Err(StoreError::Schema {
            found: None,
            expected,
        }) => assert_eq!(expected, SCHEMA_VERSION),
        other => panic!("expected unversioned refusal, got {other:?}"),
    }

    // Version drift: a v3-era artifact (pre-clock-mode) must be refused
    // with the found version reported, never best-effort parsed.
    let drifted = json.replacen("\"schema_version\": 4", "\"schema_version\": 3", 1);
    std::fs::write(&path, &drifted).unwrap();
    assert!(matches!(
        store.load(&artifact.digest),
        Err(StoreError::Schema { found: Some(3), .. })
    ));

    // Tampered manifest → digest mismatch.
    let tampered = json.replacen("\"sut\": \"btree\"", "\"sut\": \"edited\"", 1);
    assert_ne!(tampered, json);
    std::fs::write(&path, &tampered).unwrap();
    assert!(matches!(
        store.load(&artifact.digest),
        Err(StoreError::ManifestMismatch { .. })
    ));

    // And the listing is strict too: one bad artifact fails the list.
    assert!(store.list().is_err());
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn find_resolves_digest_prefixes_and_reports_ambiguity() {
    let scenario = small_shift_scenario();
    let record = run_and_record(&scenario, "btree", 1);
    let (store, dir) = temp_store("find");
    let a = RunArtifact::new(RunManifest::for_run(&scenario, "btree", 1), record.clone());
    let b = RunArtifact::new(RunManifest::for_run(&scenario, "btree", 4), record);
    store.save(&a).expect("save a");
    store.save(&b).expect("save b");

    assert_eq!(store.find(&a.digest[..8]).expect("prefix").digest, a.digest);
    assert!(matches!(
        store.find("btree"),
        Err(StoreError::Ambiguous { .. })
    ));
    assert!(matches!(
        store.find("no-such-run"),
        Err(StoreError::NotFound(_))
    ));
    let _ = std::fs::remove_dir_all(dir);
}

/// The suite JSON envelope: `schema_version` wrapped around the typed
/// results, parsing back losslessly — and refusing unversioned text.
#[test]
fn suite_artifact_envelope_parses_back_into_typed_reports() {
    let results = vec![SuiteResult {
        sut_name: "btree".to_string(),
        summaries: vec![],
    }];
    let envelope = SuiteArtifact::new(results.clone());
    let json = lsbench::core::report::to_json(&envelope).expect("serializes");
    let back = SuiteArtifact::from_json(&json).expect("parses back");
    assert_eq!(back.schema_version, SCHEMA_VERSION);
    assert_eq!(back.results, results);
    assert!(matches!(
        SuiteArtifact::from_json("{\"results\": []}"),
        Err(StoreError::Schema { found: None, .. })
    ));
}

/// The serialized comparison report round-trips through its own JSON —
/// the `--json` output of `lsbench compare` is lossless.
#[test]
fn comparison_report_json_round_trips() {
    let scenario = small_shift_scenario();
    let a = run_and_record(&scenario, "btree", 1);
    let b = run_and_record(&scenario, "rmi", 1);
    let report = compare(&a, &b).expect("compare");
    let json = lsbench::core::report::to_json(&report).expect("serializes");
    let back: ComparisonReport = serde_json::from_str(&json).expect("parses");
    assert_eq!(back, report);
    assert_eq!(
        back.area_difference.to_bits(),
        report.area_difference.to_bits()
    );
}
