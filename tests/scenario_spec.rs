//! Integration tests for the scenario-spec subsystem: positioned
//! rejection of malformed files, shipped-file/built-in equivalence, the
//! run-level round-trip fidelity guarantee, and `parse ∘ render = id`
//! property tests over builder-generated scenarios.

use lsbench::core::faults::{FaultPlan, FaultSpec, RetryPolicy};
use lsbench::core::metrics::sla::SlaPolicy;
use lsbench::core::runner::{ExecutionMode, RunOptions, Runner};
use lsbench::core::scenario::{ArrivalSpec, ClockMode, OnlineTrainMode, Scenario};
use lsbench::core::spec::{parse_scenario, render_scenario, ScenarioRegistry};
use lsbench::core::suite::SuiteConfig;
use lsbench::core::sut_registry::SutRegistry;
use lsbench::workload::arrival::{ArrivalProcess, LoadModulation};
use lsbench::workload::keygen::KeyDistribution;
use lsbench::workload::ops::OperationMix;
use lsbench::workload::phases::{PhasedWorkload, TransitionKind, WorkloadPhase};
use proptest::collection::vec;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Malformed input: every fixture is rejected with a positioned error.
// ---------------------------------------------------------------------------

/// `(fixture, text, line, field, reason substring)` — the exact position
/// and field every malformed fixture must be rejected at.
const BAD_FIXTURES: &[(&str, &str, usize, &str, &str)] = &[
    (
        "unknown_key",
        include_str!("spec_fixtures/bad/unknown_key.spec"),
        10,
        "sized",
        "unknown key",
    ),
    (
        "bad_number",
        include_str!("spec_fixtures/bad/bad_number.spec"),
        8,
        "size",
        "unrecognized value 'twelve'",
    ),
    (
        "transition_on_first",
        include_str!("spec_fixtures/bad/transition_on_first.spec"),
        12,
        "transition",
        "first block",
    ),
    (
        "zero_ops",
        include_str!("spec_fixtures/bad/zero_ops.spec"),
        11,
        "ops",
        "at least one operation",
    ),
    (
        "unterminated_string",
        include_str!("spec_fixtures/bad/unterminated_string.spec"),
        2,
        "name",
        "unterminated",
    ),
    (
        "duplicate_key",
        include_str!("spec_fixtures/bad/duplicate_key.spec"),
        4,
        "seed",
        "duplicate key",
    ),
    (
        "shape_jump",
        include_str!("spec_fixtures/bad/shape_jump.spec"),
        11,
        "gradual_shift",
        "cannot interpolate",
    ),
    (
        "drift_alpha_out_of_range",
        include_str!("spec_fixtures/bad/drift_alpha_out_of_range.spec"),
        11,
        "drift",
        "alpha must be in [0, 1]",
    ),
    (
        "drift_cross_shape",
        include_str!("spec_fixtures/bad/drift_cross_shape.spec"),
        11,
        "drift",
        "cannot interpolate",
    ),
    (
        "clock_unknown",
        include_str!("spec_fixtures/bad/clock_unknown.spec"),
        12,
        "clock",
        "unknown clock 'lunar'",
    ),
    (
        "clock_bad_type",
        include_str!("spec_fixtures/bad/clock_bad_type.spec"),
        12,
        "clock",
        "expected a \"string\"",
    ),
    (
        "fault_unknown_key",
        include_str!("spec_fixtures/bad/fault_unknown_key.spec"),
        23,
        "probability",
        "unknown key",
    ),
    (
        "fault_bad_rate",
        include_str!("spec_fixtures/bad/fault_bad_rate.spec"),
        21,
        "rate",
        "must be within [0, 1]",
    ),
    (
        "fault_stall_overlap",
        include_str!("spec_fixtures/bad/fault_stall_overlap.spec"),
        24,
        "ops",
        "overlapping phase boundary",
    ),
];

#[test]
fn every_bad_fixture_is_rejected_with_position() {
    for (fixture, text, line, field, reason) in BAD_FIXTURES {
        let err = parse_scenario(text)
            .map(|s| s.name)
            .expect_err(&format!("{fixture} must not parse"));
        assert_eq!(err.line, *line, "{fixture}: wrong line");
        assert_eq!(err.field, *field, "{fixture}: wrong field");
        assert!(
            err.reason.contains(reason),
            "{fixture}: reason {:?} lacks {reason:?}",
            err.reason
        );
        // Display carries the position for `lsbench validate` output.
        assert!(err.to_string().starts_with(&format!("line {line}: ")));
    }
}

// ---------------------------------------------------------------------------
// Shipped files: the s*.spec suite equals the registry built-ins, and the
// exemplars parse clean.
// ---------------------------------------------------------------------------

#[test]
fn shipped_suite_specs_equal_registry_builtins() {
    let reg = ScenarioRegistry::default();
    for (file, name) in [
        ("scenarios/s1-specialization.spec", "S1-specialization"),
        ("scenarios/s2-abrupt-shift.spec", "S2-abrupt-shift"),
        ("scenarios/s3-gradual-writes.spec", "S3-gradual-writes"),
        ("scenarios/s4-scans.spec", "S4-scans"),
        ("scenarios/s5-bursty-load.spec", "S5-bursty-load"),
    ] {
        let from_file = ScenarioRegistry::load_file(file).unwrap_or_else(|e| panic!("{file}:{e}"));
        let built_in = reg.get(name).expect("registered");
        assert_eq!(from_file, built_in, "{file} drifted from built-in {name}");
    }
}

#[test]
fn shipped_exemplars_parse_and_validate() {
    for file in [
        "scenarios/diurnal.spec",
        "scenarios/flash_crowd.spec",
        "scenarios/growing_skew.spec",
        "scenarios/workload_shift.spec",
        "scenarios/chaos_errors.spec",
        "scenarios/chaos_stall.spec",
        "scenarios/chaos_crash.spec",
        "scenarios/templated_repetition.spec",
        "scenarios/ledger_growth.spec",
    ] {
        let s = ScenarioRegistry::load_file(file).unwrap_or_else(|e| panic!("{file}:{e}"));
        s.validate().unwrap_or_else(|e| panic!("{file}: {e}"));
        assert!(s.workload.total_ops() > 0, "{file}");
    }
}

// ---------------------------------------------------------------------------
// Round-trip fidelity: a built-in resolved by name and its rendered spec
// file loaded from disk produce bit-identical run records, serial and
// concurrent.
// ---------------------------------------------------------------------------

#[test]
fn built_in_and_spec_file_runs_are_bit_identical() {
    let reg = ScenarioRegistry::with_config(SuiteConfig {
        dataset_size: 2_000,
        ops_per_phase: 400,
        ..SuiteConfig::default()
    });
    let by_name = reg.get("S2-abrupt-shift").expect("registered");

    // Round-trip the scenario through an actual file on disk, resolved
    // through the same entry point `lsbench run --scenario` uses.
    let path = std::env::temp_dir().join("lsbench_round_trip_s2.spec");
    std::fs::write(&path, render_scenario(&by_name)).expect("temp file writes");
    let by_file = reg
        .resolve(path.to_str().expect("utf-8 temp path"))
        .expect("rendered spec resolves");
    let _ = std::fs::remove_file(&path);
    assert_eq!(by_file, by_name, "value-level equality");

    let suts = SutRegistry::default();
    for workers in [1, 4] {
        let run = |s: &Scenario| {
            Runner::from_factory(suts.factory("btree").expect("registered"))
                .config(RunOptions::with_mode(if workers > 1 {
                    ExecutionMode::Sharded { workers }
                } else {
                    ExecutionMode::Serial
                }))
                .run(s)
                .expect("run succeeds")
        };
        let a = run(&by_name);
        let b = run(&by_file);
        assert_eq!(a.record, b.record, "{workers}-worker records must match");
        assert_eq!(a.record.completed(), b.record.completed());
    }
}

// ---------------------------------------------------------------------------
// Golden tests: each composer's expansion is pinned, through the full
// spec pipeline.
// ---------------------------------------------------------------------------

fn spec_with_blocks(blocks: &str) -> Scenario {
    let text = format!(
        "name = \"golden\"\nseed = 7\n\n[dataset]\ndistribution = \"uniform\"\n\
         key_range = [0, 1000]\nsize = 100\nseed = 8\n\n{blocks}"
    );
    parse_scenario(&text).unwrap_or_else(|e| panic!("golden spec parses: {e}\n{text}"))
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-12
}

#[test]
fn diurnal_expansion_is_pinned() {
    let s = spec_with_blocks(
        "[[diurnal]]\nsteps = 4\nops_per_step = 50\nperiod = 4.0\namplitude = 0.5\n\
         distribution = \"uniform\"\nmix = \"ycsb-c\"\n",
    );
    let phases = s.workload.phases();
    assert_eq!(phases.len(), 4);
    // 1 + 0.5·sin(2π(i+0.5)/4): the sinusoid sampled at step midpoints.
    let half_sqrt2 = 0.5 * std::f64::consts::FRAC_1_SQRT_2;
    let expected = [
        1.0 + half_sqrt2,
        1.0 + half_sqrt2,
        1.0 - half_sqrt2,
        1.0 - half_sqrt2,
    ];
    for (i, (p, want)) in phases.iter().zip(expected).enumerate() {
        assert_eq!(p.name, format!("diurnal-{i}"));
        assert_eq!(p.ops, 50);
        assert!(
            close(p.concurrency_burst, want),
            "step {i}: {}",
            p.concurrency_burst
        );
    }
    assert!(s
        .workload
        .transitions()
        .iter()
        .all(|t| *t == TransitionKind::Abrupt));
}

#[test]
fn burst_expansion_is_pinned() {
    let s = spec_with_blocks(
        "[[burst]]\nsteps = 5\nops_per_step = 10\nat = 1\nwidth = 2\nfactor = 3.0\n\
         distribution = \"zipf\"\ntheta = 0.9\nmix = \"ycsb-b\"\n",
    );
    let factors: Vec<f64> = s
        .workload
        .phases()
        .iter()
        .map(|p| p.concurrency_burst)
        .collect();
    assert_eq!(factors, [1.0, 3.0, 3.0, 1.0, 1.0]);
}

#[test]
fn gradual_shift_expansion_is_pinned() {
    let s = spec_with_blocks(
        "[[gradual_shift]]\nsteps = 5\nops_per_step = 10\nfrom = \"zipf\"\nfrom_theta = 0.5\n\
         to = \"zipf\"\nto_theta = 1.3\nmix = \"ycsb-c\"\n",
    );
    let thetas: Vec<f64> = s
        .workload
        .phases()
        .iter()
        .map(|p| match p.distribution {
            KeyDistribution::Zipf { theta } => theta,
            ref other => panic!("expected zipf, got {other:?}"),
        })
        .collect();
    for (got, want) in thetas.iter().zip([0.5, 0.7, 0.9, 1.1, 1.3]) {
        assert!(close(*got, want), "{thetas:?}");
    }
}

#[test]
fn growing_skew_expansion_is_pinned() {
    let s = spec_with_blocks(
        "[[growing_skew]]\nsteps = 3\nops_per_step = 10\nstart_theta = 0.4\n\
         end_theta = 1.2\nsmooth = 0.5\nmix = \"ycsb-c\"\n",
    );
    let thetas: Vec<f64> = s
        .workload
        .phases()
        .iter()
        .map(|p| match p.distribution {
            KeyDistribution::Zipf { theta } => theta,
            ref other => panic!("expected zipf, got {other:?}"),
        })
        .collect();
    for (got, want) in thetas.iter().zip([0.4, 0.8, 1.2]) {
        assert!(close(*got, want), "{thetas:?}");
    }
    assert!(s
        .workload
        .transitions()
        .iter()
        .all(|t| *t == TransitionKind::Gradual { window: 0.5 }));
}

#[test]
fn drift_expansion_is_pinned() {
    // α = 0.5 over zipf 0.5 → 1.3 stops halfway: the last step sits at
    // theta 0.9, and interior steps ramp linearly toward it.
    let s = spec_with_blocks(
        "[[drift]]\nsteps = 5\nops_per_step = 10\nfrom = \"zipf\"\nfrom_theta = 0.5\n\
         to = \"zipf\"\nto_theta = 1.3\nalpha = 0.5\nmix = \"ycsb-c\"\n",
    );
    let thetas: Vec<f64> = s
        .workload
        .phases()
        .iter()
        .map(|p| match p.distribution {
            KeyDistribution::Zipf { theta } => theta,
            ref other => panic!("expected zipf, got {other:?}"),
        })
        .collect();
    for (got, want) in thetas.iter().zip([0.5, 0.6, 0.7, 0.8, 0.9]) {
        assert!(close(*got, want), "{thetas:?}");
    }
    // α = 0 never leaves the base distribution, exactly.
    let frozen = spec_with_blocks(
        "[[drift]]\nsteps = 5\nops_per_step = 10\nfrom = \"zipf\"\nfrom_theta = 0.5\n\
         to = \"zipf\"\nto_theta = 1.3\nalpha = 0.0\nmix = \"ycsb-c\"\n",
    );
    for p in frozen.workload.phases() {
        assert_eq!(p.distribution, KeyDistribution::Zipf { theta: 0.5 });
    }
    // α = 1 is [[gradual_shift]] bit for bit (names aside — each block
    // prefixes phases with its own default name).
    let full = spec_with_blocks(
        "[[drift]]\nname = \"x\"\nsteps = 5\nops_per_step = 10\nfrom = \"zipf\"\n\
         from_theta = 0.5\nto = \"zipf\"\nto_theta = 1.3\nalpha = 1.0\nmix = \"ycsb-c\"\n",
    );
    let shift = spec_with_blocks(
        "[[gradual_shift]]\nname = \"x\"\nsteps = 5\nops_per_step = 10\nfrom = \"zipf\"\n\
         from_theta = 0.5\nto = \"zipf\"\nto_theta = 1.3\nmix = \"ycsb-c\"\n",
    );
    assert_eq!(full.workload.phases(), shift.workload.phases());
    assert_eq!(full.workload.transitions(), shift.workload.transitions());
}

#[test]
fn drift_spec_round_trips_through_render() {
    // Composers expand at parse time and the renderer emits the expanded
    // phases, so parse ∘ render = id holds for [[drift]] specs too.
    let s = spec_with_blocks(
        "[[drift]]\nsteps = 4\nops_per_step = 25\nfrom = \"zipf\"\nfrom_theta = 0.6\n\
         to = \"zipf\"\nto_theta = 1.2\nalpha = 0.75\nsmooth = 0.5\nmix = \"ycsb-a\"\n",
    );
    let rendered = render_scenario(&s);
    let reparsed = parse_scenario(&rendered).expect("rendered drift spec parses");
    assert_eq!(s, reparsed);
}

// ---------------------------------------------------------------------------
// Property tests: parse ∘ render = id, and no input ever panics the
// parser.
// ---------------------------------------------------------------------------

fn arb_distribution() -> impl Strategy<Value = KeyDistribution> {
    prop_oneof![
        Just(KeyDistribution::Uniform),
        (0.3f64..1.8).prop_map(|theta| KeyDistribution::Zipf { theta }),
        (0.05f64..0.95, 0.01f64..0.3)
            .prop_map(|(center, std_frac)| KeyDistribution::Normal { center, std_frac }),
        (-0.5f64..0.5, 0.4f64..1.5)
            .prop_map(|(mu, sigma)| KeyDistribution::LogNormal { mu, sigma }),
        (0.01f64..0.5, 0.5f64..0.99).prop_map(|(hot_span, hot_fraction)| {
            KeyDistribution::Hotspot {
                hot_span,
                hot_fraction,
            }
        }),
        (2u64..20, 0.01f64..0.2).prop_map(|(clusters, cluster_std_frac)| {
            KeyDistribution::Clustered {
                clusters: clusters as usize,
                cluster_std_frac,
            }
        }),
        (0.01f64..0.9).prop_map(|noise_frac| KeyDistribution::SequentialNoise { noise_frac }),
    ]
}

fn arb_mix() -> impl Strategy<Value = OperationMix> {
    prop_oneof![
        Just(OperationMix::ycsb_a()),
        Just(OperationMix::ycsb_c()),
        Just(OperationMix::range_heavy()),
        // Custom weights: read-bearing, scan weight paired with a scan
        // length (a lone max_scan_len would not survive rendering).
        (0.1f64..1.0, 0.0f64..0.5, 0.0f64..0.5).prop_map(|(read, insert, update)| {
            OperationMix {
                read,
                insert,
                update,
                scan: 0.0,
                delete: 0.0,
                max_scan_len: 0,
            }
        }),
        (0.1f64..1.0, 0.01f64..0.5, 1u64..50).prop_map(|(read, scan, len)| OperationMix {
            read,
            insert: 0.0,
            update: 0.0,
            scan,
            delete: 0.0,
            max_scan_len: len as u32,
        }),
    ]
}

fn arb_transition() -> impl Strategy<Value = TransitionKind> {
    prop_oneof![
        Just(TransitionKind::Abrupt),
        (0.05f64..1.0).prop_map(|window| TransitionKind::Gradual { window }),
    ]
}

fn arb_sla() -> impl Strategy<Value = SlaPolicy> {
    prop_oneof![
        (0.1f64..10.0).prop_map(|threshold| SlaPolicy::Fixed { threshold }),
        (1.0f64..8.0).prop_map(|multiplier| SlaPolicy::FromBaselineP99 { multiplier }),
    ]
}

fn arb_arrival() -> impl Strategy<Value = Option<ArrivalSpec>> {
    let process = prop_oneof![
        (1e3f64..1e5).prop_map(|rate| ArrivalProcess::Poisson { rate }),
        (1e3f64..1e5).prop_map(|rate| ArrivalProcess::Uniform { rate }),
    ];
    let modulation = prop_oneof![
        Just(LoadModulation::Constant),
        (2.0f64..50.0, 0.05f64..0.95)
            .prop_map(|(period, amplitude)| LoadModulation::Diurnal { period, amplitude }),
        (4.0f64..50.0, 1.0f64..3.0, 1.5f64..10.0).prop_map(|(period, burst_len, multiplier)| {
            LoadModulation::Burst {
                period,
                burst_len,
                multiplier,
            }
        }),
    ];
    prop_oneof![
        Just(None),
        (process, modulation, 0u64..1000).prop_map(|(process, modulation, seed)| {
            Some(ArrivalSpec {
                process,
                modulation,
                seed,
            })
        }),
    ]
}

/// Raw material for an optional fault plan: `(seed, timeout, retries,
/// backoff base, backoff multiplier)` plus `(error rate, latency factor,
/// add_work, stall position fraction, crash position fraction)`. The
/// position fractions are resolved against phase 0's op count inside
/// `arb_scenario`, so every generated window is valid by construction.
type FaultParts = ((u64, Option<f64>, u32, f64, f64), (f64, f64, u64, f64, f64));

fn arb_fault_parts() -> impl Strategy<Value = Option<FaultParts>> {
    prop_oneof![
        Just(None),
        (
            (
                0u64..10_000,
                prop_oneof![Just(None), (1e-4f64..1e-1).prop_map(Some)],
                0u32..4,
                1e-4f64..1e-2,
                1.0f64..3.0,
            ),
            (
                0.0f64..1.0,
                0.5f64..4.0,
                0u64..1_000,
                0.0f64..1.0,
                0.0f64..1.0,
            ),
        )
            .prop_map(Some),
    ]
}

/// A phase with everything the spec grammar can express on it.
fn arb_phase() -> impl Strategy<Value = (WorkloadPhase, TransitionKind)> {
    (
        ("[a-z][a-z0-9_-]{0,11}", arb_distribution(), arb_mix()),
        (
            1u64..5_000,
            prop_oneof![Just(1.0f64), 0.25f64..4.0],
            arb_transition(),
        ),
    )
        .prop_map(|((name, dist, mix), (ops, burst, transition))| {
            let phase = WorkloadPhase::new(name, dist, (0, 1_000_000), mix, ops)
                .with_concurrency_burst(burst);
            (phase, transition)
        })
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        (
            "[a-z][a-z0-9-]{0,11}",
            vec(arb_phase(), 1..4),
            0u64..10_000,
            arb_distribution(),
            100u64..5_000,
        ),
        (
            (
                arb_sla(),
                arb_arrival(),
                prop_oneof![Just(u64::MAX), 0u64..100_000],
                1e3f64..1e7,
            ),
            (
                prop_oneof![Just(u64::MAX), 1u64..1_024],
                prop_oneof![
                    Just(OnlineTrainMode::Foreground),
                    (0.05f64..0.95).prop_map(|fraction| OnlineTrainMode::Background { fraction }),
                ],
                prop_oneof![Just(None), vec(arb_phase(), 1..3).prop_map(Some)],
                arb_fault_parts(),
                prop_oneof![
                    Just(None),
                    Just(Some(ClockMode::Sim)),
                    Just(Some(ClockMode::Wall)),
                ],
            ),
        ),
    )
        .prop_map(
            |(
                (name, phase_list, seed, data_dist, data_size),
                (
                    (sla, arrival, train_budget, wups),
                    (maintenance, online, holdout, fault_parts, clock),
                ),
            )| {
                let ops0 = phase_list[0].0.ops;
                let workload = |list: Vec<(WorkloadPhase, TransitionKind)>, seed: u64| {
                    let transitions = list.iter().skip(1).map(|(_, t)| *t).collect();
                    let phases = list.into_iter().map(|(p, _)| p).collect();
                    PhasedWorkload::new(phases, transitions, seed).expect("generated valid")
                };
                let mut builder = Scenario::builder(name)
                    .dataset(data_dist, (0, 1_000_000), data_size as usize, seed ^ 0xD5)
                    .workload(workload(phase_list, seed))
                    .sla(sla)
                    .train_budget(train_budget)
                    .work_units_per_second(wups)
                    .maintenance_every(maintenance)
                    .online_train(online);
                if let Some(list) = holdout {
                    builder = builder.holdout(workload(list, seed ^ 0x401));
                }
                if let Some(a) = arrival {
                    builder = builder.arrival(a);
                }
                if let Some(c) = clock {
                    builder = builder.clock(c);
                }
                if let Some((
                    (fseed, timeout, max_retries, backoff_base, backoff_multiplier),
                    (rate, factor, add_work, stall_frac, crash_frac),
                )) = fault_parts
                {
                    // Windows computed so they always fit inside phase 0.
                    let window = (ops0 / 2).max(1);
                    let from_op = ((ops0 - window) as f64 * stall_frac) as u64;
                    let at_op = ((ops0 - 1) as f64 * crash_frac) as u64;
                    builder = builder.faults(FaultPlan {
                        seed: fseed,
                        policy: RetryPolicy {
                            timeout,
                            max_retries,
                            backoff_base,
                            backoff_multiplier,
                        },
                        faults: vec![
                            FaultSpec::TransientErrors { phase: None, rate },
                            FaultSpec::LatencySpike {
                                phase: None,
                                add_work,
                                factor,
                            },
                            FaultSpec::Stall {
                                phase: 0,
                                from_op,
                                ops: window,
                                duration: 0.25,
                            },
                            FaultSpec::Crash { phase: 0, at_op },
                        ],
                    });
                }
                builder.build().expect("generated scenario is valid")
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `parse ∘ render = id` over the whole scenario space the builder
    /// accepts — the fidelity guarantee behind `lsbench export`.
    #[test]
    fn parse_render_round_trips_exactly(s in arb_scenario()) {
        let text = render_scenario(&s);
        let back = parse_scenario(&text)
            .unwrap_or_else(|e| panic!("rendered spec must re-parse: {e}\n---\n{text}"));
        prop_assert_eq!(&back, &s, "round trip changed the scenario:\n{}", text);
        // Idempotent: rendering the re-parse yields byte-identical text.
        prop_assert_eq!(render_scenario(&back), text);
    }

    /// The parser never panics: any mangled spec yields a positioned
    /// `SpecError` (or parses, if the mangling happened to be harmless).
    #[test]
    fn mangled_specs_never_panic(
        s in arb_scenario(),
        cut in 0usize..2_000,
        junk in "[ -~]{0,40}",
        line_no in 0usize..40,
    ) {
        let text = render_scenario(&s);
        // Truncate mid-file, then splice a random printable line in.
        let mut cut = cut.min(text.len());
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        let truncated = &text[..cut];
        let mut lines: Vec<&str> = truncated.lines().collect();
        lines.insert(line_no.min(lines.len()), junk.as_str());
        let mangled = lines.join("\n");
        match parse_scenario(&mangled) {
            Ok(s) => prop_assert!(s.validate().is_ok(), "accepted specs must be valid"),
            Err(e) => {
                // Positioned within the mangled text (0 = whole file).
                prop_assert!(e.line <= mangled.lines().count() + 1);
                prop_assert!(!e.field.is_empty());
            }
        }
    }

    /// Fully random text never panics the parser either.
    #[test]
    fn arbitrary_text_never_panics(text in "[ -~\n\"#=\\[\\]]{0,200}") {
        let _ = parse_scenario(&text);
    }

    /// `[[drift]]` blocks never panic the parser, across in-range and
    /// out-of-range alphas, degenerate step counts, and cross-shape
    /// endpoints; whenever such a spec parses, α stays in range and the
    /// result validates.
    #[test]
    fn drift_blocks_never_panic(
        steps in 0u64..8,
        ops in 0u64..200,
        alpha in prop_oneof![
            -2.0f64..3.0,
            Just(f64::NAN),
            Just(f64::INFINITY),
            Just(f64::NEG_INFINITY),
        ],
        from_theta in 0.01f64..2.0,
        to_theta in 0.01f64..2.0,
        cross_shape in any::<bool>(),
    ) {
        let from = if cross_shape {
            "from = \"uniform\"".to_string()
        } else {
            format!("from = \"zipf\"\nfrom_theta = {from_theta}")
        };
        let text = format!(
            "name = \"fuzz\"\nseed = 7\n\n[dataset]\ndistribution = \"uniform\"\n\
             key_range = [0, 1000]\nsize = 100\nseed = 8\n\n[[drift]]\n\
             steps = {steps}\nops_per_step = {ops}\n{from}\n\
             to = \"zipf\"\nto_theta = {to_theta}\nalpha = {alpha}\nmix = \"ycsb-c\"\n"
        );
        match parse_scenario(&text) {
            Ok(s) => {
                prop_assert!((0.0..=1.0).contains(&alpha));
                prop_assert!(s.validate().is_ok());
            }
            Err(e) => prop_assert!(!e.field.is_empty()),
        }
    }
}
