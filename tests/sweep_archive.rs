//! Integration tests for the drift-sweep artifact family: the byte-exact
//! golden fixture for the v1 sweep schema, strict refusal of unversioned
//! and version-drifted sweep artifacts, and the worker-count determinism
//! guarantee (the same sweep archived at 1 and 4 workers is
//! byte-identical, digest included).

use lsbench::core::results::{
    ResultStore, StoreError, SweepArtifact, SweepManifest, Transport, SWEEP_SCHEMA_VERSION,
};
use lsbench::core::runner::{ExecutionMode, RunOptions, Runner};
use lsbench::core::scenario::{ClockMode, Scenario};
use lsbench::core::sut_registry::SutRegistry;
use lsbench::core::sweep::{sweep_curve, DriftLadder, SweepCurve, SweepPoint};
use lsbench::workload::keygen::KeyDistribution;
use std::path::PathBuf;

fn temp_store(tag: &str) -> (ResultStore, PathBuf) {
    let dir = std::env::temp_dir().join(format!("lsbench-sweep-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    (ResultStore::open(&dir).expect("store opens"), dir)
}

/// A deterministic synthetic sweep artifact for the golden fixture
/// tests. Everything is hand-pinned (including `crate_version`) so the
/// fixture bytes never depend on the workspace version or any runtime
/// behavior.
fn golden_sweep_artifact() -> SweepArtifact {
    let manifest = SweepManifest {
        scenario: "golden".to_string(),
        spec: "name = \"golden\"\n".to_string(),
        suts: vec!["btree".to_string(), "rmi".to_string()],
        axis: "0..1x3".to_string(),
        alphas: vec![0.0, 0.5, 1.0],
        crate_version: "0.1.0-fixture".to_string(),
        transport: Transport::Local,
        clock: ClockMode::Sim,
    };
    let curve = |sut: &str, bend: f64| SweepCurve {
        sut: sut.to_string(),
        points: vec![
            SweepPoint {
                alpha: 0.0,
                adaptability_area: 0.0,
                adjustment_speed: 0.0,
                sla_violation_rate: 0.0,
                specialization_spread: 1.0,
            },
            SweepPoint {
                alpha: 0.5,
                adaptability_area: bend,
                adjustment_speed: 0.25,
                sla_violation_rate: 0.125,
                specialization_spread: 1.5,
            },
            SweepPoint {
                alpha: 1.0,
                adaptability_area: -0.25,
                adjustment_speed: 0.5,
                sla_violation_rate: 0.25,
                specialization_spread: 2.0,
            },
        ],
    };
    SweepArtifact::new(manifest, vec![curve("btree", -0.125), curve("rmi", -0.5)])
}

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("sweep_artifact_v1.json")
}

/// Byte-exact golden pin of the `SweepArtifact` v1 JSON schema. If this
/// fails, the serialized shape changed: bump
/// [`lsbench::core::results::SWEEP_SCHEMA_VERSION`], regenerate with
/// `cargo test regenerate_golden_sweep_fixture -- --ignored`, and review
/// the diff deliberately — stored sweeps from before the change must be
/// *refused*, not misread.
#[test]
fn sweep_artifact_json_schema_is_pinned_byte_exact() {
    let artifact = golden_sweep_artifact();
    let expected = std::fs::read_to_string(fixture_path())
        .expect("tests/fixtures/sweep_artifact_v1.json exists (see regenerate test)");
    let actual = artifact.to_json().expect("serializes");
    assert_eq!(
        actual, expected,
        "SweepArtifact JSON changed shape — bump SWEEP_SCHEMA_VERSION and regenerate the fixture"
    );
    let parsed = SweepArtifact::from_json(&expected).expect("fixture parses strictly");
    assert_eq!(parsed, artifact);
    assert_eq!(parsed.schema_version, SWEEP_SCHEMA_VERSION);
}

/// Regenerates the golden fixture. Deliberately `#[ignore]`d: run it
/// only when a sweep schema change is intentional, together with a
/// `SWEEP_SCHEMA_VERSION` bump.
#[test]
#[ignore = "writes the golden fixture; run explicitly after a deliberate schema change"]
fn regenerate_golden_sweep_fixture() {
    let path = fixture_path();
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(&path, golden_sweep_artifact().to_json().unwrap()).unwrap();
}

#[test]
fn store_refuses_unversioned_and_drifted_sweep_artifacts() {
    let (store, dir) = temp_store("strict");
    let artifact = golden_sweep_artifact();
    let path = store.save_sweep(&artifact).expect("save");
    let json = std::fs::read_to_string(&path).unwrap();

    // Strip the version field → refused as unversioned.
    let unversioned = json.replacen("  \"schema_version\": 1,\n", "", 1);
    assert_ne!(unversioned, json);
    std::fs::write(&path, &unversioned).unwrap();
    match ResultStore::load_sweep_path(&path) {
        Err(StoreError::Schema {
            found: None,
            expected,
        }) => assert_eq!(expected, SWEEP_SCHEMA_VERSION),
        other => panic!("expected unversioned refusal, got {other:?}"),
    }

    // Version drift: a future v2 sweep must be refused with the found
    // version reported, never best-effort parsed.
    let drifted = json.replacen("\"schema_version\": 1", "\"schema_version\": 2", 1);
    std::fs::write(&path, &drifted).unwrap();
    assert!(matches!(
        ResultStore::load_sweep_path(&path),
        Err(StoreError::Schema { found: Some(2), .. })
    ));

    // Tampered manifest → digest mismatch.
    let tampered = json.replacen("\"axis\": \"0..1x3\"", "\"axis\": \"0..1x9\"", 1);
    assert_ne!(tampered, json);
    std::fs::write(&path, &tampered).unwrap();
    assert!(matches!(
        ResultStore::load_sweep_path(&path),
        Err(StoreError::ManifestMismatch { .. })
    ));
    let _ = std::fs::remove_dir_all(dir);
}

fn ladder_base() -> Scenario {
    // Same-shape endpoints (zipf → zipf) so every rung interpolates.
    Scenario::two_phase_shift(
        "sweep-determinism",
        KeyDistribution::Zipf { theta: 0.4 },
        KeyDistribution::Zipf { theta: 1.3 },
        6_000,
        1_200,
        11,
    )
    .expect("valid scenario")
}

/// Runs every rung of the ladder for one SUT at the given executing
/// thread count and packages the resulting curve as an artifact. The
/// record semantics are pinned to 4-way sharding regardless of `threads`
/// — the worker-invariance contract the engine already guarantees for
/// single runs, extended here to whole archived sweeps.
fn sweep_artifact_at(threads: usize) -> SweepArtifact {
    let base = ladder_base();
    let ladder = DriftLadder::build(&base, "0..1x3").expect("ladder builds");
    let registry = SutRegistry::default();
    let mut records = Vec::new();
    for rung in &ladder.rungs {
        let factory = registry.factory("rmi").expect("known SUT");
        let outcome = Runner::from_factory(factory)
            .config(RunOptions {
                threads: Some(threads),
                ..RunOptions::with_mode(ExecutionMode::Sharded { workers: 4 })
            })
            .run(rung)
            .expect("rung runs");
        records.push(outcome.record);
    }
    let curve = sweep_curve("rmi", &ladder.alphas, &ladder.rungs, &records).expect("curve derives");
    let manifest =
        SweepManifest::for_sweep(&base, &["rmi".to_string()], &ladder.axis, &ladder.alphas);
    SweepArtifact::new(manifest, vec![curve])
}

/// The acceptance criterion: the same sweep executed with 1 and 4 worker
/// threads archives byte-identically — same digest, same file name, same
/// JSON bytes. Worker count is deliberately not part of the sweep
/// manifest, so this is the whole-artifact form of run determinism.
#[test]
fn sweep_artifacts_are_byte_identical_across_worker_counts() {
    let a1 = sweep_artifact_at(1);
    let a4 = sweep_artifact_at(4);
    assert_eq!(a1.digest, a4.digest, "digest must ignore worker count");
    assert_eq!(a1.file_name(), a4.file_name());
    let j1 = a1.to_json().expect("serializes");
    let j4 = a4.to_json().expect("serializes");
    assert_eq!(j1, j4, "archived sweep bytes must not depend on workers");

    // And through the store: both land at the same path with the same
    // bytes on disk.
    let (store, dir) = temp_store("workers");
    let p1 = store.save_sweep(&a1).expect("save 1-worker sweep");
    let p4 = store.save_sweep(&a4).expect("save 4-worker sweep");
    assert_eq!(p1, p4);
    assert_eq!(std::fs::read_to_string(&p1).unwrap(), j1);
    assert_eq!(store.list_sweep().expect("list"), vec![p1]);
    let _ = std::fs::remove_dir_all(dir);
}

/// Rung semantics end to end: α = 0 freezes every phase at the anchor
/// (static control), α = 1 reproduces the authored scenario exactly.
#[test]
fn ladder_endpoints_are_control_and_authored_scenario() {
    let base = ladder_base();
    let ladder = DriftLadder::build(&base, "0..1x3").expect("ladder builds");
    let anchor = &base.workload.phases()[0];
    for p in ladder.rungs[0].workload.phases() {
        assert_eq!(p.distribution, anchor.distribution);
    }
    assert_eq!(
        ladder.rungs[2].workload.phases(),
        base.workload.phases(),
        "α = 1 must be the scenario as authored"
    );
}
