//! Acceptance tests for the trace subsystem: golden-fixture round-trips
//! (`import ∘ export = id`), positioned rejection of malformed traces,
//! and the generate → record → fit loop recovering phase structure,
//! operation mix, and distribution families — with the fitted spec
//! satisfying `parse ∘ render = id` and preserving SUT rankings.

use lsbench::core::driver::{run_kv_trace, run_kv_trace_open_loop, ReplayConfig};
use lsbench::core::scenario::Scenario;
use lsbench::core::spec::{parse_scenario, render_scenario, ScenarioRegistry};
use lsbench::core::suite::SuiteConfig;
use lsbench::core::sut_registry::SutRegistry;
use lsbench::core::trace::{export_csv, export_jsonl, fit_scenario, import_str, TraceFormat};
use lsbench::workload::keygen::KeyDistribution;
use lsbench::workload::ops::OperationMix;
use lsbench::workload::phases::{PhasedWorkload, TransitionKind, WorkloadPhase};
use lsbench::workload::{Dataset, Trace};

const GOLDEN_CSV: &str = include_str!("trace_fixtures/golden.csv");
const GOLDEN_JSONL: &str = include_str!("trace_fixtures/golden.jsonl");
const S2_10K: &str = include_str!("trace_fixtures/s2_10k.csv");

// ---------------------------------------------------------------------------
// Golden round-trips: the canonical exporters reproduce the fixture
// byte-for-byte, and the two formats agree on the parsed trace.
// ---------------------------------------------------------------------------

#[test]
fn golden_csv_round_trips() {
    let imported = import_str(GOLDEN_CSV, TraceFormat::Csv).expect("golden csv parses");
    assert!(imported.had_timestamps);
    assert_eq!(imported.trace.len(), 5);
    assert_eq!(
        export_csv(&imported.trace),
        GOLDEN_CSV,
        "import ∘ export = id"
    );
}

#[test]
fn golden_jsonl_round_trips() {
    let imported = import_str(GOLDEN_JSONL, TraceFormat::Jsonl).expect("golden jsonl parses");
    assert!(imported.had_timestamps);
    assert_eq!(imported.trace.len(), 5);
    assert_eq!(
        export_jsonl(&imported.trace),
        GOLDEN_JSONL,
        "import ∘ export = id"
    );
}

#[test]
fn golden_formats_agree() {
    let csv = import_str(GOLDEN_CSV, TraceFormat::Csv).expect("csv parses");
    let jsonl = import_str(GOLDEN_JSONL, TraceFormat::Jsonl).expect("jsonl parses");
    assert_eq!(csv.trace.entries(), jsonl.trace.entries());
    // Cross-format conversion is also canonical.
    assert_eq!(export_jsonl(&csv.trace), GOLDEN_JSONL);
    assert_eq!(export_csv(&jsonl.trace), GOLDEN_CSV);
}

#[test]
fn speed_scaling_divides_arrivals() {
    let mut imported = import_str(GOLDEN_CSV, TraceFormat::Csv).expect("golden csv parses");
    let original: Vec<f64> = imported.trace.entries().iter().map(|e| e.arrival).collect();
    imported.scale_speed(2.0).expect("positive speed");
    for (entry, before) in imported.trace.entries().iter().zip(&original) {
        assert_eq!(entry.arrival, before / 2.0);
    }
    assert!(imported.scale_speed(0.0).is_err(), "zero speed rejected");
    assert!(
        imported.scale_speed(-1.0).is_err(),
        "negative speed rejected"
    );
}

// ---------------------------------------------------------------------------
// Malformed traces: exact line/field positioning, mirroring the spec
// parser's bad-fixture table.
// ---------------------------------------------------------------------------

/// `(fixture, text, line, field, reason substring)`.
const BAD_FIXTURES: &[(&str, &str, usize, &str, &str)] = &[
    (
        "bad_op",
        include_str!("trace_fixtures/bad/bad_op.csv"),
        3,
        "op",
        "unknown operation 'frobnicate'",
    ),
    (
        "nonmonotonic_ts",
        include_str!("trace_fixtures/bad/nonmonotonic_ts.csv"),
        3,
        "ts",
        "non-decreasing",
    ),
    (
        "missing_key",
        include_str!("trace_fixtures/bad/missing_key.csv"),
        1,
        "key",
        "missing required column 'key'",
    ),
    (
        "truncated",
        include_str!("trace_fixtures/bad/truncated.csv"),
        3,
        "ts",
        "line truncated",
    ),
];

#[test]
fn malformed_traces_are_rejected_with_positions() {
    for (fixture, text, line, field, reason) in BAD_FIXTURES {
        let err = import_str(text, TraceFormat::Csv)
            .map(|t| t.trace.len())
            .expect_err(&format!("{fixture} must not parse"));
        assert_eq!(err.line, *line, "{fixture}: wrong line");
        assert_eq!(err.field, *field, "{fixture}: wrong field");
        assert!(
            err.reason.contains(reason),
            "{fixture}: reason {:?} lacks {reason:?}",
            err.reason
        );
        // Display carries the position for `lsbench trace import` output.
        assert!(err.to_string().starts_with(&format!("line {line}: ")));
    }
}

#[test]
fn jsonl_rejections_are_positioned() {
    let err = import_str("{\"op\":\"read\"}\n", TraceFormat::Jsonl).unwrap_err();
    assert_eq!((err.line, err.field.as_str()), (1, "key"));
    let err = import_str(
        "{\"op\":\"read\",\"key\":1}\n{\"op\":\"read\",\"key\":2,\"bogus\":1}\n",
        TraceFormat::Jsonl,
    )
    .unwrap_err();
    assert_eq!((err.line, err.field.as_str()), (2, "bogus"));
    let err = import_str("not json\n", TraceFormat::Jsonl).unwrap_err();
    assert_eq!((err.line, err.field.as_str()), (1, "json"));
}

// ---------------------------------------------------------------------------
// Round-trip acceptance: generate → record → fit recovers the ground
// truth when it lies in the fit vocabulary.
// ---------------------------------------------------------------------------

/// A two-phase ground truth inside the fit vocabulary: a tight hotspot
/// phase, then a uniform phase over a disjoint upper range.
fn fit_ground_truth() -> Scenario {
    let mix = OperationMix::ycsb_c();
    let phases = vec![
        WorkloadPhase::new(
            "hot",
            KeyDistribution::Hotspot {
                hot_span: 0.05,
                hot_fraction: 0.9,
            },
            (0, 1_000_000),
            mix.clone(),
            6_000,
        ),
        WorkloadPhase::new(
            "flat",
            KeyDistribution::Uniform,
            (5_000_000, 6_000_000),
            mix,
            6_000,
        ),
    ];
    let workload =
        PhasedWorkload::new(phases, vec![TransitionKind::Abrupt], 7).expect("valid workload");
    Scenario::builder("fit-ground-truth")
        .dataset(KeyDistribution::Uniform, (0, 6_000_000), 10_000, 11)
        .workload(workload)
        .build()
        .expect("valid scenario")
}

#[test]
fn fit_recovers_phases_mix_and_distribution_families() {
    let scenario = fit_ground_truth();
    let trace = Trace::record(&scenario.workload).expect("record");
    let (fitted, report) = fit_scenario(&trace, "fitted", 99).expect("fit");

    assert_eq!(report.phases.len(), 2, "both phases recovered");
    assert!(
        matches!(
            report.phases[0].distribution,
            KeyDistribution::Hotspot { .. }
        ),
        "phase 0 is a hotspot, got {:?}",
        report.phases[0].distribution
    );
    assert!(
        matches!(report.phases[1].distribution, KeyDistribution::Uniform),
        "phase 1 is uniform, got {:?}",
        report.phases[1].distribution
    );
    for phase in &report.phases {
        assert!(
            (phase.mix.read - 1.0).abs() < 1e-9,
            "read-only mix recovered"
        );
    }
    // Ops are conserved and split near-evenly between the phases.
    let total: u64 = report.phases.iter().map(|p| p.ops).sum();
    assert_eq!(total, trace.len() as u64);
    assert!(report.phases[0].ops.abs_diff(report.phases[1].ops) <= total / 10);
    assert_eq!(fitted.workload.phases().len(), 2);
}

#[test]
fn fitted_spec_satisfies_parse_render_id() {
    let scenario = fit_ground_truth();
    let trace = Trace::record(&scenario.workload).expect("record");
    let (fitted, _) = fit_scenario(&trace, "fitted", 99).expect("fit");
    let rendered = render_scenario(&fitted);
    let reparsed = parse_scenario(&rendered).expect("fitted spec parses");
    assert_eq!(
        render_scenario(&reparsed),
        rendered,
        "parse ∘ render = id on the fitted spec"
    );
}

// ---------------------------------------------------------------------------
// S2 acceptance: fitting a trace recorded from S2-abrupt-shift recovers a
// multi-phase spec whose runs preserve the SUT ranking of the original.
// ---------------------------------------------------------------------------

fn mean_throughput(scenario: &Scenario, sut: &str) -> f64 {
    let registry = SutRegistry::default();
    let data = Dataset::generate(
        scenario.dataset.distribution.clone(),
        scenario.dataset.key_range.0,
        scenario.dataset.key_range.1,
        scenario.dataset.size,
        scenario.dataset.seed,
    )
    .expect("dataset");
    let mut sut = registry.build(sut, &data).expect("known SUT");
    let trace = Trace::record(&scenario.workload).expect("record");
    let record = run_kv_trace(sut.as_mut(), &trace, &ReplayConfig::default()).expect("replay");
    record.mean_throughput()
}

#[test]
fn s2_fit_recovers_multiple_phases_and_preserves_ranking() {
    let registry = ScenarioRegistry::with_config(SuiteConfig {
        dataset_size: 4_000,
        ops_per_phase: 4_000,
        ..SuiteConfig::default()
    });
    let s2 = registry.get("S2-abrupt-shift").expect("registered");
    let trace = Trace::record(&s2.workload).expect("record");
    let (fitted, report) = fit_scenario(&trace, "fitted-s2", 4242).expect("fit");
    assert!(
        report.phases.len() >= 2,
        "abrupt shift must segment into at least two phases, got {}",
        report.phases.len()
    );

    let orig_rmi = mean_throughput(&s2, "rmi");
    let orig_btree = mean_throughput(&s2, "btree");
    let fit_rmi = mean_throughput(&fitted, "rmi");
    let fit_btree = mean_throughput(&fitted, "btree");
    assert_eq!(
        orig_rmi > orig_btree,
        fit_rmi > fit_btree,
        "fitted scenario must preserve the SUT ranking \
         (orig rmi {orig_rmi:.0} vs btree {orig_btree:.0}; \
         fit rmi {fit_rmi:.0} vs btree {fit_btree:.0})"
    );
}

// ---------------------------------------------------------------------------
// Replay determinism: the open-loop replay is a logically serial event
// simulation, so repeated replays — any client count — are bit-identical,
// and the checked-in 10k fixture replays deterministically.
// ---------------------------------------------------------------------------

#[test]
fn ten_k_fixture_replays_bit_identically() {
    let imported = import_str(S2_10K, TraceFormat::Csv).expect("fixture parses");
    assert_eq!(imported.trace.len(), 10_000);
    assert!(imported.had_timestamps);
    let data = Dataset::from_keys(
        imported
            .trace
            .entries()
            .iter()
            .map(|e| e.op.key())
            .collect(),
    );
    let registry = SutRegistry::default();
    let config = ReplayConfig::default();

    let mut sut = registry.build("btree", &data).expect("btree");
    let baseline =
        run_kv_trace_open_loop(sut.as_mut(), &imported.trace, &config, 1_000).expect("replay");
    assert_eq!(baseline.completed(), 10_000);
    for _ in 0..2 {
        let mut sut = registry.build("btree", &data).expect("btree");
        let again =
            run_kv_trace_open_loop(sut.as_mut(), &imported.trace, &config, 1_000).expect("replay");
        assert_eq!(again, baseline, "open-loop replay must be bit-identical");
    }
}
