//! Robustness tests for the wire protocol: the frame decoder and request
//! decoder must never panic on truncated, mangled, oversized, or garbage
//! input (property-tested), decode failures must carry frame ordinal and
//! byte-offset positions, and a live server fed malformed bytes or a
//! wrong-version handshake must close that connection cleanly and keep
//! accepting new ones.

use lsbench::core::sut_registry::SutRegistry;
use lsbench::core::wire::frame::{write_frame, FrameReader};
use lsbench::core::wire::proto::{
    decode_request, decode_response, encode_request, encode_response,
};
use lsbench::core::wire::{
    Request, RequestFrame, Response, WireError, WireServer, MAX_FRAME_LEN, PROTOCOL_VERSION,
};
use proptest::collection::vec;
use proptest::prelude::*;
use std::io::{Cursor, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn hello_frame(id: u64, version: u32) -> Vec<u8> {
    let mut buf = Vec::new();
    let payload = encode_request(&RequestFrame {
        id,
        req: Request::Hello {
            version,
            client: "wire-protocol-test".to_string(),
        },
    });
    write_frame(&mut buf, &payload).expect("encodes");
    buf
}

/// A well-formed two-frame stream: Hello then Metrics.
fn two_frame_stream() -> Vec<u8> {
    let mut buf = hello_frame(0, PROTOCOL_VERSION);
    let payload = encode_request(&RequestFrame {
        id: 1,
        req: Request::Metrics,
    });
    write_frame(&mut buf, &payload).expect("encodes");
    buf
}

// ---------------------------------------------------------------------------
// Deterministic positioned-error cases.
// ---------------------------------------------------------------------------

#[test]
fn truncation_in_second_frame_is_positioned_at_frame_one() {
    let stream = two_frame_stream();
    let first_len = hello_frame(0, PROTOCOL_VERSION).len();
    // Cut mid-way through the second frame's payload.
    let cut = first_len + 4 + 2;
    let mut reader = FrameReader::new(Cursor::new(stream[..cut].to_vec()));
    assert!(reader.read_frame().expect("first frame intact").is_some());
    match reader.read_frame() {
        Err(WireError::Truncated { frame, offset, .. }) => {
            assert_eq!(frame, 1, "ordinal counts completed frames");
            assert_eq!(offset as usize, first_len, "offset of the frame start");
        }
        other => panic!("expected positioned truncation, got {other:?}"),
    }
}

#[test]
fn oversized_frame_is_refused_before_allocation() {
    let mut buf = Vec::new();
    buf.extend_from_slice(&u32::MAX.to_be_bytes());
    buf.extend_from_slice(b"xx");
    let mut reader = FrameReader::new(Cursor::new(buf));
    match reader.read_frame() {
        Err(WireError::Oversized { len, max, .. }) => {
            assert_eq!(len, u32::MAX as u64);
            assert_eq!(max, MAX_FRAME_LEN);
        }
        other => panic!("expected oversized refusal, got {other:?}"),
    }
}

#[test]
fn malformed_payload_reports_frame_and_offset() {
    let mut buf = Vec::new();
    write_frame(&mut buf, b"not json at all").expect("frame encodes");
    let mut reader = FrameReader::new(Cursor::new(buf));
    let payload = reader.read_frame().expect("reads").expect("one frame");
    // The decoder is handed the position the reader tracked.
    let offset = reader.byte_offset() - payload.len() as u64;
    match decode_request(&payload, 0, offset) {
        Err(WireError::Malformed {
            frame, offset: o, ..
        }) => {
            assert_eq!(frame, 0);
            assert_eq!(o, 4, "payload starts after the 4-byte prefix");
        }
        other => panic!("expected malformed, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Property suite: the decoder path never panics, whatever the bytes.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary garbage streams: every outcome is a value, never a panic,
    /// and a clean EOF is only ever reported at a frame boundary.
    #[test]
    fn frame_reader_never_panics_on_garbage(bytes in vec(any::<u8>(), 0..256)) {
        let empty = bytes.is_empty();
        let mut reader = FrameReader::new(Cursor::new(bytes));
        match reader.read_frame() {
            Ok(None) => prop_assert!(empty || reader.byte_offset() == 0),
            Ok(Some(payload)) => prop_assert!(!payload.is_empty()),
            Err(_) => {}
        }
    }

    /// A valid stream truncated at every possible point either yields the
    /// intact prefix frames, a clean EOF, or a positioned truncation error
    /// — never a panic, never a partial frame.
    #[test]
    fn truncated_valid_streams_never_panic(cut in 0usize..200) {
        let stream = two_frame_stream();
        let cut = cut.min(stream.len());
        let mut reader = FrameReader::new(Cursor::new(stream[..cut].to_vec()));
        loop {
            match reader.read_frame() {
                Ok(Some(payload)) => {
                    // Any frame that decodes intact must decode as a request.
                    prop_assert!(decode_request(&payload, 0, 0).is_ok());
                }
                Ok(None) => break,
                Err(WireError::Truncated { .. }) => break,
                Err(other) => prop_assert!(false, "unexpected error {other:?}"),
            }
        }
    }

    /// Flipping any single byte of a valid stream never panics the reader
    /// or the JSON decoders.
    #[test]
    fn single_byte_corruption_never_panics(pos in 0usize..100, flip in 1u8..=255) {
        let mut stream = two_frame_stream();
        let pos = pos % stream.len();
        stream[pos] ^= flip;
        let mut reader = FrameReader::new(Cursor::new(stream));
        for _ in 0..4 {
            match reader.read_frame() {
                Ok(Some(payload)) => {
                    let _ = decode_request(&payload, 0, 0);
                    let _ = decode_response(&payload, 0, 0);
                }
                Ok(None) | Err(_) => break,
            }
        }
    }

    /// Arbitrary bytes through the JSON decoders: never a panic, and the
    /// reported position is exactly what the caller handed in.
    #[test]
    fn payload_decoders_never_panic(bytes in vec(any::<u8>(), 0..128), frame in 0u64..9, offset in 0u64..999) {
        if let Err(e) = decode_request(&bytes, frame, offset) {
            match e {
                WireError::Malformed { frame: f, offset: o, .. } => {
                    prop_assert_eq!(f, frame);
                    prop_assert_eq!(o, offset);
                }
                other => prop_assert!(false, "unexpected error {other:?}"),
            }
        }
    }

    /// encode ∘ decode = id for request frames over printable client names.
    #[test]
    fn request_frames_round_trip(id in any::<u64>(), client in "[ -~]{0,40}") {
        let frame = RequestFrame {
            id,
            req: Request::Hello { version: PROTOCOL_VERSION, client },
        };
        let decoded = decode_request(&encode_request(&frame), 0, 0).expect("round-trips");
        prop_assert_eq!(decoded, frame);
    }
}

// ---------------------------------------------------------------------------
// Real-socket smoke: a live server survives malformed clients.
// ---------------------------------------------------------------------------

fn read_one_response(stream: &mut TcpStream) -> Response {
    let mut reader = FrameReader::new(stream.try_clone().expect("clone"));
    let payload = reader
        .read_frame()
        .expect("server answers")
        .expect("one frame");
    decode_response(&payload, 0, 0).expect("decodes").resp
}

/// After garbage bytes and a wrong-version handshake — each closing its
/// own connection — the server still accepts and serves new clients.
#[test]
fn server_survives_garbage_and_version_mismatch() {
    let server = WireServer::bind("127.0.0.1:0", SutRegistry::default(), "btree")
        .expect("binds")
        .spawn()
        .expect("spawns");
    let addr = server.addr();

    // 1. Raw garbage: the connection just closes (no panic, no reply frame
    //    required to parse).
    {
        let mut s = TcpStream::connect(addr).expect("connects");
        s.write_all(b"\xff\xff\xff\xffgarbage").expect("writes");
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut buf = Vec::new();
        let _ = s.read_to_end(&mut buf); // server closes; maybe after an Error frame
    }

    // 2. Wrong protocol version: the server answers VersionMismatch with
    //    its own version, then closes.
    {
        let mut s = TcpStream::connect(addr).expect("connects");
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.write_all(&hello_frame(0, PROTOCOL_VERSION + 7)).unwrap();
        match read_one_response(&mut s) {
            Response::VersionMismatch { server: v } => assert_eq!(v, PROTOCOL_VERSION),
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
    }

    // 3. A well-behaved client still gets a clean handshake afterwards.
    {
        let mut s = TcpStream::connect(addr).expect("connects");
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.write_all(&hello_frame(0, PROTOCOL_VERSION)).unwrap();
        match read_one_response(&mut s) {
            Response::HelloOk { version, sut } => {
                assert_eq!(version, PROTOCOL_VERSION);
                assert_eq!(sut, "btree");
            }
            other => panic!("expected HelloOk, got {other:?}"),
        }
    }

    server.shutdown();
}

/// Skipping the handshake is a protocol violation: the server reports an
/// error frame (or closes) instead of executing anything.
#[test]
fn execute_before_hello_is_refused() {
    let server = WireServer::bind("127.0.0.1:0", SutRegistry::default(), "btree")
        .expect("binds")
        .spawn()
        .expect("spawns");
    let mut s = TcpStream::connect(server.addr()).expect("connects");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let payload = encode_request(&RequestFrame {
        id: 0,
        req: Request::Metrics,
    });
    let mut buf = Vec::new();
    write_frame(&mut buf, &payload).unwrap();
    s.write_all(&buf).unwrap();
    match read_one_response(&mut s) {
        Response::Error { reason } => assert!(
            reason.contains("Hello"),
            "error names the handshake rule: {reason}"
        ),
        other => panic!("expected protocol error, got {other:?}"),
    }
    drop(s);
    server.shutdown();
}

/// `encode_response` output is what the client-side decoder consumes —
/// pin the round trip for the response direction too.
#[test]
fn response_frames_round_trip() {
    use lsbench::core::wire::ResponseFrame;
    let frame = ResponseFrame {
        id: 42,
        resp: Response::Work { work: 1234 },
    };
    let decoded = decode_response(&encode_response(&frame), 0, 0).expect("round-trips");
    assert_eq!(decoded, frame);
}
